//! Replication: roles, the follower journal-tail loop, and the hex
//! frame codec shared with the `replica.sync` handler.
//!
//! CerFix's correcting process is deterministic and Church-Rosser, so
//! the write-ahead journal doubles as a replication stream: a follower
//! that replays the primary's totally-ordered, CRC-framed events
//! through the same recovery path provably converges to the same state
//! — no repair re-validation on failover.
//!
//! The protocol is pull-based over the ordinary wire protocol. A
//! follower's cursor is its own journal's durable position
//! `(epoch, offset)`; each `replica.sync` request both *asks* for
//! events past the cursor and *acknowledges* everything before it
//! (which is what quorum-ack commits on the primary wait for). Events
//! travel as hex-encoded [`JournalEvent`] frames — byte-identical to
//! what the primary journaled, so the follower's journal file mirrors
//! the primary's frame-for-frame and a restart resumes from its own
//! durable cursor. A cursor whose epoch predates the primary's (the
//! journal was truncated by a snapshot while the follower was away)
//! gets a full snapshot resync instead; otherwise followers always
//! resume from the cursor.
//!
//! Fencing: every sync request carries the follower's epoch, and the
//! primary remembers the highest epoch it has ever seen. After a
//! `replica.promote` bumps a follower past the old primary's epoch,
//! any sync against the old primary fences it — it refuses further
//! mutations with `stale_epoch`, mirroring the snapshot epoch guard
//! inside the journal itself.

use crate::client::{jitter_seed, jittered, Client, ClientError, RetryPolicy};
use crate::diag::Subsystem;
use crate::protocol::Request;
use crate::service::CleaningService;
use crate::wire::Json;
use cerfix_storage::{JournalEvent, SnapshotData};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which side of the replication stream a node is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations, serves `replica.sync` to followers.
    Primary,
    /// Read-only: tails the named primary's journal and rejects
    /// session mutations with `not_primary`.
    Follower {
        /// Address of the primary this node replicates from.
        primary: String,
    },
}

impl Role {
    /// `"primary"` or `"follower"` (wire/metrics label).
    pub fn name(&self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower { .. } => "follower",
        }
    }
}

/// Why a follower could not apply a pulled batch — drives the tail
/// loop's recovery choice.
#[derive(Debug)]
pub(crate) enum ReplicaApplyError {
    /// The local journal was poisoned by an fsync failure. The events
    /// are applied in memory but can never become durable here, so the
    /// follower demands a snapshot re-sync from the primary (installing
    /// it truncates — and thereby un-poisons — the local journal).
    Poisoned(String),
    /// A replayed event did not apply — determinism rules this out
    /// unless the nodes booted from different master data. Fatal.
    Diverged(String),
    /// The journal or service is shutting down; exit quietly.
    Stopped,
}

/// What the primary knows about one follower, keyed by the follower's
/// advertised address. Updated on every `replica.sync` it sends.
pub(crate) struct FollowerStatus {
    /// Epoch of the follower's durable cursor (its last ack).
    pub epoch: u64,
    /// Durable journal offset of the cursor within that epoch.
    pub offset: u64,
    /// When the follower last synced.
    pub last_seen: Instant,
    /// Last time the follower's cursor covered everything durable
    /// here — the zero point `cerfix_replication_lag_seconds` measures
    /// from while the follower is behind.
    pub caught_up_at: Instant,
}

/// Shared replication state hanging off the service.
pub(crate) struct ReplicationState {
    /// This node's role. Flips exactly once (follower → primary, on
    /// `replica.promote`).
    pub role: RwLock<Role>,
    /// Follower registry (primary side): advertised address → cursor.
    pub followers: Mutex<HashMap<String, FollowerStatus>>,
    /// Signaled whenever a follower ack lands; quorum-ack commits wait
    /// on it (paired with `followers`).
    pub ack_cv: Condvar,
    /// Highest epoch seen on any `replica.sync` cursor — the fencing
    /// watermark. A node whose own epoch falls below it has been
    /// superseded by a promotion and refuses mutations.
    pub max_epoch_seen: AtomicU64,
    /// Configured cluster size N (nodes counting this one). `1`
    /// disables quorum waits: commits are local-fsync durable only.
    pub cluster: usize,
    /// How long a quorum-ack commit waits before `quorum_timeout`.
    pub ack_timeout: Duration,
    /// Stops the follower tail loop (promotion, shutdown).
    pub stop: AtomicBool,
    /// The tail-loop thread, joined on promote so no replicated event
    /// can land after the epoch bump.
    pub tail: Mutex<Option<JoinHandle<()>>>,
    /// Encoded [`SnapshotData`] of the current epoch — what a
    /// stale-cursor follower is resynced from. Refreshed on every
    /// snapshot install (boot recovery included).
    pub last_snapshot: Mutex<Option<std::sync::Arc<Vec<u8>>>>,
    /// Follower-side mirror of the primary's epoch, from the last
    /// successful tail response (status display).
    pub primary_epoch: AtomicU64,
    /// Follower-side mirror of the primary's durable event count.
    pub primary_durable: AtomicU64,
    /// Last time this follower's durable cursor covered the primary's
    /// — the zero point its own `lag_seconds` (and the `max_lag`
    /// readiness check) measures from. Boot-initialized to "now" so a
    /// fresh follower starts ready; a partition freezes it and lag
    /// grows until the stream recovers.
    pub tail_current_at: Mutex<Instant>,
}

impl ReplicationState {
    pub fn new(cluster: usize, ack_timeout: Duration) -> ReplicationState {
        ReplicationState {
            role: RwLock::new(Role::Primary),
            followers: Mutex::new(HashMap::new()),
            ack_cv: Condvar::new(),
            max_epoch_seen: AtomicU64::new(0),
            cluster: cluster.max(1),
            ack_timeout,
            stop: AtomicBool::new(false),
            tail: Mutex::new(None),
            last_snapshot: Mutex::new(None),
            primary_epoch: AtomicU64::new(0),
            primary_durable: AtomicU64::new(0),
            tail_current_at: Mutex::new(Instant::now()),
        }
    }

    /// Cluster members whose durable copy a quorum-ack commit waits
    /// for: ⌈(N+1)/2⌉, counting this primary's own fsync.
    pub fn quorum(&self) -> usize {
        (self.cluster + 2) / 2
    }
}

/// Hex-encode a binary frame for the wire (lowercase, two digits per
/// byte). Hex over base64: no new dependency, and journal frames are
/// small enough that 2x expansion is irrelevant next to the fsync.
pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Decode a hex frame; `None` on odd length or a non-hex digit.
pub(crate) fn hex_decode(s: &str) -> Option<Vec<u8>> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Some(out)
}

/// Events per `replica.sync` pull the tail loop asks for.
const TAIL_BATCH: u64 = 512;
/// Poll interval while caught up (also the floor on follower ack
/// latency, so it stays well under commit ack timeouts).
const POLL_INTERVAL: Duration = Duration::from_millis(5);
/// First reconnect backoff; doubles per failure.
const BACKOFF_BASE: Duration = Duration::from_millis(20);
/// Reconnect backoff cap.
const BACKOFF_MAX: Duration = Duration::from_millis(500);

fn stopped(service: &CleaningService) -> bool {
    service.replication().stop.load(Ordering::Acquire) || service.shutdown_requested()
}

/// Record what one successful tail response said about the primary's
/// durable cursor, and — when our own cursor covers it — reset the
/// follower-side lag clock the `max_lag` readiness check reads.
fn note_tail_progress(service: &CleaningService, served_epoch: u64, served_durable: u64) {
    let repl = service.replication();
    repl.primary_epoch.store(served_epoch, Ordering::Release);
    repl.primary_durable
        .store(served_durable, Ordering::Release);
    let (epoch, offset) = service.durable_cursor().unwrap_or((0, 0));
    let current = epoch > served_epoch || (epoch == served_epoch && offset >= served_durable);
    if current {
        *repl
            .tail_current_at
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Instant::now();
    }
}

/// Sleep up to `delay` in small slices, bailing out early on stop.
/// Returns false when the loop should exit.
fn pause(service: &CleaningService, delay: Duration) -> bool {
    let deadline = Instant::now() + delay;
    loop {
        if stopped(service) {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
    }
}

/// The follower tail loop: pull journal frames from the primary at the
/// local durable cursor, journal + replay + fsync them, repeat. Every
/// failure path reconnects with capped jittered backoff and resumes
/// from the cursor — a partition or torn stream costs a redial, not a
/// resync. Exits on stop (promotion), shutdown, or divergence (a
/// replayed event that cannot apply — which determinism rules out
/// unless the nodes booted from different master data).
pub(crate) fn run_tail(service: CleaningService, primary: String) {
    let policy = RetryPolicy {
        retries: 0, // the loop owns retry pacing
        base_delay: BACKOFF_BASE,
        max_delay: BACKOFF_MAX,
        request_timeout: Some(Duration::from_secs(2)),
    };
    let follower_id = service.advertised();
    let mut seed = jitter_seed();
    let mut backoff = BACKOFF_BASE;
    // Set when the local journal is poisoned (fsync failure): the next
    // sync demands a snapshot instead of frames — installing it
    // truncates, and thereby un-poisons, the local journal.
    let mut force_resync = false;
    'connect: loop {
        if stopped(&service) {
            return;
        }
        let mut client = match Client::connect_with(primary.as_str(), policy.clone()) {
            Ok(client) => {
                service.diag().debug(
                    Subsystem::Replication,
                    format_args!("connected to primary {primary}"),
                );
                client
            }
            Err(_) => {
                if !pause(&service, jittered(backoff, &mut seed)) {
                    return;
                }
                backoff = (backoff * 2).min(BACKOFF_MAX);
                continue;
            }
        };
        loop {
            if stopped(&service) {
                return;
            }
            let Some((epoch, offset)) = service.durable_cursor() else {
                // Storage detached mid-flight: nothing to replicate into.
                return;
            };
            let request = Request::ReplicaSync {
                follower: follower_id.clone(),
                epoch,
                offset,
                max: Some(TAIL_BATCH),
                resync: force_resync,
            };
            let response = match client.request(&request) {
                Ok(response) => response,
                Err(ClientError::Server(message)) => {
                    // The primary answered but refused (mid-boot, or we
                    // are somehow ahead of it): back off, keep polling.
                    service.diag().warn(
                        Subsystem::Replication,
                        format_args!("primary {primary} refused sync: {message}"),
                    );
                    if !pause(&service, jittered(backoff, &mut seed)) {
                        return;
                    }
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                    continue;
                }
                Err(_) => {
                    if !pause(&service, jittered(backoff, &mut seed)) {
                        return;
                    }
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                    continue 'connect;
                }
            };
            // A healthy round trip resets the backoff ladder.
            backoff = BACKOFF_BASE;
            if response.get("from").and_then(Json::as_u64) != Some(offset) {
                // Not the answer to the cursor we just sent: a faulty
                // path (duplicate/reordered line) desynced the stream.
                // Reconnect; the fresh connection re-pairs cleanly.
                service.diag().warn(
                    Subsystem::Replication,
                    format_args!("desynced response from {primary}; reconnecting"),
                );
                if !pause(&service, jittered(backoff, &mut seed)) {
                    return;
                }
                continue 'connect;
            }
            let served_epoch = response.get("epoch").and_then(Json::as_u64).unwrap_or(0);
            let served_durable = response.get("durable").and_then(Json::as_u64).unwrap_or(0);
            if served_epoch < epoch {
                // A primary behind our epoch is stale (e.g. the old
                // primary came back after we were promoted off it and
                // re-demoted — not a state we ever serve from).
                service.diag().warn(
                    Subsystem::Replication,
                    format_args!(
                        "primary {primary} is at epoch {served_epoch}, \
                         behind our {epoch}; refusing its stream"
                    ),
                );
                if !pause(&service, jittered(BACKOFF_MAX, &mut seed)) {
                    return;
                }
                continue 'connect;
            }
            if let Some(hex) = response.get("snapshot").and_then(Json::as_str) {
                // Cursor predates the primary's epoch: full resync.
                let decoded = hex_decode(hex).and_then(|bytes| SnapshotData::decode(&bytes).ok());
                match decoded {
                    Some(data) => {
                        if let Err(message) = service.install_replica_snapshot(data) {
                            service.diag().error(
                                Subsystem::Replication,
                                format_args!("snapshot resync from {primary} failed: {message}"),
                            );
                            if !pause(&service, jittered(BACKOFF_MAX, &mut seed)) {
                                return;
                            }
                            continue 'connect;
                        }
                        // A successful install truncated the local
                        // journal to the new epoch — any poisoning is
                        // cleared and the repair is complete.
                        if force_resync {
                            force_resync = false;
                            service.diag().info(
                                Subsystem::Replication,
                                format_args!("journal repaired by snapshot re-sync from {primary}"),
                            );
                        }
                        continue; // re-poll from the new epoch's cursor
                    }
                    None => {
                        service.diag().error(
                            Subsystem::Replication,
                            format_args!("undecodable snapshot from {primary}"),
                        );
                        if !pause(&service, jittered(backoff, &mut seed)) {
                            return;
                        }
                        continue 'connect;
                    }
                }
            }
            let frames = response.get("events").and_then(Json::as_arr).unwrap_or(&[]);
            if frames.is_empty() {
                // Caught up: ack-by-polling keeps quorum commits live.
                note_tail_progress(&service, served_epoch, served_durable);
                if !pause(&service, POLL_INTERVAL) {
                    return;
                }
                continue;
            }
            let mut events = Vec::with_capacity(frames.len());
            let mut torn = false;
            for frame in frames {
                match frame
                    .as_str()
                    .and_then(hex_decode)
                    .and_then(|bytes| JournalEvent::decode(&bytes).ok())
                {
                    Some(event) => events.push(event),
                    None => {
                        torn = true;
                        break;
                    }
                }
            }
            if torn {
                // A torn/corrupt frame never applies partially: drop
                // the connection and re-pull from the durable cursor.
                service.diag().warn(
                    Subsystem::Replication,
                    format_args!("torn frame from {primary}; re-pulling from cursor"),
                );
                if !pause(&service, jittered(backoff, &mut seed)) {
                    return;
                }
                continue 'connect;
            }
            match service.apply_replica_events(events) {
                Ok(()) => {}
                Err(ReplicaApplyError::Poisoned(message)) => {
                    // The batch is applied in memory but can never be
                    // durable here: repair by snapshot instead of dying
                    // (or worse, acking a cursor we do not hold).
                    service.diag().warn(
                        Subsystem::Replication,
                        format_args!(
                            "journal poisoned ({message}); \
                             requesting snapshot re-sync from {primary}"
                        ),
                    );
                    force_resync = true;
                    continue;
                }
                Err(ReplicaApplyError::Diverged(message)) => {
                    service.diag().error(
                        Subsystem::Replication,
                        format_args!("replay diverged, stopping tail of {primary}: {message}"),
                    );
                    return;
                }
                Err(ReplicaApplyError::Stopped) => return,
            }
            note_tail_progress(&service, served_epoch, served_durable);
        }
    }
}

/// Convenience for locking the follower registry without poison noise.
pub(crate) fn lock_followers(
    state: &ReplicationState,
) -> std::sync::MutexGuard<'_, HashMap<String, FollowerStatus>> {
    state
        .followers
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex.len(), 512);
        assert_eq!(hex_decode(&hex).as_deref(), Some(bytes.as_slice()));
        assert_eq!(hex_decode(""), Some(Vec::new()));
        assert_eq!(hex_decode("DEADbeef"), Some(vec![0xde, 0xad, 0xbe, 0xef]));
    }

    #[test]
    fn hex_rejects_torn_and_garbage() {
        assert_eq!(hex_decode("abc"), None); // odd length
        assert_eq!(hex_decode("zz"), None); // not hex
        assert_eq!(hex_decode("0g"), None);
    }

    #[test]
    fn quorum_is_majority_of_cluster() {
        let q = |n| ReplicationState::new(n, Duration::from_secs(1)).quorum();
        assert_eq!(q(1), 1); // local fsync only
        assert_eq!(q(2), 2); // primary + the follower
        assert_eq!(q(3), 2); // primary + 1 of 2 followers
        assert_eq!(q(4), 3);
        assert_eq!(q(5), 3);
    }

    #[test]
    fn role_names() {
        assert_eq!(Role::Primary.name(), "primary");
        assert_eq!(
            Role::Follower {
                primary: "x:1".into()
            }
            .name(),
            "follower"
        );
    }
}
