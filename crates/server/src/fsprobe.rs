//! Free-space probe for the data directory.
//!
//! The degradation watermark (`--min-free-bytes`) needs to know how
//! much disk is left under the journal. Under fault injection the
//! [`FaultFs`](cerfix_storage::FaultFs) answers from its synthetic
//! budget; on a real deployment we ask the kernel via `statvfs(3)`.
//! The storage crate forbids `unsafe`, so the single raw syscall lives
//! here next to the reactor's FFI island.

/// Bytes available to unprivileged writers on the filesystem holding
/// `path` (`f_bavail * f_frsize`). `None` when the probe is
/// unsupported on this platform or the syscall fails — callers treat
/// that as "unknown", never as "full".
#[cfg(target_os = "linux")]
pub fn free_bytes(path: &std::path::Path) -> Option<u64> {
    use std::os::unix::ffi::OsStrExt;
    let c_path = std::ffi::CString::new(path.as_os_str().as_bytes()).ok()?;
    ffi::statvfs_avail(&c_path)
}

/// Non-Linux fallback: unknown.
#[cfg(not(target_os = "linux"))]
pub fn free_bytes(_path: &std::path::Path) -> Option<u64> {
    None
}

// libc symbols; std links libc already, so no new dependency.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod ffi {
    use std::ffi::CStr;
    use std::os::raw::{c_char, c_int, c_ulong};

    /// `struct statvfs` on 64-bit Linux: every block/file count and
    /// `unsigned long` is 8 bytes; the spare tail absorbs layout slack.
    #[repr(C)]
    struct StatVfs {
        f_bsize: c_ulong,
        f_frsize: c_ulong,
        f_blocks: u64,
        f_bfree: u64,
        f_bavail: u64,
        f_files: u64,
        f_ffree: u64,
        f_favail: u64,
        f_fsid: c_ulong,
        f_flag: c_ulong,
        f_namemax: c_ulong,
        __f_spare: [c_int; 6],
    }

    extern "C" {
        fn statvfs(path: *const c_char, buf: *mut StatVfs) -> c_int;
    }

    pub(super) fn statvfs_avail(path: &CStr) -> Option<u64> {
        let mut buf = std::mem::MaybeUninit::<StatVfs>::zeroed();
        // SAFETY: `path` is a valid NUL-terminated string and `buf` is
        // a properly sized, writable statvfs buffer.
        let rc = unsafe { statvfs(path.as_ptr(), buf.as_mut_ptr()) };
        if rc != 0 {
            return None;
        }
        let out = unsafe { buf.assume_init() };
        Some(out.f_bavail.saturating_mul(out.f_frsize))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(target_os = "linux")]
    fn probe_reports_space_on_a_real_directory() {
        let free = super::free_bytes(&std::env::temp_dir());
        assert!(free.is_some(), "statvfs should succeed on tmp");
        assert!(free.unwrap() > 0, "tmp should not be full");
    }

    #[test]
    fn probe_on_missing_path_is_none_not_panic() {
        assert_eq!(
            super::free_bytes(std::path::Path::new("/definitely/not/a/real/path")),
            None
        );
    }
}
