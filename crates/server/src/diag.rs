//! Structured diagnostic log: leveled, rate-limited, allocation-free
//! on emit.
//!
//! Every noteworthy server-side event — a replication stream refusing
//! a stale primary, a snapshot failing, a health probe flipping to
//! not-ready — is a [`DiagEvent`]: a level, a subsystem, a unix
//! timestamp and a formatted message. Events are published into a
//! fixed-size seqlock ring (the same claim-`fetch_add` + sequence
//! bracket protocol as `trace.rs`), so emitting never locks and never
//! allocates: the message is formatted into a fixed stack buffer and
//! stored as packed words. That keeps the CI-guarded
//! `session.get = 0 allocs/req` invariant intact with the diag log
//! enabled, and makes it safe to emit from the reactor and flusher
//! threads.
//!
//! Sinks: the in-process ring is always the source of truth and is
//! read over the wire by `log.read` (filterable by level and
//! subsystem). A stderr sink is on by default so operators keep the
//! behavior the old ad-hoc `eprintln!` calls gave them, and an
//! optional `diag.log` file sink appends one line per event for
//! durable post-mortems.
//!
//! A per-subsystem token window caps emissions per second; everything
//! over the cap is counted in `suppressed` instead of flooding the
//! ring, stderr, or the disk.

use std::fmt::{self, Write as _};
use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use std::time::SystemTime;

/// Longest message stored per event; longer messages are truncated at
/// a UTF-8 boundary. 240 bytes comfortably fits every call site's
/// formatted line including a peer address and an error string.
const MSG_BYTES: usize = 240;

/// Message payload words per slot (8 bytes each).
const TEXT_WORDS: usize = MSG_BYTES / 8;

/// Largest ring size `--diag-buffer` / `config.set` is clamped to.
const MAX_SLOTS: usize = 1 << 20;

/// Events admitted per subsystem per second; the rest are counted as
/// suppressed.
const MAX_PER_SEC: u64 = 64;

/// Event severity, ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Level {
    /// Verbose progress detail (ring-only by default).
    Debug = 0,
    /// Normal state changes worth a record (role changes, resyncs).
    Info = 1,
    /// Degraded but operating (refused stream, torn frame, lag).
    Warn = 2,
    /// Something is broken (dead journal, diverged replay).
    Error = 3,
}

impl Level {
    /// Wire / display name.
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a wire filter value; `None` for unknown names.
    pub(crate) fn parse(name: &str) -> Option<Level> {
        match name {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u64(v: u64) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

/// Which part of the server emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Subsystem {
    /// Service core: boot, shutdown, dispatch.
    Server = 0,
    /// Front-end transport and the housekeeper thread.
    Net = 1,
    /// Journal, snapshots, fsync.
    Journal = 2,
    /// Replication tail and quorum tracking.
    Replication = 3,
    /// Health probe verdicts and transitions.
    Health = 4,
    /// Runtime configuration changes (`config.set`).
    Config = 5,
    /// Admission control: shed-level transitions, drains, quota refusals.
    Admission = 6,
}

/// Number of [`Subsystem`] variants (rate-limit window array size).
const SUBSYSTEMS: usize = 7;

impl Subsystem {
    /// Wire / display name.
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Subsystem::Server => "server",
            Subsystem::Net => "net",
            Subsystem::Journal => "journal",
            Subsystem::Replication => "replication",
            Subsystem::Health => "health",
            Subsystem::Config => "config",
            Subsystem::Admission => "admission",
        }
    }

    /// Parse a wire filter value; `None` for unknown names.
    pub(crate) fn parse(name: &str) -> Option<Subsystem> {
        match name {
            "server" => Some(Subsystem::Server),
            "net" => Some(Subsystem::Net),
            "journal" => Some(Subsystem::Journal),
            "replication" => Some(Subsystem::Replication),
            "health" => Some(Subsystem::Health),
            "config" => Some(Subsystem::Config),
            "admission" => Some(Subsystem::Admission),
            _ => None,
        }
    }

    fn from_u64(v: u64) -> Subsystem {
        match v {
            0 => Subsystem::Server,
            1 => Subsystem::Net,
            2 => Subsystem::Journal,
            3 => Subsystem::Replication,
            4 => Subsystem::Health,
            5 => Subsystem::Config,
            _ => Subsystem::Admission,
        }
    }
}

/// One diagnostic event as a reader sees it (`log.read`). The message
/// is copied out of the ring into an owned string — reads are off the
/// hot path by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DiagEvent {
    /// Monotonic event number (the ring claim index).
    pub seq: u64,
    /// Emission time, milliseconds since the unix epoch.
    pub unix_ms: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem.
    pub subsystem: Subsystem,
    /// Formatted message (possibly truncated to [`MSG_BYTES`]).
    pub message: String,
}

/// Fixed-capacity `fmt::Write` target: formats a message onto the
/// stack, truncating at capacity instead of allocating.
struct FixedWriter {
    buf: [u8; MSG_BYTES],
    len: usize,
}

impl FixedWriter {
    fn new() -> FixedWriter {
        FixedWriter {
            buf: [0; MSG_BYTES],
            len: 0,
        }
    }
}

impl fmt::Write for FixedWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let room = MSG_BYTES - self.len;
        let take = if s.len() <= room {
            s.len()
        } else {
            // Truncate on a char boundary so readers get valid UTF-8.
            let mut take = room;
            while take > 0 && !s.is_char_boundary(take) {
                take -= 1;
            }
            take
        };
        self.buf[self.len..self.len + take].copy_from_slice(&s.as_bytes()[..take]);
        self.len += take;
        Ok(())
    }
}

/// One seqlock slot: the sequence bracket, a meta word packing
/// `level | subsystem << 8 | len << 16`, the timestamp, and the
/// message bytes packed little-endian into words.
struct Slot {
    seq: AtomicU64,
    meta: AtomicU64,
    unix_ms: AtomicU64,
    text: [AtomicU64; TEXT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            unix_ms: AtomicU64::new(0),
            text: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Fixed-size multi-writer event ring; same claim/seqlock protocol as
/// `trace::TraceRing`, with a wider slot for the message bytes.
pub(crate) struct DiagRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
}

impl DiagRing {
    /// A ring holding `capacity` events, rounded up to a power of two
    /// (clamped to [`MAX_SLOTS`]); 0 disables the ring.
    pub(crate) fn new(capacity: usize) -> DiagRing {
        let len = match capacity {
            0 => 0,
            n => n.next_power_of_two().min(MAX_SLOTS),
        };
        DiagRing {
            slots: (0..len).map(|_| Slot::new()).collect(),
            mask: len.wrapping_sub(1) as u64,
            head: AtomicU64::new(0),
        }
    }

    /// True iff the ring records anything.
    pub(crate) fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Events ever recorded (monotonic, survives wrap-around).
    pub(crate) fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    fn record(&self, unix_ms: u64, level: Level, subsystem: Subsystem, msg: &FixedWriter) {
        if self.slots.is_empty() {
            return;
        }
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim & self.mask) as usize];
        slot.seq.store(claim * 2 + 1, Ordering::Release);
        fence(Ordering::Release);
        let meta = level as u64 | (subsystem as u64) << 8 | (msg.len as u64) << 16;
        slot.meta.store(meta, Ordering::Relaxed);
        slot.unix_ms.store(unix_ms, Ordering::Relaxed);
        for (word, chunk) in slot.text.iter().zip(msg.buf.chunks_exact(8)) {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            word.store(u64::from_le_bytes(bytes), Ordering::Relaxed);
        }
        fence(Ordering::Release);
        slot.seq.store(claim * 2 + 2, Ordering::Release);
    }

    /// Copy out up to `limit` of the most recent events matching the
    /// filters, newest first. Slots mid-overwrite are skipped.
    pub(crate) fn read_recent(
        &self,
        limit: usize,
        min_level: Level,
        subsystem: Option<Subsystem>,
    ) -> Vec<DiagEvent> {
        let head = self.head.load(Ordering::Acquire);
        let window = (self.slots.len() as u64).min(head);
        let mut events = Vec::new();
        for back in 0..window {
            if events.len() >= limit {
                break;
            }
            let claim = head - 1 - back;
            let slot = &self.slots[(claim & self.mask) as usize];
            let expect = claim * 2 + 2;
            if slot.seq.load(Ordering::Acquire) != expect {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let unix_ms = slot.unix_ms.load(Ordering::Relaxed);
            let mut bytes = [0u8; MSG_BYTES];
            for (chunk, word) in bytes.chunks_exact_mut(8).zip(&slot.text) {
                chunk.copy_from_slice(&word.load(Ordering::Relaxed).to_le_bytes());
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != expect {
                continue;
            }
            let level = Level::from_u64(meta & 0xff);
            let sub = Subsystem::from_u64(meta >> 8 & 0xff);
            if level < min_level || subsystem.is_some_and(|want| want != sub) {
                continue;
            }
            let len = ((meta >> 16) as usize).min(MSG_BYTES);
            let message = String::from_utf8_lossy(&bytes[..len]).into_owned();
            events.push(DiagEvent {
                seq: claim,
                unix_ms,
                level,
                subsystem: sub,
                message,
            });
        }
        events
    }
}

/// Read a possibly poisoned lock — sink state stays consistent even if
/// a holder panicked.
fn rlock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// The service's diagnostic log: the event ring (swappable at runtime
/// via `config.set diag_buffer`), the per-subsystem rate windows, and
/// the stderr / file sinks.
pub(crate) struct DiagSink {
    ring: RwLock<Arc<DiagRing>>,
    /// Packed per-subsystem window: `sec << 16 | admitted_this_sec`.
    windows: [AtomicU64; SUBSYSTEMS],
    /// Events dropped by the rate limiter.
    suppressed: AtomicU64,
    /// Events admitted (ring-enabled or not).
    emitted: AtomicU64,
    /// Mirror admitted events of level >= Info to stderr.
    stderr: AtomicBool,
    file: Mutex<Option<File>>,
}

impl DiagSink {
    /// A sink whose ring holds `buffer` events (0 = ring off; stderr
    /// still works) and optionally appends every admitted event to
    /// `file`.
    pub(crate) fn new(buffer: usize, file: Option<&PathBuf>) -> DiagSink {
        let file = file.and_then(|path| {
            File::options()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| eprintln!("cerfix-server: cannot open diag log {path:?}: {e}"))
                .ok()
        });
        DiagSink {
            ring: RwLock::new(Arc::new(DiagRing::new(buffer))),
            windows: std::array::from_fn(|_| AtomicU64::new(0)),
            suppressed: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            stderr: AtomicBool::new(true),
            file: Mutex::new(file),
        }
    }

    /// The current ring (for `log.read`).
    pub(crate) fn ring(&self) -> Arc<DiagRing> {
        Arc::clone(&rlock(&self.ring))
    }

    /// The ring's current capacity in slots.
    pub(crate) fn capacity(&self) -> usize {
        rlock(&self.ring).slots.len()
    }

    /// Swap in a fresh ring of `buffer` slots (`config.set
    /// diag_buffer`). Buffered events are discarded.
    pub(crate) fn resize(&self, buffer: usize) {
        *self.ring.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(DiagRing::new(buffer));
    }

    /// Silence the stderr mirror (tests; operators keep it on).
    #[cfg(test)]
    pub(crate) fn set_stderr(&self, on: bool) {
        self.stderr.store(on, Ordering::Relaxed);
    }

    /// Events dropped by the rate limiter since boot.
    pub(crate) fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Events admitted since boot.
    pub(crate) fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Emit an error event.
    pub(crate) fn error(&self, subsystem: Subsystem, args: fmt::Arguments<'_>) {
        self.emit(Level::Error, subsystem, args);
    }

    /// Emit a warning event.
    pub(crate) fn warn(&self, subsystem: Subsystem, args: fmt::Arguments<'_>) {
        self.emit(Level::Warn, subsystem, args);
    }

    /// Emit an informational event.
    pub(crate) fn info(&self, subsystem: Subsystem, args: fmt::Arguments<'_>) {
        self.emit(Level::Info, subsystem, args);
    }

    /// Emit a debug event (ring-only; never mirrored to stderr).
    pub(crate) fn debug(&self, subsystem: Subsystem, args: fmt::Arguments<'_>) {
        self.emit(Level::Debug, subsystem, args);
    }

    /// Rate-limit check: admit at most [`MAX_PER_SEC`] events per
    /// subsystem per wall-clock second.
    fn admit(&self, subsystem: Subsystem, sec: u64) -> bool {
        let window = &self.windows[subsystem as usize];
        let admitted = window
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |packed| {
                let (win_sec, count) = (packed >> 16, packed & 0xffff);
                if win_sec != sec {
                    Some(sec << 16 | 1)
                } else if count < MAX_PER_SEC {
                    Some(packed + 1)
                } else {
                    None
                }
            })
            .is_ok();
        if !admitted {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    fn emit(&self, level: Level, subsystem: Subsystem, args: fmt::Arguments<'_>) {
        let unix_ms = now_ms();
        if !self.admit(subsystem, unix_ms / 1000) {
            return;
        }
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let mut msg = FixedWriter::new();
        let _ = msg.write_fmt(args);
        rlock(&self.ring).record(unix_ms, level, subsystem, &msg);
        let text = std::str::from_utf8(&msg.buf[..msg.len]).unwrap_or("<non-utf8>");
        if level >= Level::Info && self.stderr.load(Ordering::Relaxed) {
            eprintln!(
                "cerfix-server: [{} {}] {text}",
                level.as_str(),
                subsystem.as_str()
            );
        }
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = file.as_mut() {
            // A failed append silently drops the sink; the ring and
            // stderr still have the event.
            if writeln!(
                f,
                "{unix_ms} [{} {}] {text}",
                level.as_str(),
                subsystem.as_str()
            )
            .is_err()
            {
                *file = None;
            }
        }
    }
}

/// Milliseconds since the unix epoch (0 if the clock is before it).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis().min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(buffer: usize) -> DiagSink {
        let sink = DiagSink::new(buffer, None);
        sink.set_stderr(false);
        sink
    }

    #[test]
    fn events_round_trip_with_level_and_subsystem_filters() {
        let sink = quiet(8);
        sink.debug(Subsystem::Server, format_args!("probe {}", 1));
        sink.info(Subsystem::Net, format_args!("accepted peer"));
        sink.warn(Subsystem::Replication, format_args!("torn frame from p1"));
        sink.error(Subsystem::Journal, format_args!("disk gone"));

        let all = sink.ring().read_recent(16, Level::Debug, None);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].message, "disk gone");
        assert_eq!(all[0].level, Level::Error);
        assert_eq!(all[0].subsystem, Subsystem::Journal);
        assert_eq!(all[3].message, "probe 1");
        assert!(all[0].seq > all[3].seq, "newest first");

        let warns = sink.ring().read_recent(16, Level::Warn, None);
        assert_eq!(warns.len(), 2);
        let repl = sink
            .ring()
            .read_recent(16, Level::Debug, Some(Subsystem::Replication));
        assert_eq!(repl.len(), 1);
        assert_eq!(repl[0].message, "torn frame from p1");
        assert_eq!(sink.emitted(), 4);
    }

    #[test]
    fn long_messages_truncate_on_char_boundaries() {
        let sink = quiet(4);
        let long = format!("{}é", "x".repeat(MSG_BYTES - 1));
        sink.warn(Subsystem::Server, format_args!("{long}"));
        let events = sink.ring().read_recent(1, Level::Debug, None);
        assert_eq!(events[0].message.len(), MSG_BYTES - 1);
        assert!(events[0].message.chars().all(|c| c == 'x'));
    }

    #[test]
    fn rate_limiter_caps_per_subsystem_per_second() {
        let sink = quiet(4);
        for _ in 0..MAX_PER_SEC {
            assert!(sink.admit(Subsystem::Net, 100));
        }
        assert!(!sink.admit(Subsystem::Net, 100), "window exhausted");
        assert_eq!(sink.suppressed(), 1);
        // Another subsystem has its own window.
        assert!(sink.admit(Subsystem::Journal, 100));
        // A new second resets the window.
        assert!(sink.admit(Subsystem::Net, 101));
    }

    #[test]
    fn zero_capacity_ring_still_counts_and_mirrors() {
        let sink = quiet(0);
        assert!(!sink.ring().enabled());
        sink.error(Subsystem::Server, format_args!("still counted"));
        assert_eq!(sink.emitted(), 1);
        assert!(sink.ring().read_recent(8, Level::Debug, None).is_empty());
    }

    #[test]
    fn resize_swaps_the_ring_at_runtime() {
        let sink = quiet(0);
        sink.resize(4);
        assert_eq!(sink.capacity(), 4);
        sink.info(Subsystem::Config, format_args!("diag_buffer set to 4"));
        let events = sink.ring().read_recent(8, Level::Debug, None);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].subsystem, Subsystem::Config);
    }

    #[test]
    fn file_sink_appends_one_line_per_event() {
        let dir = std::env::temp_dir().join(format!("cerfix-diag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("diag.log");
        let sink = DiagSink::new(4, Some(&path));
        sink.set_stderr(false);
        sink.warn(Subsystem::Replication, format_args!("lag past threshold"));
        sink.info(Subsystem::Health, format_args!("ready again"));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("[warn replication] lag past threshold"));
        assert!(lines[1].contains("[info health] ready again"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
