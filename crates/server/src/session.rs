//! Server-side session registry.
//!
//! Each client session wraps one [`MonitorSession`] (the core monitor's
//! per-tuple state) with a server id and an idle clock. The registry is
//! a two-level lock: the map itself is held only to look up / insert /
//! remove, while per-session work (validation, fixpoint runs) happens
//! under that session's own mutex — so concurrent clients on different
//! sessions never serialize behind each other's rule engine runs.

use cerfix::MonitorSession;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A registered session: monitor state plus its idle clock.
#[derive(Debug)]
pub struct SessionEntry {
    /// The core monitor session (tuple, validated sets, round count).
    pub session: MonitorSession,
    /// Last time a client touched this session.
    pub last_touched: Instant,
}

/// Why a session lookup failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No such id (never existed, committed, aborted, or evicted).
    NotFound(u64),
    /// The registry is at capacity.
    Full {
        /// The configured capacity that was hit.
        max_sessions: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NotFound(id) => write!(
                f,
                "unknown session {id} (expired, finished, or never created)"
            ),
            SessionError::Full { max_sessions } => {
                write!(f, "session registry full ({max_sessions} live sessions)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// The concurrent session registry with idle eviction.
#[derive(Debug)]
pub struct SessionManager {
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionEntry>>>>,
    next_id: AtomicU64,
    idle_ttl: Duration,
    max_sessions: usize,
}

impl SessionManager {
    /// A registry evicting sessions idle for `idle_ttl`, holding at most
    /// `max_sessions` live sessions.
    pub fn new(idle_ttl: Duration, max_sessions: usize) -> SessionManager {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            idle_ttl,
            max_sessions: max_sessions.max(1),
        }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        lock(&self.sessions).len()
    }

    /// True iff no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured live-session quota.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// True iff the registry is at its live-session quota (an
    /// `overloaded` ready-cause; the next `create` must evict or fail).
    pub fn at_capacity(&self) -> bool {
        self.len() >= self.max_sessions
    }

    /// Register `session` and return its server id. Runs an eviction
    /// sweep first when at capacity.
    pub fn create(&self, session: MonitorSession) -> Result<u64, SessionError> {
        if self.len() >= self.max_sessions {
            self.evict_idle();
        }
        let mut map = lock(&self.sessions);
        if map.len() >= self.max_sessions {
            return Err(SessionError::Full {
                max_sessions: self.max_sessions,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        map.insert(
            id,
            Arc::new(Mutex::new(SessionEntry {
                session,
                last_touched: Instant::now(),
            })),
        );
        Ok(id)
    }

    /// Re-register a recovered session under its original id (journal /
    /// snapshot replay) and keep the id allocator ahead of it. Replaces
    /// any existing entry with that id (replay is the authority).
    pub fn restore(&self, id: u64, session: MonitorSession) {
        let mut map = lock(&self.sessions);
        map.insert(
            id,
            Arc::new(Mutex::new(SessionEntry {
                session,
                last_touched: Instant::now(),
            })),
        );
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
    }

    /// Clone every live session, sorted by id — the snapshotter's view.
    /// Sessions mid-operation are cloned after that operation finishes
    /// (their entry lock is taken); the service-level storage gate keeps
    /// the set itself stable while this runs.
    pub fn export(&self) -> Vec<(u64, MonitorSession)> {
        let entries: Vec<(u64, Arc<Mutex<SessionEntry>>)> = lock(&self.sessions)
            .iter()
            .map(|(&id, entry)| (id, Arc::clone(entry)))
            .collect();
        let mut sessions: Vec<(u64, MonitorSession)> = entries
            .into_iter()
            .map(|(id, entry)| (id, lock(&entry).session.clone()))
            .collect();
        sessions.sort_by_key(|&(id, _)| id);
        sessions
    }

    /// The id the next `create` will hand out.
    pub fn next_id(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Reserve `n` consecutive ids from the session-id space without
    /// registering sessions (batch `clean` jobs use them for audit
    /// attribution, so batch tuples and interactive sessions never
    /// collide in the provenance stream). Returns the first id.
    pub fn allocate_ids(&self, n: u64) -> u64 {
        self.next_id.fetch_add(n, Ordering::Relaxed)
    }

    /// Move the id allocator forward to at least `id` (snapshot replay).
    pub fn advance_next_id(&self, id: u64) {
        self.next_id.fetch_max(id, Ordering::Relaxed);
    }

    /// Run `f` on the session, touching its idle clock. The map lock is
    /// released before `f` runs; only that session's lock is held.
    pub fn with_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut MonitorSession) -> R,
    ) -> Result<R, SessionError> {
        let entry = lock(&self.sessions)
            .get(&id)
            .cloned()
            .ok_or(SessionError::NotFound(id))?;
        let mut guard = lock(&entry);
        guard.last_touched = Instant::now();
        Ok(f(&mut guard.session))
    }

    /// Remove the session, returning its final state (commit/abort).
    pub fn remove(&self, id: u64) -> Result<MonitorSession, SessionError> {
        let entry = lock(&self.sessions)
            .remove(&id)
            .ok_or(SessionError::NotFound(id))?;
        // The Arc may still be briefly held by a concurrent `with_session`
        // caller; wait for it by locking, then move the state out.
        let guard = lock(&entry);
        Ok(guard.session.clone())
    }

    /// Evict sessions idle longer than the TTL; returns the evicted ids
    /// (the service journals them so recovery doesn't resurrect them).
    pub fn evict_idle(&self) -> Vec<u64> {
        let now = Instant::now();
        let mut map = lock(&self.sessions);
        let mut evicted = Vec::new();
        map.retain(|&id, entry| {
            // Skip (keep) sessions currently being operated on.
            let keep = match entry.try_lock() {
                Ok(guard) => now.duration_since(guard.last_touched) < self.idle_ttl,
                Err(_) => true,
            };
            if !keep {
                evicted.push(id);
            }
            keep
        });
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{Schema, Tuple};

    fn mk_session(id: usize) -> MonitorSession {
        let schema = Schema::of_strings("t", ["a", "b"]).unwrap();
        MonitorSession::new(id, Tuple::of_strings(schema, ["1", "2"]).unwrap())
    }

    #[test]
    fn create_use_remove() {
        let mgr = SessionManager::new(Duration::from_secs(60), 16);
        let id = mgr.create(mk_session(0)).unwrap();
        assert_eq!(mgr.len(), 1);
        let arity = mgr.with_session(id, |s| s.tuple.arity()).unwrap();
        assert_eq!(arity, 2);
        let session = mgr.remove(id).unwrap();
        assert_eq!(session.tuple_id, 0);
        assert!(mgr.is_empty());
        assert_eq!(
            mgr.with_session(id, |_| ()),
            Err(SessionError::NotFound(id))
        );
        assert!(matches!(mgr.remove(id), Err(SessionError::NotFound(_))));
    }

    #[test]
    fn ids_are_unique() {
        let mgr = SessionManager::new(Duration::from_secs(60), 64);
        let ids: std::collections::BTreeSet<u64> = (0..32)
            .map(|i| mgr.create(mk_session(i)).unwrap())
            .collect();
        assert_eq!(ids.len(), 32);
    }

    #[test]
    fn idle_eviction() {
        let mgr = SessionManager::new(Duration::from_millis(10), 16);
        let id = mgr.create(mk_session(0)).unwrap();
        assert!(mgr.evict_idle().is_empty(), "fresh session survives");
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(mgr.evict_idle(), vec![id]);
        assert!(matches!(
            mgr.with_session(id, |_| ()),
            Err(SessionError::NotFound(_))
        ));
    }

    #[test]
    fn capacity_enforced_with_eviction_rescue() {
        let mgr = SessionManager::new(Duration::from_millis(5), 2);
        mgr.create(mk_session(0)).unwrap();
        mgr.create(mk_session(1)).unwrap();
        // Both fresh: third create fails.
        assert!(matches!(
            mgr.create(mk_session(2)),
            Err(SessionError::Full { .. })
        ));
        // Once idle, capacity frees up via the create-path sweep.
        std::thread::sleep(Duration::from_millis(15));
        assert!(mgr.create(mk_session(3)).is_ok());
        assert_eq!(mgr.len(), 1);
    }

    #[test]
    fn touch_resets_idle_clock() {
        let mgr = SessionManager::new(Duration::from_millis(30), 16);
        let id = mgr.create(mk_session(0)).unwrap();
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(15));
            mgr.with_session(id, |_| ()).unwrap();
        }
        assert!(mgr.evict_idle().is_empty(), "kept alive by touches");
    }

    #[test]
    fn restore_preserves_ids_and_advances_allocator() {
        let mgr = SessionManager::new(Duration::from_secs(60), 16);
        mgr.restore(7, mk_session(7));
        mgr.restore(12, mk_session(12));
        assert_eq!(mgr.len(), 2);
        assert!(mgr.next_id() >= 13, "allocator moved past restored ids");
        let fresh = mgr.create(mk_session(0)).unwrap();
        assert!(fresh > 12, "no id collision after recovery");
        let exported = mgr.export();
        assert_eq!(
            exported.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![7, 12, fresh],
            "export is id-sorted"
        );
        assert_eq!(exported[0].1.tuple_id, 7);
    }
}
