//! Server-side session registry.
//!
//! Each client session wraps one [`MonitorSession`] (the core monitor's
//! per-tuple state) with a server id and an idle clock. The registry is
//! a two-level lock: the map itself is held only to look up / insert /
//! remove, while per-session work (validation, fixpoint runs) happens
//! under that session's own mutex — so concurrent clients on different
//! sessions never serialize behind each other's rule engine runs.

use cerfix::MonitorSession;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A registered session: monitor state plus its idle clock.
#[derive(Debug)]
pub struct SessionEntry {
    /// The core monitor session (tuple, validated sets, round count).
    pub session: MonitorSession,
    /// Last time a client touched this session.
    pub last_touched: Instant,
}

/// Why a session lookup failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No such id (never existed, committed, aborted, or evicted).
    NotFound(u64),
    /// The registry is at capacity.
    Full {
        /// The configured capacity that was hit.
        max_sessions: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NotFound(id) => write!(
                f,
                "unknown session {id} (expired, finished, or never created)"
            ),
            SessionError::Full { max_sessions } => {
                write!(f, "session registry full ({max_sessions} live sessions)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// The concurrent session registry with idle eviction.
#[derive(Debug)]
pub struct SessionManager {
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionEntry>>>>,
    next_id: AtomicU64,
    idle_ttl: Duration,
    max_sessions: usize,
}

impl SessionManager {
    /// A registry evicting sessions idle for `idle_ttl`, holding at most
    /// `max_sessions` live sessions.
    pub fn new(idle_ttl: Duration, max_sessions: usize) -> SessionManager {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            idle_ttl,
            max_sessions: max_sessions.max(1),
        }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        lock(&self.sessions).len()
    }

    /// True iff no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Register `session` and return its server id. Runs an eviction
    /// sweep first when at capacity.
    pub fn create(&self, session: MonitorSession) -> Result<u64, SessionError> {
        if self.len() >= self.max_sessions {
            self.evict_idle();
        }
        let mut map = lock(&self.sessions);
        if map.len() >= self.max_sessions {
            return Err(SessionError::Full {
                max_sessions: self.max_sessions,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        map.insert(
            id,
            Arc::new(Mutex::new(SessionEntry {
                session,
                last_touched: Instant::now(),
            })),
        );
        Ok(id)
    }

    /// Run `f` on the session, touching its idle clock. The map lock is
    /// released before `f` runs; only that session's lock is held.
    pub fn with_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut MonitorSession) -> R,
    ) -> Result<R, SessionError> {
        let entry = lock(&self.sessions)
            .get(&id)
            .cloned()
            .ok_or(SessionError::NotFound(id))?;
        let mut guard = lock(&entry);
        guard.last_touched = Instant::now();
        Ok(f(&mut guard.session))
    }

    /// Remove the session, returning its final state (commit/abort).
    pub fn remove(&self, id: u64) -> Result<MonitorSession, SessionError> {
        let entry = lock(&self.sessions)
            .remove(&id)
            .ok_or(SessionError::NotFound(id))?;
        // The Arc may still be briefly held by a concurrent `with_session`
        // caller; wait for it by locking, then move the state out.
        let guard = lock(&entry);
        Ok(guard.session.clone())
    }

    /// Evict sessions idle longer than the TTL; returns how many.
    pub fn evict_idle(&self) -> usize {
        let now = Instant::now();
        let mut map = lock(&self.sessions);
        let before = map.len();
        map.retain(|_, entry| {
            // Skip (keep) sessions currently being operated on.
            match entry.try_lock() {
                Ok(guard) => now.duration_since(guard.last_touched) < self.idle_ttl,
                Err(_) => true,
            }
        });
        before - map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{Schema, Tuple};

    fn mk_session(id: usize) -> MonitorSession {
        let schema = Schema::of_strings("t", ["a", "b"]).unwrap();
        MonitorSession::new(id, Tuple::of_strings(schema, ["1", "2"]).unwrap())
    }

    #[test]
    fn create_use_remove() {
        let mgr = SessionManager::new(Duration::from_secs(60), 16);
        let id = mgr.create(mk_session(0)).unwrap();
        assert_eq!(mgr.len(), 1);
        let arity = mgr.with_session(id, |s| s.tuple.arity()).unwrap();
        assert_eq!(arity, 2);
        let session = mgr.remove(id).unwrap();
        assert_eq!(session.tuple_id, 0);
        assert!(mgr.is_empty());
        assert_eq!(
            mgr.with_session(id, |_| ()),
            Err(SessionError::NotFound(id))
        );
        assert!(matches!(mgr.remove(id), Err(SessionError::NotFound(_))));
    }

    #[test]
    fn ids_are_unique() {
        let mgr = SessionManager::new(Duration::from_secs(60), 64);
        let ids: std::collections::BTreeSet<u64> = (0..32)
            .map(|i| mgr.create(mk_session(i)).unwrap())
            .collect();
        assert_eq!(ids.len(), 32);
    }

    #[test]
    fn idle_eviction() {
        let mgr = SessionManager::new(Duration::from_millis(10), 16);
        let id = mgr.create(mk_session(0)).unwrap();
        assert_eq!(mgr.evict_idle(), 0, "fresh session survives");
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(mgr.evict_idle(), 1);
        assert!(matches!(
            mgr.with_session(id, |_| ()),
            Err(SessionError::NotFound(_))
        ));
    }

    #[test]
    fn capacity_enforced_with_eviction_rescue() {
        let mgr = SessionManager::new(Duration::from_millis(5), 2);
        mgr.create(mk_session(0)).unwrap();
        mgr.create(mk_session(1)).unwrap();
        // Both fresh: third create fails.
        assert!(matches!(
            mgr.create(mk_session(2)),
            Err(SessionError::Full { .. })
        ));
        // Once idle, capacity frees up via the create-path sweep.
        std::thread::sleep(Duration::from_millis(15));
        assert!(mgr.create(mk_session(3)).is_ok());
        assert_eq!(mgr.len(), 1);
    }

    #[test]
    fn touch_resets_idle_clock() {
        let mgr = SessionManager::new(Duration::from_millis(30), 16);
        let id = mgr.create(mk_session(0)).unwrap();
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(15));
            mgr.with_session(id, |_| ()).unwrap();
        }
        assert_eq!(mgr.evict_idle(), 0, "kept alive by touches");
    }
}
