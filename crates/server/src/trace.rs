//! Per-request tracing: fixed-size lock-free span rings.
//!
//! A [`Span`] is the execution record of one wire request — its trace
//! id (derived from the client-supplied `"id"` when present), per-stage
//! timings (parse, dispatch, engine, fsync-wait, serialize) and the
//! [`EngineStats`] delta the request charged to the correcting engine.
//! Spans are built on the caller's stack and published into a
//! [`TraceRing`]: a power-of-two array of seqlock slots claimed by a
//! single `fetch_add`, written with relaxed atomic stores. Recording
//! therefore never locks and never allocates, which is what lets the
//! CI-guarded `session.get = 0 allocs/req` invariant hold with tracing
//! enabled.
//!
//! A [`TraceSink`] pairs the main ring with a small slow-request ring:
//! spans whose total latency crosses the configured threshold are
//! duplicated there, so a burst of fast requests cannot wash a slow
//! outlier out of the window before an operator reads `trace.read`.
//!
//! Readers ([`TraceRing::read_recent`]) walk backwards from the claim
//! head and validate each slot's sequence before and after copying its
//! words; a slot being overwritten concurrently is simply skipped.
//! Telemetry reads allocate (a `Vec` of spans) — they are off the hot
//! path by construction.

use cerfix::EngineStats;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};
use std::time::Duration;

/// Words per slot: trace id, op index, eight timings, four engine-stat
/// deltas (see `Span::to_words` / `Span::from_words`).
const SLOT_WORDS: usize = 14;

/// Slots in the slow-request ring (fixed; the threshold, not the
/// buffer, is the operator's knob).
const SLOW_SLOTS: usize = 64;

/// Largest main-ring size `--trace-buffer` is clamped to.
const MAX_SLOTS: usize = 1 << 20;

/// Set on trace ids the server synthesized because the request carried
/// no usable `"id"` — keeps them disjoint from echoed client ids.
const SYNTHETIC_BIT: u64 = 1 << 63;

/// One request's execution record. Plain stack data: the request path
/// fills the fields in place and publishes the finished span with one
/// [`TraceSink::record`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Span {
    /// Correlation id: the numeric wire `"id"` verbatim, an FNV-1a hash
    /// of a non-numeric id, or a synthesized id (high bit set).
    pub trace_id: u64,
    /// Latency-class index into [`crate::metrics::LATENCY_OPS`].
    pub op: usize,
    /// End-to-end service time (transport excluded), nanoseconds.
    pub total_ns: u64,
    /// Wire scanning + request parsing.
    pub parse_ns: u64,
    /// Dispatch overhead: total minus every attributed stage.
    pub dispatch_ns: u64,
    /// Correcting-engine work (fixpoint runs under the session lock).
    pub engine_ns: u64,
    /// Time blocked on the journal's group fsync.
    pub fsync_ns: u64,
    /// Time blocked waiting for follower quorum acks (zero outside
    /// quorum-mode commits).
    pub quorum_ns: u64,
    /// Response rendering (tree path; fused into dispatch on the
    /// direct-render hot path).
    pub serialize_ns: u64,
    /// Receipt → dispatch queue wait (worker-pool queueing for batched
    /// heavy ops; ~0 on the inline path). Kept OUTSIDE `total_ns`,
    /// which starts when service begins.
    pub queue_ns: u64,
    /// Absolute request deadline, when the client sent `deadline_ms` —
    /// threaded through dispatch so quorum waits can cut off early.
    /// Not serialized into the ring.
    pub deadline: Option<std::time::Instant>,
    /// Engine work this request performed (deltas, not totals).
    pub stats: EngineStats,
}

impl Span {
    fn to_words(self) -> [u64; SLOT_WORDS] {
        [
            self.trace_id,
            self.op as u64,
            self.total_ns,
            self.parse_ns,
            self.dispatch_ns,
            self.engine_ns,
            self.fsync_ns,
            self.quorum_ns,
            self.serialize_ns,
            self.queue_ns,
            self.stats.fixpoint_runs as u64,
            self.stats.rule_attempts as u64,
            self.stats.master_lookups as u64,
            self.stats.index_probes as u64,
        ]
    }

    fn from_words(words: [u64; SLOT_WORDS]) -> Span {
        Span {
            trace_id: words[0],
            op: words[1] as usize,
            total_ns: words[2],
            parse_ns: words[3],
            dispatch_ns: words[4],
            engine_ns: words[5],
            fsync_ns: words[6],
            quorum_ns: words[7],
            serialize_ns: words[8],
            queue_ns: words[9],
            // Deadlines are live-request plumbing, not telemetry.
            deadline: None,
            stats: EngineStats {
                fixpoint_runs: words[10] as usize,
                rule_attempts: words[11] as usize,
                master_lookups: words[12] as usize,
                index_probes: words[13] as usize,
            },
        }
    }

    /// True iff the trace id was synthesized by the server (no usable
    /// client `"id"` on the request).
    pub(crate) fn synthetic_id(&self) -> bool {
        self.trace_id & SYNTHETIC_BIT != 0
    }
}

/// One seqlock slot. `seq` encodes the claim generation: `2g + 1` while
/// the writer of claim `g` is storing words, `2g + 2` once it is done.
/// A reader accepts a slot only when it observes the same "done" value
/// on both sides of its copy.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Fixed-size multi-writer span ring. Writers claim monotonically
/// increasing indices with one `fetch_add` and publish via the slot
/// seqlock; the ring keeps the most recent `len` spans.
pub(crate) struct TraceRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next claim index (monotonic; total spans ever recorded).
    head: AtomicU64,
}

impl TraceRing {
    /// A ring holding `capacity` spans, rounded up to a power of two
    /// (clamped to [`MAX_SLOTS`]); 0 disables the ring entirely.
    pub(crate) fn new(capacity: usize) -> TraceRing {
        let len = match capacity {
            0 => 0,
            n => n.next_power_of_two().min(MAX_SLOTS),
        };
        TraceRing {
            slots: (0..len).map(|_| Slot::new()).collect(),
            mask: len.wrapping_sub(1) as u64,
            head: AtomicU64::new(0),
        }
    }

    /// True iff the ring records anything.
    pub(crate) fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Spans ever recorded (monotonic, survives wrap-around).
    pub(crate) fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Publish one span. Lock-free and allocation-free: a claim
    /// `fetch_add` plus relaxed word stores bracketed by the slot's
    /// sequence. A reader racing this slot observes a torn sequence and
    /// skips it.
    pub(crate) fn record(&self, span: &Span) {
        if self.slots.is_empty() {
            return;
        }
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim & self.mask) as usize];
        slot.seq.store(claim * 2 + 1, Ordering::Release);
        fence(Ordering::Release);
        for (word, value) in slot.words.iter().zip(span.to_words()) {
            word.store(value, Ordering::Relaxed);
        }
        fence(Ordering::Release);
        slot.seq.store(claim * 2 + 2, Ordering::Release);
    }

    /// Copy out up to `limit` of the most recent spans, newest first.
    /// Slots mid-overwrite (or lost to a lapping writer during the
    /// copy) are skipped — telemetry, not a log.
    pub(crate) fn read_recent(&self, limit: usize) -> Vec<Span> {
        let head = self.head.load(Ordering::Acquire);
        let window = (self.slots.len() as u64).min(head);
        let mut spans = Vec::with_capacity(limit.min(window as usize));
        for back in 0..window {
            if spans.len() >= limit {
                break;
            }
            let claim = head - 1 - back;
            let slot = &self.slots[(claim & self.mask) as usize];
            let expect = claim * 2 + 2;
            if slot.seq.load(Ordering::Acquire) != expect {
                continue;
            }
            let mut words = [0u64; SLOT_WORDS];
            for (out, word) in words.iter_mut().zip(&slot.words) {
                *out = word.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == expect {
                spans.push(Span::from_words(words));
            }
        }
        spans
    }
}

/// Read a possibly poisoned lock — ring swaps can't corrupt the data,
/// so a panicked holder is survivable.
fn rlock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// The service's tracing state: the main span ring, the slow-request
/// ring, the slow threshold and the fallback id allocator. The rings
/// sit behind an `RwLock<Arc<_>>` so `config.set` can swap in a
/// resized ring at runtime; the hot path only ever takes the
/// uncontended read side (no allocation, no blocking in steady state).
pub(crate) struct TraceSink {
    ring: RwLock<Arc<TraceRing>>,
    slow: RwLock<Arc<TraceRing>>,
    slow_ns: AtomicU64,
    synthetic: AtomicU64,
}

impl TraceSink {
    /// A sink whose main ring holds `buffer` spans (0 = tracing off)
    /// and whose slow ring captures spans at least `slow` long.
    pub(crate) fn new(buffer: usize, slow: Duration) -> TraceSink {
        TraceSink {
            ring: RwLock::new(Arc::new(TraceRing::new(buffer))),
            slow: RwLock::new(Arc::new(TraceRing::new(if buffer == 0 {
                0
            } else {
                SLOW_SLOTS
            }))),
            slow_ns: AtomicU64::new(slow.as_nanos().min(u64::MAX as u128) as u64),
            synthetic: AtomicU64::new(0),
        }
    }

    /// True iff spans are being recorded.
    pub(crate) fn enabled(&self) -> bool {
        rlock(&self.ring).enabled()
    }

    /// The slow-request threshold, nanoseconds.
    pub(crate) fn slow_ns(&self) -> u64 {
        self.slow_ns.load(Ordering::Relaxed)
    }

    /// Retune the slow-request threshold (the `config.set slow_ms`
    /// knob). Takes effect for the next recorded span.
    pub(crate) fn set_slow_ns(&self, slow_ns: u64) {
        self.slow_ns.store(slow_ns, Ordering::Relaxed);
    }

    /// Swap in a fresh main ring of `buffer` slots (0 = tracing off).
    /// Buffered spans and the recorded counter start over — resizing
    /// is an operator action, not a hot-path one.
    pub(crate) fn resize(&self, buffer: usize) {
        let slow_slots = if buffer == 0 { 0 } else { SLOW_SLOTS };
        *self.ring.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(TraceRing::new(buffer));
        *self.slow.write().unwrap_or_else(|e| e.into_inner()) =
            Arc::new(TraceRing::new(slow_slots));
    }

    /// The main ring's current capacity in slots.
    pub(crate) fn capacity(&self) -> usize {
        rlock(&self.ring).slots.len()
    }

    /// The main ring (for `trace.read`).
    pub(crate) fn ring(&self) -> Arc<TraceRing> {
        Arc::clone(&rlock(&self.ring))
    }

    /// The slow-request ring (for `trace.read`).
    pub(crate) fn slow(&self) -> Arc<TraceRing> {
        Arc::clone(&rlock(&self.slow))
    }

    /// Publish a finished span; duplicates it into the slow ring when
    /// it crosses the threshold.
    pub(crate) fn record(&self, span: &Span) {
        let ring = rlock(&self.ring);
        if !ring.enabled() {
            return;
        }
        ring.record(span);
        if span.total_ns >= self.slow_ns() {
            rlock(&self.slow).record(span);
        }
    }

    /// The trace id for a request whose raw wire `"id"` span is
    /// `raw_id`: a numeric id verbatim, a non-numeric id FNV-1a hashed
    /// (high bit cleared so hashes stay disjoint from synthesized ids),
    /// or a fresh synthesized id when the request carried none.
    pub(crate) fn trace_id(&self, raw_id: Option<&str>) -> u64 {
        match raw_id {
            Some(raw) => match raw.parse::<u64>() {
                Ok(n) if n & SYNTHETIC_BIT == 0 => n,
                _ => fnv1a(raw.as_bytes()) & !SYNTHETIC_BIT,
            },
            None => self.synthetic.fetch_add(1, Ordering::Relaxed) | SYNTHETIC_BIT,
        }
    }
}

/// FNV-1a, 64-bit — stable, dependency-free hashing for non-numeric
/// request ids.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, total_ns: u64) -> Span {
        Span {
            trace_id,
            op: 2,
            total_ns,
            parse_ns: 1,
            dispatch_ns: 2,
            engine_ns: 3,
            fsync_ns: 4,
            quorum_ns: 9,
            serialize_ns: 5,
            queue_ns: 11,
            deadline: None,
            stats: EngineStats {
                fixpoint_runs: 1,
                rule_attempts: 6,
                master_lookups: 7,
                index_probes: 8,
            },
        }
    }

    #[test]
    fn ring_keeps_most_recent_spans_newest_first() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.record(&span(i, 100));
        }
        assert_eq!(ring.recorded(), 10);
        let spans = ring.read_recent(16);
        let ids: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
        assert_eq!(ids, vec![9, 8, 7, 6]);
        // Round-trip preserves every field.
        assert_eq!(spans[0], span(9, 100));
        // Limit truncates from the newest end.
        assert_eq!(ring.read_recent(2).len(), 2);
        assert_eq!(ring.read_recent(2)[0].trace_id, 9);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let sink = TraceSink::new(0, Duration::from_millis(1));
        assert!(!sink.enabled());
        sink.record(&span(1, u64::MAX));
        assert_eq!(sink.ring().recorded(), 0);
        assert_eq!(sink.slow().recorded(), 0);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let ring = TraceRing::new(5);
        for i in 0..8u64 {
            ring.record(&span(i, 1));
        }
        assert_eq!(ring.read_recent(64).len(), 8);
    }

    #[test]
    fn slow_ring_captures_only_threshold_crossers() {
        let sink = TraceSink::new(8, Duration::from_micros(10));
        sink.record(&span(1, 9_999));
        sink.record(&span(2, 10_000));
        sink.record(&span(3, 50_000));
        let slow = sink.slow().read_recent(16);
        let ids: Vec<u64> = slow.iter().map(|s| s.trace_id).collect();
        assert_eq!(ids, vec![3, 2]);
        assert_eq!(sink.ring().read_recent(16).len(), 3);
    }

    #[test]
    fn resize_and_retune_apply_at_runtime() {
        let sink = TraceSink::new(0, Duration::from_millis(500));
        assert!(!sink.enabled());
        sink.record(&span(1, u64::MAX));
        assert_eq!(sink.ring().recorded(), 0);

        // config.set trace_buffer: the swapped-in ring records.
        sink.resize(4);
        assert!(sink.enabled());
        assert_eq!(sink.capacity(), 4);
        sink.record(&span(2, 1_000));
        assert_eq!(sink.ring().recorded(), 1);
        assert_eq!(sink.ring().read_recent(4)[0], span(2, 1_000));

        // config.set slow_ms: the new threshold gates the slow ring.
        assert_eq!(sink.slow().recorded(), 0);
        sink.set_slow_ns(500);
        sink.record(&span(3, 600));
        assert_eq!(sink.slow().recorded(), 1);

        // Shrinking back to zero disables both rings again.
        sink.resize(0);
        assert!(!sink.enabled());
        sink.record(&span(4, u64::MAX));
        assert_eq!(sink.ring().recorded(), 0);
        assert_eq!(sink.slow().recorded(), 0);
    }

    #[test]
    fn trace_ids_echo_numeric_hash_strings_and_synthesize() {
        let sink = TraceSink::new(8, Duration::from_secs(1));
        assert_eq!(sink.trace_id(Some("42")), 42);
        let hashed = sink.trace_id(Some("\"x-1\""));
        assert_eq!(hashed, sink.trace_id(Some("\"x-1\"")), "hash is stable");
        assert_eq!(hashed & SYNTHETIC_BIT, 0);
        let a = sink.trace_id(None);
        let b = sink.trace_id(None);
        assert_ne!(a, b);
        assert!(a & SYNTHETIC_BIT != 0 && b & SYNTHETIC_BIT != 0);
    }

    #[test]
    fn concurrent_writers_never_tear_reads() {
        let ring = std::sync::Arc::new(TraceRing::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ring = std::sync::Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    // Every writer's words are internally consistent:
                    // trace_id == total_ns, so a torn read is visible.
                    let id = t * 1_000_000 + i;
                    ring.record(&span(id, id));
                }
            }));
        }
        for _ in 0..200 {
            for s in ring.read_recent(8) {
                assert_eq!(s.trace_id, s.total_ns, "torn span escaped the seqlock");
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), 8_000);
        for s in ring.read_recent(8) {
            assert_eq!(s.trace_id, s.total_ns);
        }
    }
}
