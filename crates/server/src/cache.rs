//! Per-ruleset analysis cache.
//!
//! Certain regions and consistency verdicts depend only on (rule set,
//! master data, options) — never on the tuples being cleaned — so a
//! long-lived service computes each once and serves every later session
//! from the cache. Keys embed a fingerprint of the rule set (hash of its
//! canonical DSL rendering) so a future service hosting several rule
//! sets, or hot-reloading one, gets correct isolation for free.

use crate::metrics::ServiceMetrics;
use cerfix::{CompiledRules, ConsistencyReport, RegionSearch};
use cerfix_rules::{render_er_dsl, RuleSet};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, PoisonError};

/// Stable fingerprint of a rule set: schema names/arities plus the
/// canonical DSL rendering of every rule, hashed.
pub fn ruleset_fingerprint(rules: &RuleSet) -> u64 {
    let mut hasher = DefaultHasher::new();
    let input = rules.input_schema();
    let master = rules.master_schema();
    input.name().hash(&mut hasher);
    master.name().hash(&mut hasher);
    for schema in [input, master] {
        for attr in schema.attributes() {
            attr.name().hash(&mut hasher);
        }
    }
    for (_, rule) in rules.iter() {
        render_er_dsl(rule, input, master).hash(&mut hasher);
    }
    hasher.finish()
}

/// Cache of region searches and consistency verdicts.
///
/// The first computation for a key runs while holding the cache lock:
/// concurrent requests for the same analysis wait and then hit, instead
/// of burning cores duplicating an expensive search. (Requests for
/// *different* keys also wait during that window — acceptable for the
/// handful of distinct analyses a service sees.)
#[derive(Debug, Default)]
pub struct AnalysisCache {
    /// Full region searches, keyed by `(ruleset fingerprint, master
    /// generation)`. The generation is part of the key so a master
    /// append can never serve regions certified against old data; the
    /// search retains every candidate verdict, so any `top_k` view and
    /// any later delta re-certification come from the same entry.
    regions: Mutex<HashMap<(u64, u64), Arc<RegionSearch>>>,
    consistency: Mutex<HashMap<(u64, u64, String), Arc<ConsistencyReport>>>,
    /// Compiled execution plans, keyed by `(ruleset fingerprint, master
    /// generation)`: every per-request monitor shares one plan instead of
    /// recompiling masks and re-resolving index snapshots.
    plans: Mutex<HashMap<(u64, u64), Arc<CompiledRules>>>,
}

impl AnalysisCache {
    /// Empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// The region search for `(fingerprint, master_generation)`,
    /// computing it with `compute` on first use. The flag is `true` on a
    /// cache hit.
    pub fn regions(
        &self,
        fingerprint: u64,
        master_generation: u64,
        metrics: &ServiceMetrics,
        compute: impl FnOnce() -> RegionSearch,
    ) -> (Arc<RegionSearch>, bool) {
        let mut map = self.regions.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = map.get(&(fingerprint, master_generation)) {
            metrics.cache_hit();
            return (Arc::clone(hit), true);
        }
        metrics.cache_miss();
        let computed = Arc::new(compute());
        map.insert((fingerprint, master_generation), Arc::clone(&computed));
        (computed, false)
    }

    /// The cached region search for `(fingerprint, master_generation)`,
    /// if any — the prior state a master-append delta re-certification
    /// patches.
    pub fn cached_regions(
        &self,
        fingerprint: u64,
        master_generation: u64,
    ) -> Option<Arc<RegionSearch>> {
        self.regions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(fingerprint, master_generation))
            .cloned()
    }

    /// Drop every analysis of `fingerprint` certified against a master
    /// generation older than `current`. A master append makes those keys
    /// unreachable (requests always carry the live generation), so
    /// without retirement periodic appends would grow the cache without
    /// bound; in-flight holders keep their `Arc`s alive independently.
    pub fn retire_generations(&self, fingerprint: u64, current: u64) {
        self.regions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|&(fp, generation), _| fp != fingerprint || generation >= current);
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|&(fp, generation), _| fp != fingerprint || generation >= current);
        self.consistency
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(fp, generation, _), _| *fp != fingerprint || *generation >= current);
    }

    /// The compiled plan for `(fingerprint, master_generation)`,
    /// compiling with `compute` on first use. The flag is `true` on a
    /// cache hit.
    pub fn plan(
        &self,
        fingerprint: u64,
        master_generation: u64,
        metrics: &ServiceMetrics,
        compute: impl FnOnce() -> CompiledRules,
    ) -> (Arc<CompiledRules>, bool) {
        let mut map = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = map.get(&(fingerprint, master_generation)) {
            metrics.cache_hit();
            return (Arc::clone(hit), true);
        }
        metrics.cache_miss();
        let computed = Arc::new(compute());
        map.insert((fingerprint, master_generation), Arc::clone(&computed));
        (computed, false)
    }

    /// The consistency verdict for `(fingerprint, master_generation,
    /// mode)`, computing it with `compute` on first use. The flag is
    /// `true` on a cache hit. (Generation-keyed for the same reason as
    /// regions: verdicts depend on master data.)
    pub fn consistency(
        &self,
        fingerprint: u64,
        master_generation: u64,
        mode: &str,
        metrics: &ServiceMetrics,
        compute: impl FnOnce() -> ConsistencyReport,
    ) -> (Arc<ConsistencyReport>, bool) {
        let mut map = self
            .consistency
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = map.get(&(fingerprint, master_generation, mode.to_string())) {
            metrics.cache_hit();
            return (Arc::clone(hit), true);
        }
        metrics.cache_miss();
        let computed = Arc::new(compute());
        map.insert(
            (fingerprint, master_generation, mode.to_string()),
            Arc::clone(&computed),
        );
        (computed, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Schema;

    #[test]
    fn fingerprint_distinguishes_rulesets() {
        let input = Schema::of_strings("in", ["a", "b"]).unwrap();
        let master = Schema::of_strings("m", ["a", "b"]).unwrap();
        let empty = RuleSet::new(input.clone(), master.clone());
        let mut one = RuleSet::new(input.clone(), master.clone());
        one.add(
            cerfix_rules::EditingRule::new(
                "r",
                &input,
                &master,
                vec![(0, 0)],
                vec![(1, 1)],
                cerfix_rules::PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
        assert_ne!(ruleset_fingerprint(&empty), ruleset_fingerprint(&one));
        assert_eq!(
            ruleset_fingerprint(&one),
            ruleset_fingerprint(&one),
            "stable"
        );
    }

    fn empty_search() -> RegionSearch {
        let input = Schema::of_strings("in", ["a", "b"]).unwrap();
        let master = Schema::of_strings("m", ["a", "b"]).unwrap();
        let rules = RuleSet::new(input, master.clone());
        let md = cerfix::MasterData::new(cerfix_relation::Relation::empty(master));
        cerfix::search_regions(&rules, &md, &[], &cerfix::RegionFinderOptions::default())
    }

    #[test]
    fn region_cache_hits_after_first_compute_and_keys_by_generation() {
        let cache = AnalysisCache::new();
        let metrics = ServiceMetrics::new();
        let mut computes = 0;
        for round in 0..3 {
            let (_, hit) = cache.regions(1, 0, &metrics, || {
                computes += 1;
                empty_search()
            });
            assert_eq!(hit, round > 0);
        }
        assert_eq!(computes, 1);
        let snap = metrics.snapshot();
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
        // A different master generation is a different key: a master
        // append can never serve regions certified against old data.
        let (_, hit) = cache.regions(1, 7, &metrics, empty_search);
        assert!(!hit);
        assert_eq!(metrics.snapshot().cache_misses, 2);
        assert!(cache.cached_regions(1, 0).is_some());
        assert!(cache.cached_regions(1, 7).is_some());
        assert!(cache.cached_regions(1, 3).is_none());
        assert!(cache.cached_regions(2, 0).is_none());
    }
}
