//! Per-ruleset analysis cache.
//!
//! Certain regions and consistency verdicts depend only on (rule set,
//! master data, options) — never on the tuples being cleaned — so a
//! long-lived service computes each once and serves every later session
//! from the cache. Keys embed a fingerprint of the rule set (hash of its
//! canonical DSL rendering) so a future service hosting several rule
//! sets, or hot-reloading one, gets correct isolation for free.

use crate::metrics::ServiceMetrics;
use cerfix::{CompiledRules, ConsistencyReport, RegionSearchResult};
use cerfix_rules::{render_er_dsl, RuleSet};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, PoisonError};

/// Stable fingerprint of a rule set: schema names/arities plus the
/// canonical DSL rendering of every rule, hashed.
pub fn ruleset_fingerprint(rules: &RuleSet) -> u64 {
    let mut hasher = DefaultHasher::new();
    let input = rules.input_schema();
    let master = rules.master_schema();
    input.name().hash(&mut hasher);
    master.name().hash(&mut hasher);
    for schema in [input, master] {
        for attr in schema.attributes() {
            attr.name().hash(&mut hasher);
        }
    }
    for (_, rule) in rules.iter() {
        render_er_dsl(rule, input, master).hash(&mut hasher);
    }
    hasher.finish()
}

/// Cache of region searches and consistency verdicts.
///
/// The first computation for a key runs while holding the cache lock:
/// concurrent requests for the same analysis wait and then hit, instead
/// of burning cores duplicating an expensive search. (Requests for
/// *different* keys also wait during that window — acceptable for the
/// handful of distinct analyses a service sees.)
#[derive(Debug, Default)]
pub struct AnalysisCache {
    regions: Mutex<HashMap<(u64, usize), Arc<RegionSearchResult>>>,
    consistency: Mutex<HashMap<(u64, String), Arc<ConsistencyReport>>>,
    /// Compiled execution plans, keyed by `(ruleset fingerprint, master
    /// generation)`: every per-request monitor shares one plan instead of
    /// recompiling masks and re-resolving index snapshots.
    plans: Mutex<HashMap<(u64, u64), Arc<CompiledRules>>>,
}

impl AnalysisCache {
    /// Empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// The region search for `(fingerprint, top_k)`, computing it with
    /// `compute` on first use. The flag is `true` on a cache hit.
    pub fn regions(
        &self,
        fingerprint: u64,
        top_k: usize,
        metrics: &ServiceMetrics,
        compute: impl FnOnce() -> RegionSearchResult,
    ) -> (Arc<RegionSearchResult>, bool) {
        let mut map = self.regions.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = map.get(&(fingerprint, top_k)) {
            metrics.cache_hit();
            return (Arc::clone(hit), true);
        }
        metrics.cache_miss();
        let computed = Arc::new(compute());
        map.insert((fingerprint, top_k), Arc::clone(&computed));
        (computed, false)
    }

    /// The compiled plan for `(fingerprint, master_generation)`,
    /// compiling with `compute` on first use. The flag is `true` on a
    /// cache hit.
    pub fn plan(
        &self,
        fingerprint: u64,
        master_generation: u64,
        metrics: &ServiceMetrics,
        compute: impl FnOnce() -> CompiledRules,
    ) -> (Arc<CompiledRules>, bool) {
        let mut map = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = map.get(&(fingerprint, master_generation)) {
            metrics.cache_hit();
            return (Arc::clone(hit), true);
        }
        metrics.cache_miss();
        let computed = Arc::new(compute());
        map.insert((fingerprint, master_generation), Arc::clone(&computed));
        (computed, false)
    }

    /// The consistency verdict for `(fingerprint, mode)`, computing it
    /// with `compute` on first use. The flag is `true` on a cache hit.
    pub fn consistency(
        &self,
        fingerprint: u64,
        mode: &str,
        metrics: &ServiceMetrics,
        compute: impl FnOnce() -> ConsistencyReport,
    ) -> (Arc<ConsistencyReport>, bool) {
        let mut map = self
            .consistency
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(hit) = map.get(&(fingerprint, mode.to_string())) {
            metrics.cache_hit();
            return (Arc::clone(hit), true);
        }
        metrics.cache_miss();
        let computed = Arc::new(compute());
        map.insert((fingerprint, mode.to_string()), Arc::clone(&computed));
        (computed, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Schema;

    #[test]
    fn fingerprint_distinguishes_rulesets() {
        let input = Schema::of_strings("in", ["a", "b"]).unwrap();
        let master = Schema::of_strings("m", ["a", "b"]).unwrap();
        let empty = RuleSet::new(input.clone(), master.clone());
        let mut one = RuleSet::new(input.clone(), master.clone());
        one.add(
            cerfix_rules::EditingRule::new(
                "r",
                &input,
                &master,
                vec![(0, 0)],
                vec![(1, 1)],
                cerfix_rules::PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
        assert_ne!(ruleset_fingerprint(&empty), ruleset_fingerprint(&one));
        assert_eq!(
            ruleset_fingerprint(&one),
            ruleset_fingerprint(&one),
            "stable"
        );
    }

    #[test]
    fn region_cache_hits_after_first_compute() {
        let cache = AnalysisCache::new();
        let metrics = ServiceMetrics::new();
        let mut computes = 0;
        for round in 0..3 {
            let (r, hit) = cache.regions(1, 8, &metrics, || {
                computes += 1;
                RegionSearchResult::default()
            });
            assert!(r.regions.is_empty());
            assert_eq!(hit, round > 0);
        }
        assert_eq!(computes, 1);
        let snap = metrics.snapshot();
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
        // A different top_k is a different key.
        let (_, hit) = cache.regions(1, 4, &metrics, RegionSearchResult::default);
        assert!(!hit);
        assert_eq!(metrics.snapshot().cache_misses, 2);
    }
}
