//! Linux epoll readiness-loop front end.
//!
//! One reactor thread multiplexes every connection:
//!
//! * **Nonblocking everything** — the listener, every connection, and a
//!   wakeup `eventfd` all sit in one epoll set; `epoll_wait` blocks with
//!   no timeout (housekeeping lives on its own timer thread, shutdown
//!   arrives through the wakeup fd), so the idle server spends zero CPU
//!   and shutdown completes in milliseconds.
//! * **Pipelining with strict per-connection ordering** — a client may
//!   write any number of request lines before reading a response.
//!   Cheap ops execute inline on the reactor; the first CPU-heavy op
//!   (batch `clean`, region/consistency analysis, engine swaps, a
//!   journaled commit's group-fsync wait) seals the connection's
//!   response buffer and ships that line *plus every line already
//!   buffered behind it* to the service worker pool as one ordered
//!   batch job. While the batch is in flight the reactor keeps reading
//!   (bounded) and keeps serving other connections; the completion
//!   splices the batch's responses back in order. At most one batch per
//!   connection is ever in flight, so responses always come back in
//!   request order.
//! * **Backpressure, interest-driven** — responses accumulate in a
//!   per-connection buffer flushed opportunistically; `EPOLLOUT` is
//!   armed only while unflushed bytes remain, and a connection whose
//!   peer stops reading (or floods requests faster than a batch drains)
//!   has its `EPOLLIN` interest dropped until the buffer recedes.
//! * **Allocation-free steady state** — connections reuse their line
//!   and response buffers; batch/scratch/response buffers cycle through
//!   pools; the hot request path underneath
//!   ([`CleaningService::handle_line_into`]) is zero-allocation.
//!
//! The raw `epoll`/`eventfd` bindings live in [`ffi`] — the only unsafe
//! code in the crate, kept to six syscalls (no new dependencies).

use crate::net::{LineBuffer, MAX_LINE_BYTES, NON_UTF8_REPLY, OVERSIZE_REPLY};
use crate::protocol::RequestScratch;
use crate::service::CleaningService;
use crate::wire::scan::{ObjectScanner, RawValue};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Pause reading a connection while its unflushed response bytes exceed
/// this (peer not draining); reads resume as the buffer flushes below.
const WRITE_HIGH_WATER: usize = 4 * 1024 * 1024;
/// Pause reading while a batch is in flight once this much undispatched
/// input is buffered.
const READ_BACKLOG_CAP: usize = 1024 * 1024;
/// How long a draining shutdown waits for peers to take their last
/// responses before force-closing.
const DRAIN_DEADLINE: Duration = Duration::from_secs(1);

#[allow(unsafe_code)]
mod ffi {
    //! Raw `epoll` / `eventfd` bindings (libc symbols; std links libc
    //! already). The kernel ABI packs `epoll_event` on x86-64 only.

    use std::os::raw::{c_int, c_uint, c_void};

    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    fn cvt(ret: c_int) -> std::io::Result<c_int> {
        if ret < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn create_epoll() -> std::io::Result<c_int> {
        cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn create_eventfd() -> std::io::Result<c_int> {
        cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }

    /// One `epoll_ctl` call; `events` ignored for `EPOLL_CTL_DEL`.
    pub fn ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, data: u64) -> std::io::Result<()> {
        let mut event = EpollEvent { events, data };
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut event) }).map(|_| ())
    }

    /// Blocking `epoll_wait`; fills `events`, returns the ready count.
    pub fn wait(
        epfd: c_int,
        events: &mut [EpollEvent],
        timeout_ms: c_int,
    ) -> std::io::Result<usize> {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
        if n < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    /// Add 1 to an eventfd (wake a blocked `epoll_wait`).
    pub fn eventfd_write(fd: c_int) {
        let one: u64 = 1;
        unsafe { write(fd, (&one as *const u64).cast(), 8) };
    }

    /// Drain an eventfd's counter.
    pub fn eventfd_drain(fd: c_int) {
        let mut buf = [0u8; 8];
        unsafe { read(fd, buf.as_mut_ptr().cast(), 8) };
    }

    /// Close any raw fd.
    pub fn close_fd(fd: c_int) {
        unsafe { close(fd) };
    }
}

/// Owned wakeup eventfd, shared with batch jobs and the shutdown hook.
struct WakeFd(i32);

impl WakeFd {
    fn wake(&self) {
        ffi::eventfd_write(self.0);
    }

    fn drain(&self) {
        ffi::eventfd_drain(self.0);
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        ffi::close_fd(self.0);
    }
}

/// A finished batch job's responses, spliced back by the reactor.
struct Completion {
    conn: u64,
    out: String,
    /// The batch input buffer, returned for reuse.
    batch: Vec<u8>,
}

/// Buffer pools + completion queue shared between the reactor thread
/// and batch jobs on the worker pool.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    strings: Mutex<Vec<String>>,
    batches: Mutex<Vec<Vec<u8>>>,
    scratches: Mutex<Vec<RequestScratch>>,
    wake: WakeFd,
}

impl Shared {
    fn take_string(&self) -> String {
        self.strings
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn put_string(&self, mut s: String) {
        s.clear();
        self.strings
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(s);
    }

    fn take_batch(&self) -> Vec<u8> {
        self.batches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn put_batch(&self, mut b: Vec<u8>) {
        b.clear();
        self.batches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(b);
    }

    fn take_scratch(&self) -> RequestScratch {
        self.scratches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn put_scratch(&self, s: RequestScratch) {
        self.scratches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(s);
    }
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    buf: LineBuffer,
    /// Ordered, unflushed response bytes; `out_pos` marks how far the
    /// socket has taken them. Fully-flushed ⇒ cleared (capacity kept).
    out: String,
    out_pos: usize,
    /// A batch job is in flight (at most one per connection).
    in_flight: bool,
    /// Peer half-closed its write side (pipelined burst then EOF): no
    /// more input, but buffered requests still get served and flushed.
    peer_done: bool,
    /// Fatal error or oversized line: close as soon as flushed.
    closing: bool,
    /// Currently registered epoll interest mask.
    interest: u32,
}

impl Conn {
    fn unflushed(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// Ops worth shipping to the worker pool instead of running on the
/// reactor: multi-tuple batch work, whole-relation analyses, engine
/// swaps, paged audit reads — and, on a journaled service, `commit`
/// (it waits for its group fsync). Interactive session ops (µs-scale
/// fixpoints) run inline.
///
/// Anything the scanner cannot classify — malformed lines, but also
/// valid JSON hiding its op behind string escapes — counts as heavy:
/// misclassifying a real `clean` as light would park every connection
/// behind it on the reactor thread, while the reverse merely costs one
/// pool dispatch.
fn is_heavy(line: &str, journaled: bool) -> bool {
    let Some(mut scanner) = ObjectScanner::new(line) else {
        return true;
    };
    let mut op = None;
    while let Some((key, value, _)) = scanner.next_field() {
        match key.as_plain() {
            Some("op") => {
                if let RawValue::Str(s) = value {
                    op = s.as_plain();
                }
                break;
            }
            Some(_) => {}
            None => return true, // escaped key: cannot vouch for the op
        }
    }
    match op {
        // `cluster.status` fans out to peers over TCP — never on the
        // reactor thread.
        Some(
            "clean" | "regions" | "check" | "audit.read" | "rules.reload" | "master.append"
            | "cluster.status",
        ) => true,
        Some("session.commit") => journaled,
        Some(_) => false,
        None => true,
    }
}

/// Reading pauses while the peer is not draining responses, while a
/// batch is in flight and the undispatched input backlog is large, or
/// permanently once the connection is closing (an oversized-line reject
/// must not keep buffering a flood while its reply waits to flush).
fn reading_paused(conn: &Conn) -> bool {
    conn.closing
        || conn.unflushed() > WRITE_HIGH_WATER
        || (conn.in_flight && conn.buf.partial_len() > READ_BACKLOG_CAP)
}

/// Ship one ordered batch of request lines to the worker pool. The job
/// runs the same per-line responder as the connection loops
/// ([`respond_line`]) so batched and inline execution are
/// indistinguishable on the wire.
fn submit_batch(service: &CleaningService, shared: &Arc<Shared>, id: u64, batch: Vec<u8>) {
    let service_for_job = service.clone();
    let shared = Arc::clone(shared);
    let submitted = Instant::now();
    service.submit_job(move || {
        let mut out = shared.take_string();
        let mut scratch = shared.take_scratch();
        for line_bytes in batch.split(|&b| b == b'\n') {
            // The submit stamp doubles as the arrival time for queue
            // wait and deadline accounting: time parked behind other
            // jobs in the pool is exactly what a deadline should cover.
            crate::net::respond_line(
                &service_for_job,
                line_bytes,
                &mut out,
                &mut scratch,
                submitted,
            );
        }
        // Submit→executed latency: queue wait plus execution, the
        // number that grows first when the pool saturates.
        service_for_job
            .metrics_raw()
            .observe_batch_latency(submitted.elapsed());
        shared.put_scratch(scratch);
        shared
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion {
                conn: id,
                out,
                batch,
            });
        shared.wake.wake();
    });
}

/// Run the epoll front end until the service requests shutdown.
pub(crate) fn run_epoll(listener: TcpListener, service: &CleaningService) -> std::io::Result<()> {
    Reactor::new(listener, service.clone())?.run()
}

struct Reactor {
    epfd: i32,
    listener: TcpListener,
    service: CleaningService,
    shared: Arc<Shared>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Reactor-thread scratch for inline request handling.
    scratch: RequestScratch,
    hook: u64,
    draining: Option<Instant>,
    accepting: bool,
}

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;

impl Reactor {
    fn new(listener: TcpListener, service: CleaningService) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let epfd = ffi::create_epoll()?;
        let wake_fd = match ffi::create_eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                ffi::close_fd(epfd);
                return Err(e);
            }
        };
        let shared = Arc::new(Shared {
            completions: Mutex::new(Vec::new()),
            strings: Mutex::new(Vec::new()),
            batches: Mutex::new(Vec::new()),
            scratches: Mutex::new(Vec::new()),
            wake: WakeFd(wake_fd),
        });
        ffi::ctl(
            epfd,
            ffi::EPOLL_CTL_ADD,
            listener.as_raw_fd(),
            ffi::EPOLLIN,
            TOKEN_LISTENER,
        )?;
        ffi::ctl(epfd, ffi::EPOLL_CTL_ADD, wake_fd, ffi::EPOLLIN, TOKEN_WAKE)?;
        // Shutdown (from any thread: a protocol op on a worker, a
        // `ServerHandle`) pokes the eventfd; the reactor wakes instantly
        // instead of riding out a poll timeout.
        let hook_shared = Arc::clone(&shared);
        let hook = service.add_shutdown_hook(move || hook_shared.wake.wake());
        Ok(Reactor {
            epfd,
            listener,
            service,
            shared,
            conns: HashMap::new(),
            next_conn: 0,
            scratch: RequestScratch::default(),
            hook,
            draining: None,
            accepting: true,
        })
    }

    fn run(mut self) -> std::io::Result<()> {
        let mut events = [ffi::EpollEvent { events: 0, data: 0 }; 128];
        loop {
            // Shutdown check BEFORE blocking: a `shutdown` accepted in
            // the window before our wakeup hook registered never poked
            // the eventfd, and `epoll_wait(-1)` would then hang forever.
            if self.service.shutdown_requested() && self.draining.is_none() {
                self.begin_drain();
            }
            if let Some(started) = self.draining {
                let idle = self
                    .conns
                    .values()
                    .all(|c| !c.in_flight && c.unflushed() == 0);
                if idle || started.elapsed() > DRAIN_DEADLINE {
                    break;
                }
            }
            let timeout = if self.draining.is_some() { 50 } else { -1 };
            self.service.metrics_raw().reactor_poll();
            let n = match ffi::wait(self.epfd, &mut events, timeout) {
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            // Loop working time: everything between wait returning and
            // the next wait (dispatch + inline handling + completions).
            let loop_started = Instant::now();
            for event in &events[..n] {
                // Copy out of the (possibly packed) struct first.
                let (mask, token) = (event.events, event.data);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => {
                        self.service.metrics_raw().reactor_wakeup();
                        self.shared.wake.drain();
                    }
                    conn => self.conn_ready(conn, mask),
                }
            }
            self.drain_completions();
            self.service
                .metrics_raw()
                .observe_reactor_loop(loop_started.elapsed());
        }
        Ok(())
    }

    fn begin_drain(&mut self) {
        self.draining = Some(Instant::now());
        if self.accepting {
            let _ = ffi::ctl(
                self.epfd,
                ffi::EPOLL_CTL_DEL,
                self.listener.as_raw_fd(),
                0,
                0,
            );
            self.accepting = false;
        }
        // Stop reading everywhere; finish in-flight batches and flush.
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.peer_done = true;
            }
            self.update_interest(id);
        }
    }

    fn accept_ready(&mut self) {
        while self.accepting {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Connection-level admission: a draining server or
                    // one at its connection quota answers with one typed
                    // error line and hangs up — no epoll registration,
                    // no buffers.
                    if let Err(message) = self.service.admit_connection() {
                        let mut stream = stream;
                        let _ = stream.write_all(
                            format!("{{\"ok\":false,\"error\":{message:?}}}\n").as_bytes(),
                        );
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    if ffi::ctl(
                        self.epfd,
                        ffi::EPOLL_CTL_ADD,
                        stream.as_raw_fd(),
                        ffi::EPOLLIN,
                        id,
                    )
                    .is_err()
                    {
                        continue;
                    }
                    self.service.metrics_raw().connection_opened();
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            buf: LineBuffer::new(),
                            out: self.shared.take_string(),
                            out_pos: 0,
                            in_flight: false,
                            peer_done: false,
                            closing: false,
                            interest: ffi::EPOLLIN,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Aborted handshake, or fd exhaustion (EMFILE) —
                    // the latter does NOT consume the pending
                    // connection, so the level-triggered listener stays
                    // readable and a plain `break` would spin the
                    // reactor at 100% CPU. A short sleep bounds the
                    // retry rate until an fd frees up.
                    std::thread::sleep(Duration::from_millis(5));
                    break;
                }
            }
        }
    }

    fn conn_ready(&mut self, id: u64, mask: u32) {
        if !self.conns.contains_key(&id) {
            return;
        }
        if mask & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0 {
            self.close_conn(id);
            return;
        }
        if mask & ffi::EPOLLIN != 0 && !self.read_ready(id) {
            return; // closed
        }
        self.pump(id);
    }

    /// Read all available bytes. Returns false if the connection died.
    fn read_ready(&mut self, id: u64) -> bool {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return false;
            };
            if conn.peer_done || conn.closing || reading_paused(conn) {
                return true;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_done = true;
                    return true;
                }
                Ok(n) => {
                    conn.buf.extend(&chunk[..n]);
                    self.service.metrics_raw().add_bytes_in(n as u64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(id);
                    return false;
                }
            }
        }
    }

    /// Process buffered lines, flush, recompute interest, reap.
    fn pump(&mut self, id: u64) {
        self.process_lines(id);
        self.flush(id);
        self.update_interest(id);
        self.maybe_reap(id);
    }

    /// Execute buffered complete lines in order: light ops inline, and
    /// from the first heavy op onward, everything available as one
    /// ordered batch job (stops there — at most one batch in flight).
    fn process_lines(&mut self, id: u64) {
        if self.draining.is_some() {
            return;
        }
        let journaled = self.service.is_journaled();
        // Arrival stamp for every line handled inline in this pass; the
        // reactor runs this immediately after the read, so inline queue
        // wait is ~zero by construction (batched lines stamp at submit).
        let received = Instant::now();
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.in_flight || conn.closing {
                return;
            }
            let Some(line_bytes) = conn.buf.next_line() else {
                if conn.buf.partial_len() > MAX_LINE_BYTES {
                    conn.out.push_str(OVERSIZE_REPLY);
                    conn.closing = true;
                }
                return;
            };
            let Ok(line) = std::str::from_utf8(line_bytes) else {
                conn.out.push_str(NON_UTF8_REPLY);
                continue;
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if is_heavy(trimmed, journaled) {
                // Seal this line plus everything already behind it into
                // one ordered batch for the worker pool. (The batch pool
                // and `submit_job` touch disjoint fields, so the batch
                // is assembled while the line slices still borrow the
                // connection's read buffer.)
                let mut batch = self.shared.take_batch();
                batch.extend_from_slice(trimmed.as_bytes());
                batch.push(b'\n');
                while let Some(rest) = conn.buf.next_line() {
                    batch.extend_from_slice(rest);
                    batch.push(b'\n');
                }
                conn.in_flight = true;
                submit_batch(&self.service, &self.shared, id, batch);
                return;
            }
            // Inline: render straight into the connection's response
            // buffer (appended after everything already queued),
            // through the same shared per-line responder as the
            // threaded loop and the batch jobs.
            crate::net::respond_line(
                &self.service,
                line_bytes,
                &mut conn.out,
                &mut self.scratch,
                received,
            );
        }
    }

    fn drain_completions(&mut self) {
        loop {
            let completion = self
                .shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            let Some(mut completion) = completion else {
                return;
            };
            self.shared.put_batch(completion.batch);
            let Some(conn) = self.conns.get_mut(&completion.conn) else {
                // Connection died while the batch ran.
                self.shared.put_string(completion.out);
                continue;
            };
            conn.in_flight = false;
            if conn.out.is_empty() {
                // Common case (nothing queued behind the batch): adopt
                // the rendered buffer instead of copying megabytes of
                // `regions`/`audit.read`/`clean` output.
                debug_assert_eq!(conn.out_pos, 0);
                std::mem::swap(&mut conn.out, &mut completion.out);
            } else {
                conn.out.push_str(&completion.out);
            }
            self.shared.put_string(completion.out);
            self.pump(completion.conn);
        }
    }

    /// Write as much queued response as the socket takes.
    fn flush(&mut self, id: u64) {
        let mut dead = false;
        if let Some(conn) = self.conns.get_mut(&id) {
            while conn.unflushed() > 0 {
                match conn.stream.write(&conn.out.as_bytes()[conn.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        self.service.metrics_raw().add_bytes_out(n as u64);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead && conn.unflushed() == 0 && conn.out_pos > 0 {
                conn.out.clear();
                conn.out_pos = 0;
            }
        }
        if dead {
            self.close_conn(id);
        }
    }

    /// Keep the epoll interest mask matching the connection's state:
    /// `EPOLLOUT` iff bytes await the socket, `EPOLLIN` unless
    /// backpressure (or EOF) paused reading.
    fn update_interest(&mut self, id: u64) {
        let epfd = self.epfd;
        let mut dead = false;
        if let Some(conn) = self.conns.get_mut(&id) {
            let mut want = 0u32;
            if !conn.peer_done && !reading_paused(conn) {
                want |= ffi::EPOLLIN;
            }
            if conn.unflushed() > 0 {
                want |= ffi::EPOLLOUT;
            }
            if want != conn.interest {
                if ffi::ctl(epfd, ffi::EPOLL_CTL_MOD, conn.stream.as_raw_fd(), want, id).is_err() {
                    dead = true;
                } else {
                    conn.interest = want;
                }
            }
        }
        if dead {
            self.close_conn(id);
        }
    }

    /// Close once nothing remains to do for this connection: peer sent
    /// EOF (or we are closing it), no batch in flight, all responses
    /// flushed. `pump` already consumed every complete buffered line, so
    /// any residual input is a partial line that can never complete.
    fn maybe_reap(&mut self, id: u64) {
        let Some(conn) = self.conns.get(&id) else {
            return;
        };
        if (conn.peer_done || conn.closing) && !conn.in_flight && conn.unflushed() == 0 {
            self.close_conn(id);
        }
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = ffi::ctl(self.epfd, ffi::EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
            self.service.metrics_raw().connection_closed();
            self.shared.put_string(conn.out);
            // In-flight batch completions for this id are discarded in
            // `drain_completions`.
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        // Wait out in-flight batches so their wake writes hit a live
        // eventfd (jobs hold `Arc<Shared>`; the fd closes with the last
        // reference, but completing here keeps fd reuse races out).
        let deadline = Instant::now() + DRAIN_DEADLINE;
        while self.conns.values().any(|c| c.in_flight) && Instant::now() < deadline {
            let mut events = [ffi::EpollEvent { events: 0, data: 0 }; 16];
            let _ = ffi::wait(self.epfd, &mut events, 20);
            self.drain_completions();
        }
        // Surviving connections close with their streams; settle the
        // open-connections gauge for them.
        for _ in 0..self.conns.len() {
            self.service.metrics_raw().connection_closed();
        }
        self.conns.clear();
        self.service.remove_shutdown_hook(self.hook);
        ffi::close_fd(self.epfd);
    }
}
