//! Noise injection: turning ground truth into dirty input tuples.
//!
//! The demo cleans data "at the point of data entry" — the errors it
//! corrects are entry errors. The channels here model the classes its
//! rules actually fix: wrong values from the domain (Example 1's
//! `AC = 020` for an Edinburgh customer), typos (keyboard slips), and
//! format variants (Fig. 3's `'M.'` for `'Mark'`).

use cerfix_relation::{AttrId, Tuple, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// One way a cell can be corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseChannel {
    /// Replace the value with the same attribute's value from a different
    /// truth tuple (a plausible-but-wrong domain value).
    DomainSwap,
    /// Apply a random character edit (substitute/insert/delete).
    Typo,
    /// Abbreviate to the first character plus `.` (Fig. 3's 'M.').
    Abbreviate,
}

/// Noise configuration for a workload.
#[derive(Debug, Clone)]
pub struct NoiseSpec {
    /// Per-cell corruption probability.
    pub cell_noise_rate: f64,
    /// Relative weights of the channels `(DomainSwap, Typo, Abbreviate)`.
    pub channel_weights: (f64, f64, f64),
    /// Attributes never corrupted (e.g. an entry form's drop-downs that
    /// cannot carry free-text errors). Empty by default.
    pub immune_attrs: Vec<AttrId>,
}

impl Default for NoiseSpec {
    fn default() -> Self {
        NoiseSpec {
            cell_noise_rate: 0.3,
            channel_weights: (0.5, 0.3, 0.2),
            immune_attrs: Vec::new(),
        }
    }
}

impl NoiseSpec {
    /// A spec with the given per-cell noise rate and default channels.
    pub fn with_rate(rate: f64) -> NoiseSpec {
        NoiseSpec {
            cell_noise_rate: rate,
            ..Default::default()
        }
    }

    fn pick_channel(&self, rng: &mut StdRng) -> NoiseChannel {
        let (a, b, c) = self.channel_weights;
        let total = a + b + c;
        let x: f64 = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        if x < a {
            NoiseChannel::DomainSwap
        } else if x < a + b {
            NoiseChannel::Typo
        } else {
            NoiseChannel::Abbreviate
        }
    }
}

/// Apply a random single-character edit to `s`. Always returns a string
/// different from the input (for non-empty inputs).
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    for _ in 0..8 {
        let mut out = chars.clone();
        match rng.gen_range(0..3u8) {
            0 => {
                // substitute
                let i = rng.gen_range(0..out.len());
                let c = (b'a' + rng.gen_range(0..26u8)) as char;
                out[i] = c;
            }
            1 => {
                // insert
                let i = rng.gen_range(0..=out.len());
                let c = (b'a' + rng.gen_range(0..26u8)) as char;
                out.insert(i, c);
            }
            _ => {
                // delete (only if something remains)
                if out.len() > 1 {
                    let i = rng.gen_range(0..out.len());
                    out.remove(i);
                }
            }
        }
        let candidate: String = out.into_iter().collect();
        if candidate != s {
            return candidate;
        }
    }
    format!("{s}~")
}

/// Abbreviate a string to its first character plus `.` (identity for
/// strings already that short).
pub fn abbreviate(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) if s.chars().count() > 2 => format!("{first}."),
        _ => s.to_string(),
    }
}

/// Corrupt `truth` into a dirty tuple per `spec`, drawing replacement
/// domain values from `pool` (typically the full truth universe).
/// Returns the dirty tuple and the ids of corrupted attributes.
pub fn corrupt(
    truth: &Tuple,
    pool: &[Tuple],
    spec: &NoiseSpec,
    rng: &mut StdRng,
) -> (Tuple, Vec<AttrId>) {
    let mut dirty = truth.clone();
    let mut corrupted = Vec::new();
    for attr in 0..truth.arity() {
        if spec.immune_attrs.contains(&attr) {
            continue;
        }
        if !rng.gen_bool(spec.cell_noise_rate.clamp(0.0, 1.0)) {
            continue;
        }
        let original = truth.get(attr);
        let Some(text) = original.as_str() else {
            continue;
        };
        let new_value = match spec.pick_channel(rng) {
            NoiseChannel::DomainSwap => {
                // Try a few pool tuples for a *different* value.
                let mut replacement = None;
                for _ in 0..8 {
                    if pool.is_empty() {
                        break;
                    }
                    let other = &pool[rng.gen_range(0..pool.len())];
                    let v = other.get(attr);
                    if !v.is_null() && v != original {
                        replacement = Some(v.clone());
                        break;
                    }
                }
                replacement.unwrap_or_else(|| Value::str(typo(text, rng)))
            }
            NoiseChannel::Typo => Value::str(typo(text, rng)),
            NoiseChannel::Abbreviate => {
                let abbr = abbreviate(text);
                if abbr == *text {
                    Value::str(typo(text, rng))
                } else {
                    Value::str(abbr)
                }
            }
        };
        if new_value != *original {
            dirty.set(attr, new_value).expect("same attr, string type");
            corrupted.push(attr);
        }
    }
    (dirty, corrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Schema;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn tuples() -> Vec<Tuple> {
        let s = Schema::of_strings("t", ["a", "b", "c"]).unwrap();
        vec![
            Tuple::of_strings(s.clone(), ["alpha", "beta", "gamma"]).unwrap(),
            Tuple::of_strings(s.clone(), ["delta", "epsilon", "zeta"]).unwrap(),
            Tuple::of_strings(s, ["eta", "theta", "iota"]).unwrap(),
        ]
    }

    #[test]
    fn typo_always_changes() {
        let mut r = rng();
        for s in ["Mark", "a", "EH8 4AH", "020"] {
            for _ in 0..50 {
                assert_ne!(typo(s, &mut r), s);
            }
        }
    }

    #[test]
    fn abbreviate_matches_paper_example() {
        assert_eq!(abbreviate("Mark"), "M.");
        assert_eq!(abbreviate("Robert"), "R.");
        assert_eq!(abbreviate("ab"), "ab", "too short to abbreviate");
        assert_eq!(abbreviate(""), "");
    }

    #[test]
    fn zero_rate_is_identity() {
        let ts = tuples();
        let mut r = rng();
        let (dirty, corrupted) = corrupt(&ts[0], &ts, &NoiseSpec::with_rate(0.0), &mut r);
        assert_eq!(dirty, ts[0]);
        assert!(corrupted.is_empty());
    }

    #[test]
    fn full_rate_corrupts_everything() {
        let ts = tuples();
        let mut r = rng();
        let (dirty, corrupted) = corrupt(&ts[0], &ts, &NoiseSpec::with_rate(1.0), &mut r);
        assert_eq!(corrupted.len(), 3);
        for a in 0..3 {
            assert_ne!(dirty.get(a), ts[0].get(a));
        }
    }

    #[test]
    fn corrupted_list_matches_diff() {
        let ts = tuples();
        let mut r = rng();
        for _ in 0..20 {
            let (dirty, corrupted) = corrupt(&ts[1], &ts, &NoiseSpec::with_rate(0.5), &mut r);
            assert_eq!(dirty.diff_attrs(&ts[1]), corrupted);
        }
    }

    #[test]
    fn immune_attrs_respected() {
        let ts = tuples();
        let mut r = rng();
        let spec = NoiseSpec {
            cell_noise_rate: 1.0,
            immune_attrs: vec![1],
            ..Default::default()
        };
        for _ in 0..10 {
            let (dirty, _) = corrupt(&ts[0], &ts, &spec, &mut r);
            assert_eq!(dirty.get(1), ts[0].get(1));
        }
    }

    #[test]
    fn domain_swap_draws_from_pool() {
        let ts = tuples();
        let mut r = rng();
        let spec = NoiseSpec {
            cell_noise_rate: 1.0,
            channel_weights: (1.0, 0.0, 0.0),
            immune_attrs: vec![],
        };
        let pool_values: Vec<&str> = ts.iter().map(|t| t.get(0).as_str().unwrap()).collect();
        let (dirty, _) = corrupt(&ts[0], &ts, &spec, &mut r);
        let v = dirty.get(0).as_str().unwrap();
        assert!(
            pool_values.contains(&v),
            "domain swap picks an in-domain value, got {v}"
        );
        assert_ne!(v, "alpha");
    }

    #[test]
    fn deterministic_under_seed() {
        let ts = tuples();
        let spec = NoiseSpec::with_rate(0.7);
        let (d1, c1) = corrupt(&ts[0], &ts, &spec, &mut StdRng::seed_from_u64(7));
        let (d2, c2) = corrupt(&ts[0], &ts, &spec, &mut StdRng::seed_from_u64(7));
        assert_eq!(d1, d2);
        assert_eq!(c1, c2);
    }
}
