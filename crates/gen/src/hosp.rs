//! A HOSP-style scenario (US hospital quality data).
//!
//! The theory paper behind CerFix evaluates on HOSP, the US Department of
//! Health & Human Services hospital dataset. We cannot ship that data, so
//! this module generates a synthetic equivalent with the same dependency
//! structure: provider numbers identify hospitals (name, address, phone,
//! location), zip codes determine city and state, and measure codes
//! determine measure names and conditions.
//!
//! Unlike the UK scenario, input and master schemas here coincide
//! attribute-for-attribute, exercising the by-name rule derivation path.

use crate::names::{MEASURES, STREETS, US_STATES};
use crate::scenario::Scenario;
use cerfix_relation::{Relation, RelationBuilder, Schema, SchemaRef, Tuple};
use cerfix_rules::{parse_rules, RuleDecl, RuleSet};
use rand::rngs::StdRng;
use rand::Rng;

/// Editing rules for the HOSP scenario.
///
/// `provider` and `measure` are the entity keys and are never fixed by a
/// rule (they are the user-validated core); everything else flows from
/// them or from zip.
pub const HOSP_RULES_DSL: &str = "\
# HOSP-style rules: provider determines the hospital, zip the geography,
# and the measure code its description.
er h1: match provider=provider fix hospital:=hospital when ()
er h2: match provider=provider fix addr:=addr when ()
er h3: match provider=provider fix phone:=phone when ()
er h4: match provider=provider fix zip:=zip when ()
er h5: match zip=zip fix city:=city when ()
er h6: match zip=zip fix state:=state when ()
er h7: match measure=measure fix mname:=mname when ()
er h8: match measure=measure fix condition:=condition when ()
";

/// Attribute names shared by the input and master schemas.
const ATTRS: [&str; 10] = [
    "provider",
    "hospital",
    "addr",
    "city",
    "state",
    "zip",
    "phone",
    "measure",
    "mname",
    "condition",
];

/// The input schema.
pub fn input_schema() -> SchemaRef {
    Schema::of_strings("hosp_entry", ATTRS).expect("static schema")
}

/// The master schema (same attributes, distinct schema object).
pub fn master_schema() -> SchemaRef {
    Schema::of_strings("hosp_master", ATTRS).expect("static schema")
}

/// Generate `n` master rows: hospitals × measures, with functional
/// zip→(city,state) and provider→everything.
pub fn generate_master(n: usize, rng: &mut StdRng) -> Relation {
    let schema = master_schema();
    let mut builder = RelationBuilder::new(schema);
    // Hospitals are reused across measures: ~1 hospital per 4 rows.
    let n_hospitals = (n / 4).max(1);
    let mut hospitals: Vec<[String; 7]> = Vec::with_capacity(n_hospitals);
    for h in 0..n_hospitals {
        let (state_code, state_name) = US_STATES[h % US_STATES.len()];
        let city = format!("{state_name} City {}", h / US_STATES.len());
        let zip = format!("{:05}", 10000 + h);
        let provider = format!("P{:06}", h);
        let hospital = format!("{city} General Hospital");
        let addr = format!("{} {}", rng.gen_range(1..999), STREETS[h % STREETS.len()]);
        let phone = format!("555{:07}", h);
        hospitals.push([
            provider,
            hospital,
            addr,
            city,
            state_code.to_string(),
            zip,
            phone,
        ]);
    }
    for i in 0..n {
        let h = &hospitals[i % n_hospitals];
        let (mcode, mname, condition) = MEASURES[i % MEASURES.len()];
        builder = builder.row_strs([
            h[0].as_str(),
            h[1].as_str(),
            h[2].as_str(),
            h[3].as_str(),
            h[4].as_str(),
            h[5].as_str(),
            h[6].as_str(),
            mcode,
            mname,
            condition,
        ]);
    }
    builder.build().expect("generated rows conform")
}

/// Parse the HOSP rules.
pub fn rules() -> RuleSet {
    let input = input_schema();
    let master = master_schema();
    let mut set = RuleSet::new(input.clone(), master.clone());
    for decl in parse_rules(HOSP_RULES_DSL, &input, &master).expect("static DSL parses") {
        match decl {
            RuleDecl::Er(r) => {
                set.add(r).expect("unique names");
            }
            _ => unreachable!("only er declarations"),
        }
    }
    set
}

/// Truth universe: each master row is itself a possible correct entry.
pub fn truth_universe(master: &Relation) -> Vec<Tuple> {
    let input = input_schema();
    master
        .iter()
        .map(|(_, s)| {
            Tuple::new(input.clone(), s.values().to_vec()).expect("same attribute layout")
        })
        .collect()
}

/// Build the complete HOSP scenario with `n` master rows.
pub fn scenario(n: usize, rng: &mut StdRng) -> Scenario {
    let master = generate_master(n, rng);
    let universe = truth_universe(&master);
    // Share the universe tuples' schema object so workload tuples can be
    // collected into relations over `Scenario::input` (schema identity,
    // not just structural equality, is enforced by `Relation::push`).
    let input = universe
        .first()
        .map(|t| t.schema().clone())
        .unwrap_or_else(input_schema);
    Scenario {
        name: "hosp",
        input,
        master_schema: master_schema(),
        master,
        rules: rules(),
        universe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix::{check_consistency, ConsistencyOptions, MasterData};
    use rand::SeedableRng;

    #[test]
    fn rules_parse() {
        let r = rules();
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn master_functional_dependencies_hold() {
        let mut rng = StdRng::seed_from_u64(4);
        let master = generate_master(400, &mut rng);
        let mut zip_geo: std::collections::HashMap<String, (String, String)> = Default::default();
        let mut provider_row: std::collections::HashMap<String, Vec<String>> = Default::default();
        for (_, s) in master.iter() {
            let zip = s.get_by_name("zip").unwrap().render();
            let geo = (
                s.get_by_name("city").unwrap().render(),
                s.get_by_name("state").unwrap().render(),
            );
            if let Some(prev) = zip_geo.insert(zip, geo.clone()) {
                assert_eq!(prev, geo, "zip → (city, state) must be functional");
            }
            let provider = s.get_by_name("provider").unwrap().render();
            let identity: Vec<String> = ["hospital", "addr", "city", "state", "zip", "phone"]
                .iter()
                .map(|a| s.get_by_name(a).unwrap().render())
                .collect();
            if let Some(prev) = provider_row.insert(provider, identity.clone()) {
                assert_eq!(
                    prev, identity,
                    "provider → hospital identity must be functional"
                );
            }
        }
    }

    #[test]
    fn rules_consistent_both_modes() {
        let mut rng = StdRng::seed_from_u64(5);
        let master = MasterData::new(generate_master(200, &mut rng));
        let strict = check_consistency(&rules(), &master, &ConsistencyOptions::default());
        // h5/h6 (zip→city/state) never share a target with h1..h4
        // (provider→…); provider→zip and zip→city chains target disjoint
        // attrs; strict conflicts would need two rules on one target:
        // none exist ⇒ consistent even strictly.
        assert!(strict.is_consistent(), "{:?}", strict.conflicts);
        let coherent = check_consistency(&rules(), &master, &ConsistencyOptions::entity_coherent());
        assert!(coherent.is_consistent());
    }

    #[test]
    fn universe_mirrors_master() {
        let mut rng = StdRng::seed_from_u64(6);
        let master = generate_master(40, &mut rng);
        let universe = truth_universe(&master);
        assert_eq!(universe.len(), 40);
        assert_eq!(universe[0].schema().name(), "hosp_entry");
        assert_eq!(universe[0].values(), master.row(0).unwrap().values());
    }

    #[test]
    fn minimal_region_is_provider_plus_measure() {
        // With provider and measure validated, every other attribute is
        // reachable: provider→{hospital,addr,phone,zip}, zip→{city,state},
        // measure→{mname,condition}.
        use cerfix::engine::{all_rules, attribute_closure};
        let input = input_schema();
        let rules = rules();
        let seed: std::collections::BTreeSet<usize> = [
            input.attr_id("provider").unwrap(),
            input.attr_id("measure").unwrap(),
        ]
        .into();
        let closed = attribute_closure(&rules, &seed, &all_rules);
        assert_eq!(closed.len(), input.arity());
    }
}
