//! Value pools for synthetic master data.
//!
//! The demo runs on UK customer data we do not have; these pools let the
//! generators extrapolate the *shape* of that data (names, UK cities with
//! their real dialling codes and postcode areas, streets) to arbitrary
//! scale, deterministically under a seeded RNG.

/// First names (the paper's Robert/Mark plus a spread).
pub const FIRST_NAMES: &[&str] = &[
    "Robert",
    "Mark",
    "Wenfei",
    "Nan",
    "Shuai",
    "Jianzhong",
    "Wenyuan",
    "Alice",
    "Brian",
    "Clara",
    "David",
    "Emma",
    "Fiona",
    "George",
    "Helen",
    "Ian",
    "Julia",
    "Kevin",
    "Laura",
    "Martin",
    "Nadia",
    "Oliver",
    "Petra",
    "Quentin",
    "Rachel",
    "Simon",
    "Tanya",
    "Umar",
    "Vera",
    "William",
    "Xenia",
    "Yusuf",
    "Zoe",
    "Andrew",
    "Bella",
    "Colin",
    "Donna",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "Brady", "Smith", "Fan", "Li", "Ma", "Tang", "Yu", "Brown", "Campbell", "Davies", "Evans",
    "Fraser", "Graham", "Hughes", "Irving", "Jones", "Kerr", "Lewis", "MacLeod", "Nelson", "Owens",
    "Patel", "Quinn", "Ross", "Stewart", "Taylor", "Urquhart", "Walker", "Young", "Adams", "Baker",
    "Clark", "Duncan", "Elliott", "Ferguson", "Gibson",
];

/// Street name stems (number prefixes are generated).
pub const STREETS: &[&str] = &[
    "Elm St",
    "Baker St",
    "High St",
    "Mill Ln",
    "Station Rd",
    "Church Way",
    "Victoria Ave",
    "King St",
    "Queen Rd",
    "Castle Ter",
    "Bridge St",
    "Park Cres",
    "Abbey Walk",
    "Clyde Way",
    "Forth Pl",
    "Thames Rd",
    "Morningside Dr",
    "Leith Walk",
    "Canal St",
    "Harbour Ln",
];

/// UK city with its real geographic dialling code and postcode area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CityInfo {
    /// City short name as in the paper ("Edi", "Ldn").
    pub city: &'static str,
    /// Geographic dialling (area) code.
    pub area_code: &'static str,
    /// Postcode area prefix.
    pub zip_prefix: &'static str,
}

/// Cities: each with a distinct area code and postcode area, so the
/// generated master data satisfies `zip → city`, `zip → AC` and
/// `AC → city` functionally — the paper's rules φ1/φ3/φ9 are consistent
/// on this data by construction.
pub const CITIES: &[CityInfo] = &[
    CityInfo {
        city: "Edi",
        area_code: "131",
        zip_prefix: "EH",
    },
    CityInfo {
        city: "Ldn",
        area_code: "020",
        zip_prefix: "NW",
    },
    CityInfo {
        city: "Gla",
        area_code: "141",
        zip_prefix: "G",
    },
    CityInfo {
        city: "Mcr",
        area_code: "161",
        zip_prefix: "M",
    },
    CityInfo {
        city: "Brm",
        area_code: "121",
        zip_prefix: "B",
    },
    CityInfo {
        city: "Lds",
        area_code: "113",
        zip_prefix: "LS",
    },
    CityInfo {
        city: "Lvp",
        area_code: "151",
        zip_prefix: "L",
    },
    CityInfo {
        city: "Shf",
        area_code: "114",
        zip_prefix: "S",
    },
    CityInfo {
        city: "Brs",
        area_code: "117",
        zip_prefix: "BS",
    },
    CityInfo {
        city: "Ncl",
        area_code: "191",
        zip_prefix: "NE",
    },
];

/// Items purchasable in the demo's customer scenario.
pub const ITEMS: &[&str] = &["CD", "DVD", "BOOK", "GAME", "VINYL", "POSTER"];

/// US states for the HOSP-style scenario.
pub const US_STATES: &[(&str, &str)] = &[
    ("AL", "Alabama"),
    ("AK", "Alaska"),
    ("AZ", "Arizona"),
    ("CA", "California"),
    ("CO", "Colorado"),
    ("FL", "Florida"),
    ("GA", "Georgia"),
    ("IL", "Illinois"),
    ("IN", "Indiana"),
    ("MA", "Massachusetts"),
    ("NY", "New York"),
    ("OH", "Ohio"),
    ("TX", "Texas"),
    ("WA", "Washington"),
];

/// Hospital quality measures (code, name, condition) in the style of the
/// HOSP dataset used by the theory paper's experiments.
pub const MEASURES: &[(&str, &str, &str)] = &[
    ("AMI-1", "Aspirin at Arrival", "Heart Attack"),
    ("AMI-2", "Aspirin at Discharge", "Heart Attack"),
    ("AMI-3", "ACEI or ARB for LVSD", "Heart Attack"),
    ("HF-1", "Discharge Instructions", "Heart Failure"),
    ("HF-2", "LVS Assessment", "Heart Failure"),
    ("PN-2", "Pneumococcal Vaccination", "Pneumonia"),
    ("PN-3B", "Blood Culture Timing", "Pneumonia"),
    ("SCIP-1", "Prophylactic Antibiotic", "Surgical Care"),
    ("SCIP-2", "Antibiotic Selection", "Surgical Care"),
];

/// Publication venues for the DBLP-style scenario: (venue, publisher).
pub const VENUES: &[(&str, &str)] = &[
    ("VLDB", "VLDB Endowment"),
    ("SIGMOD", "ACM"),
    ("ICDE", "IEEE"),
    ("PODS", "ACM"),
    ("EDBT", "OpenProceedings"),
    ("CIKM", "ACM"),
    ("KDD", "ACM"),
];

/// Title words for generated publications.
pub const TITLE_WORDS: &[&str] = &[
    "Certain",
    "Fixes",
    "Editing",
    "Rules",
    "Master",
    "Data",
    "Cleaning",
    "Quality",
    "Dependencies",
    "Conditional",
    "Functional",
    "Matching",
    "Records",
    "Repairing",
    "Consistency",
    "Queries",
    "Incremental",
    "Distributed",
    "Provenance",
    "Streams",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn city_area_codes_unique() {
        let codes: HashSet<&str> = CITIES.iter().map(|c| c.area_code).collect();
        assert_eq!(codes.len(), CITIES.len(), "AC → city must be functional");
        let zips: HashSet<&str> = CITIES.iter().map(|c| c.zip_prefix).collect();
        assert_eq!(
            zips.len(),
            CITIES.len(),
            "zip prefix → city must be functional"
        );
    }

    #[test]
    fn pools_nonempty() {
        assert!(FIRST_NAMES.len() >= 30);
        assert!(LAST_NAMES.len() >= 30);
        assert!(STREETS.len() >= 10);
        assert!(ITEMS.len() >= 4);
        assert!(MEASURES.len() >= 5);
        assert!(VENUES.len() >= 5);
    }

    #[test]
    fn measures_unique_codes() {
        let codes: HashSet<&str> = MEASURES.iter().map(|m| m.0).collect();
        assert_eq!(codes.len(), MEASURES.len());
    }
}
