//! Workloads with retained ground truth, and repair-quality metrics.
//!
//! Every generated dirty tuple keeps a pointer to its truth, so
//! experiments can measure exactly what the paper argues in §1: certain
//! fixes change cells *only* to their true values, while heuristic
//! repairs "may introduce new errors when trying to repair the data".

use crate::noise::{corrupt, NoiseSpec};
use cerfix_relation::Tuple;
use rand::rngs::StdRng;
use rand::Rng;

/// A dirty stream paired with its ground truth.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dirty tuples as entered.
    pub dirty: Vec<Tuple>,
    /// The true tuple for each dirty tuple (same index).
    pub truth: Vec<Tuple>,
}

impl Workload {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// True iff the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Total number of erroneous cells across the workload.
    pub fn total_errors(&self) -> usize {
        self.dirty
            .iter()
            .zip(self.truth.iter())
            .map(|(d, t)| d.diff_count(t))
            .sum()
    }
}

/// Sample `n` dirty tuples from the truth `universe` under `spec`.
pub fn make_workload(universe: &[Tuple], n: usize, spec: &NoiseSpec, rng: &mut StdRng) -> Workload {
    assert!(!universe.is_empty(), "truth universe must be non-empty");
    let mut dirty = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for _ in 0..n {
        let u = &universe[rng.gen_range(0..universe.len())];
        let (d, _) = corrupt(u, universe, spec, rng);
        dirty.push(d);
        truth.push(u.clone());
    }
    Workload { dirty, truth }
}

/// Cell-level quality of one repaired tuple against its truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairEval {
    /// Cells the repair changed (dirty → repaired differ).
    pub cells_changed: usize,
    /// Changed cells now equal to the truth (good changes).
    pub correct_changes: usize,
    /// Changed cells that were *correct* in the dirty tuple and are now
    /// wrong — the §1 failure mode ("messes up the correct attribute").
    pub broke_correct: usize,
    /// Cells that were erroneous in the dirty tuple.
    pub erroneous_cells: usize,
    /// Erroneous cells now equal to the truth (errors actually fixed).
    pub errors_corrected: usize,
}

impl RepairEval {
    /// Evaluate `repaired` against `dirty` and `truth` (all same schema).
    pub fn of(dirty: &Tuple, repaired: &Tuple, truth: &Tuple) -> RepairEval {
        let arity = dirty.arity();
        let mut eval = RepairEval::default();
        for a in 0..arity {
            let was_wrong = dirty.get(a) != truth.get(a);
            let changed = dirty.get(a) != repaired.get(a);
            let now_right = repaired.get(a) == truth.get(a);
            if was_wrong {
                eval.erroneous_cells += 1;
                if now_right {
                    eval.errors_corrected += 1;
                }
            }
            if changed {
                eval.cells_changed += 1;
                if now_right {
                    eval.correct_changes += 1;
                }
                if !was_wrong {
                    eval.broke_correct += 1;
                }
            }
        }
        eval
    }

    /// Merge another evaluation into this one (aggregate over a stream).
    pub fn absorb(&mut self, other: RepairEval) {
        self.cells_changed += other.cells_changed;
        self.correct_changes += other.correct_changes;
        self.broke_correct += other.broke_correct;
        self.erroneous_cells += other.erroneous_cells;
        self.errors_corrected += other.errors_corrected;
    }

    /// Precision of changes: fraction of changed cells that are now
    /// correct. Certain fixes guarantee 1.0; `None` if nothing changed.
    pub fn precision(&self) -> Option<f64> {
        if self.cells_changed == 0 {
            None
        } else {
            Some(self.correct_changes as f64 / self.cells_changed as f64)
        }
    }

    /// Recall: fraction of erroneous cells corrected. `None` if the dirty
    /// tuple had no errors.
    pub fn recall(&self) -> Option<f64> {
        if self.erroneous_cells == 0 {
            None
        } else {
            Some(self.errors_corrected as f64 / self.erroneous_cells as f64)
        }
    }

    /// Harmonic mean of precision and recall; `None` when undefined.
    pub fn f1(&self) -> Option<f64> {
        match (self.precision(), self.recall()) {
            (Some(p), Some(r)) if p + r > 0.0 => Some(2.0 * p * r / (p + r)),
            _ => None,
        }
    }
}

/// Aggregate repair quality over a whole workload.
pub fn evaluate_stream(dirty: &[Tuple], repaired: &[Tuple], truth: &[Tuple]) -> RepairEval {
    debug_assert_eq!(dirty.len(), repaired.len());
    debug_assert_eq!(dirty.len(), truth.len());
    let mut total = RepairEval::default();
    for ((d, r), t) in dirty.iter().zip(repaired.iter()).zip(truth.iter()) {
        total.absorb(RepairEval::of(d, r, t));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Schema;
    use rand::SeedableRng;

    fn t(vals: [&str; 3]) -> Tuple {
        let s = Schema::of_strings("t", ["a", "b", "c"]).unwrap();
        Tuple::of_strings(s, vals).unwrap()
    }

    #[test]
    fn perfect_repair_scores_one() {
        let truth = t(["1", "2", "3"]);
        let dirty = t(["x", "2", "y"]);
        let eval = RepairEval::of(&dirty, &truth, &truth);
        assert_eq!(eval.cells_changed, 2);
        assert_eq!(eval.correct_changes, 2);
        assert_eq!(eval.erroneous_cells, 2);
        assert_eq!(eval.errors_corrected, 2);
        assert_eq!(eval.broke_correct, 0);
        assert_eq!(eval.precision(), Some(1.0));
        assert_eq!(eval.recall(), Some(1.0));
        assert_eq!(eval.f1(), Some(1.0));
    }

    #[test]
    fn heuristic_breaking_a_correct_cell() {
        // The paper's §1 story: t[AC]=020 wrong, t[city]=Edi right; the
        // heuristic "fixes" city to Ldn instead.
        let truth = t(["131", "Edi", "z"]);
        let dirty = t(["020", "Edi", "z"]);
        let repaired = t(["020", "Ldn", "z"]);
        let eval = RepairEval::of(&dirty, &repaired, &truth);
        assert_eq!(eval.cells_changed, 1);
        assert_eq!(eval.correct_changes, 0);
        assert_eq!(eval.broke_correct, 1);
        assert_eq!(eval.errors_corrected, 0);
        assert_eq!(eval.precision(), Some(0.0));
        assert_eq!(eval.recall(), Some(0.0));
    }

    #[test]
    fn no_change_no_precision() {
        let truth = t(["1", "2", "3"]);
        let clean = truth.clone();
        let eval = RepairEval::of(&clean, &clean, &truth);
        assert_eq!(eval.precision(), None);
        assert_eq!(eval.recall(), None);
        assert_eq!(eval.f1(), None);
    }

    #[test]
    fn stream_aggregation() {
        let truth = vec![t(["1", "2", "3"]), t(["4", "5", "6"])];
        let dirty = vec![t(["x", "2", "3"]), t(["4", "y", "6"])];
        let repaired = vec![t(["1", "2", "3"]), t(["4", "y", "6"])]; // second unfixed
        let eval = evaluate_stream(&dirty, &repaired, &truth);
        assert_eq!(eval.erroneous_cells, 2);
        assert_eq!(eval.errors_corrected, 1);
        assert_eq!(eval.cells_changed, 1);
        assert_eq!(eval.precision(), Some(1.0));
        assert_eq!(eval.recall(), Some(0.5));
    }

    #[test]
    fn workload_generation_counts() {
        let universe = vec![t(["1", "2", "3"]), t(["4", "5", "6"])];
        let mut rng = StdRng::seed_from_u64(1);
        let w = make_workload(&universe, 100, &NoiseSpec::with_rate(0.4), &mut rng);
        assert_eq!(w.len(), 100);
        assert!(!w.is_empty());
        let errors = w.total_errors();
        // ~0.4 × 3 cells × 100 tuples = ~120 errors; loose bounds.
        assert!(errors > 60 && errors < 180, "errors = {errors}");
        // Truth tuples come from the universe.
        for truth in &w.truth {
            assert!(universe.contains(truth));
        }
    }

    #[test]
    fn workload_deterministic_under_seed() {
        let universe = vec![t(["1", "2", "3"])];
        let spec = NoiseSpec::with_rate(0.5);
        let w1 = make_workload(&universe, 10, &spec, &mut StdRng::seed_from_u64(9));
        let w2 = make_workload(&universe, 10, &spec, &mut StdRng::seed_from_u64(9));
        assert_eq!(w1.dirty, w2.dirty);
    }
}
