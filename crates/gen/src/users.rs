//! Simulated users beyond the oracle: imperfect validators.
//!
//! The certain-fix guarantee is conditional: fixes are correct *"provided
//! that master data is available and that some other attributes are
//! validated (assured correct)"* (paper §1). A user who mis-validates
//! breaks the precondition. [`FallibleUser`] models that, and experiment
//! `T8` measures how output accuracy degrades with the user's error rate
//! — quantifying exactly how much of the guarantee rests on the user.

use crate::noise::typo;
use cerfix::UserAgent;
use cerfix_relation::{AttrId, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Follows suggestions like an oracle, but with probability `error_rate`
/// validates a *wrong* value (a typo of the truth) for an attribute.
#[derive(Debug, Clone)]
pub struct FallibleUser {
    truth: Tuple,
    error_rate: f64,
    rng: StdRng,
    /// Attributes mis-validated so far (for experiment bookkeeping).
    mistakes: Vec<AttrId>,
}

impl FallibleUser {
    /// A user who knows `truth` but errs at `error_rate` per validated
    /// attribute, deterministically under `seed`.
    pub fn new(truth: Tuple, error_rate: f64, seed: u64) -> FallibleUser {
        FallibleUser {
            truth,
            error_rate: error_rate.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
            mistakes: Vec::new(),
        }
    }

    /// Attributes the user validated incorrectly.
    pub fn mistakes(&self) -> &[AttrId] {
        &self.mistakes
    }
}

impl UserAgent for FallibleUser {
    fn validate(&mut self, _tuple: &Tuple, suggestion: &[AttrId]) -> Vec<(AttrId, Value)> {
        suggestion
            .iter()
            .map(|&a| {
                let true_value = self.truth.get(a).clone();
                if self.rng.gen_bool(self.error_rate) {
                    self.mistakes.push(a);
                    let wrong = typo(&true_value.render(), &mut self.rng);
                    (a, Value::str(wrong))
                } else {
                    (a, true_value)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Schema;

    fn truth() -> Tuple {
        let s = Schema::of_strings("t", ["a", "b", "c"]).unwrap();
        Tuple::of_strings(s, ["alpha", "beta", "gamma"]).unwrap()
    }

    #[test]
    fn zero_error_rate_is_an_oracle() {
        let t = truth();
        let mut u = FallibleUser::new(t.clone(), 0.0, 1);
        let out = u.validate(&t, &[0, 1, 2]);
        assert_eq!(out[0].1, Value::str("alpha"));
        assert_eq!(out[2].1, Value::str("gamma"));
        assert!(u.mistakes().is_empty());
    }

    #[test]
    fn full_error_rate_always_errs() {
        let t = truth();
        let mut u = FallibleUser::new(t.clone(), 1.0, 2);
        let out = u.validate(&t, &[0, 1]);
        assert_ne!(out[0].1, Value::str("alpha"));
        assert_ne!(out[1].1, Value::str("beta"));
        assert_eq!(u.mistakes(), &[0, 1]);
    }

    #[test]
    fn deterministic_under_seed() {
        let t = truth();
        let mut u1 = FallibleUser::new(t.clone(), 0.5, 7);
        let mut u2 = FallibleUser::new(t.clone(), 0.5, 7);
        assert_eq!(u1.validate(&t, &[0, 1, 2]), u2.validate(&t, &[0, 1, 2]));
    }

    #[test]
    fn wrong_values_are_never_null() {
        let t = truth();
        let mut u = FallibleUser::new(t.clone(), 1.0, 3);
        for (_, v) in u.validate(&t, &[0, 1, 2]) {
            assert!(!v.is_null(), "monitor rejects null validations");
        }
    }
}
