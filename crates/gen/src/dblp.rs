//! A DBLP-style scenario (bibliographic records).
//!
//! The theory paper's second evaluation dataset is DBLP. The synthetic
//! equivalent: publication records keyed by a DBLP-style key, where the
//! key determines title/authors/venue/year and the venue determines the
//! publisher. A pattern-gated rule (`kind = 'conf'`) exercises pattern
//! tableaux outside the UK scenario.

use crate::names::{FIRST_NAMES, LAST_NAMES, TITLE_WORDS, VENUES};
use crate::scenario::Scenario;
use cerfix_relation::{Relation, RelationBuilder, Schema, SchemaRef, Tuple};
use cerfix_rules::{parse_rules, RuleDecl, RuleSet};
use rand::rngs::StdRng;
use rand::Rng;

/// Editing rules for the DBLP scenario. `key` and `kind` are evidence
/// only; conference records additionally get their venue's publisher.
pub const DBLP_RULES_DSL: &str = "\
# DBLP-style rules: the key identifies the record; venue determines the
# publisher for conference papers.
er d1: match key=key fix title:=title when ()
er d2: match key=key fix authors:=authors when ()
er d3: match key=key fix venue:=venue when ()
er d4: match key=key fix year:=year when ()
er d5: match venue=venue fix publisher:=publisher when (kind='conf')
";

const ATTRS: [&str; 7] = [
    "key",
    "title",
    "authors",
    "venue",
    "year",
    "publisher",
    "kind",
];

/// The input schema.
pub fn input_schema() -> SchemaRef {
    Schema::of_strings("pub_entry", ATTRS).expect("static schema")
}

/// The master schema.
pub fn master_schema() -> SchemaRef {
    Schema::of_strings("pub_master", ATTRS).expect("static schema")
}

/// Generate `n` publication records.
pub fn generate_master(n: usize, rng: &mut StdRng) -> Relation {
    let schema = master_schema();
    let mut builder = RelationBuilder::new(schema);
    for i in 0..n {
        let (venue, publisher) = VENUES[i % VENUES.len()];
        let year = 1995 + (i % 25);
        let key = format!(
            "conf/{}/{}{}",
            venue.to_lowercase(),
            LAST_NAMES[i % LAST_NAMES.len()],
            year
        );
        let title: Vec<&str> = (0..4)
            .map(|_| TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())])
            .collect();
        let n_authors = rng.gen_range(1..4usize);
        let authors: Vec<String> = (0..n_authors)
            .map(|_| {
                format!(
                    "{} {}",
                    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                    LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
                )
            })
            .collect();
        builder = builder.row_strs([
            key.as_str(),
            &title.join(" "),
            &authors.join(", "),
            venue,
            &year.to_string(),
            publisher,
            "conf",
        ]);
    }
    builder.build().expect("generated rows conform")
}

/// Parse the DBLP rules.
pub fn rules() -> RuleSet {
    let input = input_schema();
    let master = master_schema();
    let mut set = RuleSet::new(input.clone(), master.clone());
    for decl in parse_rules(DBLP_RULES_DSL, &input, &master).expect("static DSL parses") {
        match decl {
            RuleDecl::Er(r) => {
                set.add(r).expect("unique names");
            }
            _ => unreachable!("only er declarations"),
        }
    }
    set
}

/// Truth universe: every master record as a correct entry.
pub fn truth_universe(master: &Relation) -> Vec<Tuple> {
    let input = input_schema();
    master
        .iter()
        .map(|(_, s)| Tuple::new(input.clone(), s.values().to_vec()).expect("same layout"))
        .collect()
}

/// Build the complete DBLP scenario with `n` records.
pub fn scenario(n: usize, rng: &mut StdRng) -> Scenario {
    let master = generate_master(n, rng);
    let universe = truth_universe(&master);
    // Share the universe tuples' schema object so workload tuples can be
    // collected into relations over `Scenario::input` (schema identity,
    // not just structural equality, is enforced by `Relation::push`).
    let input = universe
        .first()
        .map(|t| t.schema().clone())
        .unwrap_or_else(input_schema);
    Scenario {
        name: "dblp",
        input,
        master_schema: master_schema(),
        master,
        rules: rules(),
        universe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix::{check_consistency, ConsistencyOptions, MasterData};
    use rand::SeedableRng;

    #[test]
    fn rules_parse_with_pattern() {
        let r = rules();
        assert_eq!(r.len(), 5);
        let (_, d5) = r.get_by_name("d5").unwrap();
        assert!(!d5.pattern().is_empty());
    }

    #[test]
    fn keys_unique_and_venue_publisher_functional() {
        let mut rng = StdRng::seed_from_u64(11);
        let master = generate_master(300, &mut rng);
        let mut keys = std::collections::HashSet::new();
        let mut venue_pub: std::collections::HashMap<String, String> = Default::default();
        for (_, s) in master.iter() {
            assert!(
                keys.insert(s.get_by_name("key").unwrap().render()),
                "keys unique"
            );
            let v = s.get_by_name("venue").unwrap().render();
            let p = s.get_by_name("publisher").unwrap().render();
            if let Some(prev) = venue_pub.insert(v, p.clone()) {
                assert_eq!(prev, p, "venue → publisher functional");
            }
        }
    }

    #[test]
    fn consistent_in_entity_mode() {
        let mut rng = StdRng::seed_from_u64(12);
        let master = MasterData::new(generate_master(150, &mut rng));
        let report = check_consistency(&rules(), &master, &ConsistencyOptions::entity_coherent());
        assert!(report.is_consistent(), "{:?}", report.conflicts);
    }

    #[test]
    fn scenario_builds() {
        let s = scenario(30, &mut StdRng::seed_from_u64(13));
        assert_eq!(s.name, "dblp");
        assert_eq!(s.universe.len(), 30);
        assert_eq!(s.master.len(), 30);
    }
}
