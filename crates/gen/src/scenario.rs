//! A packaged scenario: schemas, master data, rules and truth universe.

use cerfix::MasterData;
use cerfix_relation::{Relation, SchemaRef, Tuple};
use cerfix_rules::RuleSet;

/// Everything an experiment needs: the input/master schema pair, the
/// master relation, the editing rules, and the universe of possible true
/// input tuples (used for region certification and workload generation).
#[derive(Debug)]
pub struct Scenario {
    /// Scenario name ("uk", "hosp", "dblp").
    pub name: &'static str,
    /// Schema of input (dirty) tuples.
    pub input: SchemaRef,
    /// Schema of master data.
    pub master_schema: SchemaRef,
    /// The master relation `Dm`.
    pub master: Relation,
    /// The editing rules.
    pub rules: RuleSet,
    /// Possible ground-truth input tuples derived from master data.
    pub universe: Vec<Tuple>,
}

impl Scenario {
    /// Wrap the master relation in a [`MasterData`] manager (indexed).
    pub fn master_data(&self) -> MasterData {
        MasterData::new(self.master.clone())
    }

    /// Wrap the master relation without indexes (ablation arm).
    pub fn master_data_unindexed(&self) -> MasterData {
        MasterData::new_unindexed(self.master.clone())
    }
}
