//! # cerfix-gen — workload generators for the CerFix reproduction
//!
//! Synthetic master data, truth universes and dirty input streams with
//! retained ground truth, for three scenarios:
//!
//! * [`uk`] — the paper's UK-customer running example, verbatim (the nine
//!   rules of Fig. 2, the master tuples of Example 2 and Fig. 2, the
//!   dirty tuple of Example 1), extrapolated to any master-data size;
//! * [`hosp`] — a HOSP-style hospital-quality scenario mirroring the
//!   dataset used in the theory paper's experiments;
//! * [`dblp`] — a DBLP-style bibliographic scenario.
//!
//! Noise injection ([`noise`]) models the error classes the demo fixes:
//! domain swaps (Example 1's wrong area code), typos, and abbreviations
//! (Fig. 3's `'M.'` for `'Mark'`). Every workload keeps ground truth so
//! experiments can score repairs exactly ([`ground_truth`]).
//!
//! All generation is deterministic under seeded [`rand::rngs::StdRng`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dblp;
pub mod ground_truth;
pub mod hosp;
pub mod names;
pub mod noise;
mod scenario;
pub mod uk;
pub mod users;

pub use ground_truth::{evaluate_stream, make_workload, RepairEval, Workload};
pub use noise::{abbreviate, corrupt, typo, NoiseChannel, NoiseSpec};
pub use scenario::Scenario;
pub use users::FallibleUser;
