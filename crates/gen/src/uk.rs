//! The paper's UK-customer scenario, at generator scale.
//!
//! Schemas, master tuples and all nine editing rules φ1–φ9 exactly as in
//! the paper (Examples 1–2, Fig. 2), plus a seeded generator that
//! extrapolates master data of any size with the same functional
//! structure, so the rules remain consistent by construction:
//!
//! * every entity has a unique zip, a unique mobile phone, and a unique
//!   (AC, home-phone) pair;
//! * `zip → (AC, str, city)` and `AC → city` are functional (area codes
//!   and postcode areas are per-city).

use crate::names::{CITIES, FIRST_NAMES, ITEMS, LAST_NAMES, STREETS};
use crate::scenario::Scenario;
use cerfix_relation::{Relation, RelationBuilder, Schema, SchemaRef, Tuple};
use cerfix_rules::{parse_rules, RuleDecl, RuleSet};
use rand::rngs::StdRng;
use rand::Rng;

/// The paper's nine editing rules (Fig. 2), in the DSL.
pub const UK_RULES_DSL: &str = "\
# Fig. 2 of the paper: editing rules phi1..phi9 over the UK schemas.
er phi1: match zip=zip fix AC:=AC when ()
er phi2: match zip=zip fix str:=str when ()
er phi3: match zip=zip fix city:=city when ()
er phi4: match phn=Mphn fix FN:=FN when (type='2')
er phi5: match phn=Mphn fix LN:=LN when (type='2')
er phi6: match AC=AC, phn=Hphn fix str:=str when (type='1')
er phi7: match AC=AC, phn=Hphn fix city:=city when (type='1')
er phi8: match AC=AC, phn=Hphn fix zip:=zip when (type='1')
er phi9: match AC=AC fix city:=city when (AC!='0800')
";

/// The input (customer) schema of Example 1.
pub fn input_schema() -> SchemaRef {
    Schema::of_strings(
        "customer",
        [
            "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
        ],
    )
    .expect("static schema")
}

/// The master schema of Example 2.
pub fn master_schema() -> SchemaRef {
    Schema::of_strings(
        "master",
        [
            "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender",
        ],
    )
    .expect("static schema")
}

/// The two master tuples shown in the paper (Example 2 and Fig. 2).
pub fn paper_master_rows() -> Vec<[&'static str; 10]> {
    vec![
        [
            "Robert",
            "Brady",
            "131",
            "6884563",
            "079172485",
            "501 Elm St",
            "Edi",
            "EH8 4AH",
            "11/11/55",
            "M",
        ],
        [
            "Mark",
            "Smith",
            "020",
            "6884564",
            "075568485",
            "20 Baker St",
            "Ldn",
            "NW1 6XE",
            "25/12/67",
            "M",
        ],
    ]
}

/// The dirty tuple of Example 1 (a UK customer with `AC = 020` but
/// Edinburgh address).
pub fn example1_tuple() -> Tuple {
    Tuple::of_strings(
        input_schema(),
        [
            "Bob",
            "Brady",
            "020",
            "079172485",
            "2",
            "501 Elm St",
            "Edi",
            "EH8 4AH",
            "CD",
        ],
    )
    .expect("static tuple")
}

/// Generate a master relation with `n` entities (the paper's two tuples
/// first, then generated ones), deterministic under the seeded `rng`.
pub fn generate_master(n: usize, rng: &mut StdRng) -> Relation {
    let schema = master_schema();
    let mut builder = RelationBuilder::new(schema);
    for (i, row) in paper_master_rows().into_iter().enumerate() {
        if i >= n {
            break;
        }
        builder = builder.row_strs(row.iter().copied());
    }
    for i in paper_master_rows().len()..n {
        let city = &CITIES[i % CITIES.len()];
        let fn_ = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let ln = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        // Unique zip per entity within its city's postcode area.
        let zip = format!("{}{} {}AA", city.zip_prefix, i / 10, i % 10);
        let street = format!("{} {}", rng.gen_range(1..999), STREETS[i % STREETS.len()]);
        // Unique phones: derive from the entity index.
        let hphn = format!("6{:07}", i);
        let mphn = format!("07{:08}", i);
        let dob = format!(
            "{:02}/{:02}/{:02}",
            rng.gen_range(1..29),
            rng.gen_range(1..13),
            rng.gen_range(40..99)
        );
        let gender = if rng.gen_bool(0.5) { "M" } else { "F" };
        builder = builder.row_strs([
            fn_,
            ln,
            city.area_code,
            &hphn,
            &mphn,
            &street,
            city.city,
            &zip,
            &dob,
            gender,
        ]);
    }
    builder.build().expect("generated rows conform to schema")
}

/// Parse the nine paper rules into a rule set over the UK schema pair.
pub fn rules() -> RuleSet {
    let input = input_schema();
    let master = master_schema();
    let mut set = RuleSet::new(input.clone(), master.clone());
    for decl in parse_rules(UK_RULES_DSL, &input, &master).expect("static DSL parses") {
        match decl {
            RuleDecl::Er(r) => {
                set.add(r).expect("no duplicate names in static DSL");
            }
            _ => unreachable!("UK_RULES_DSL contains only er declarations"),
        }
    }
    set
}

/// The truth universe: for each master entity, one type=1 (home phone)
/// and one type=2 (mobile) input tuple, with a deterministic item.
pub fn truth_universe(master: &Relation) -> Vec<Tuple> {
    let input = input_schema();
    let get = |t: &Tuple, n: &str| t.get_by_name(n).expect("master attr").clone();
    let mut universe = Vec::with_capacity(master.len() * 2);
    for (i, s) in master.iter() {
        let item = ITEMS[i % ITEMS.len()];
        for (ty, phone_attr) in [("1", "Hphn"), ("2", "Mphn")] {
            let t = Tuple::new(
                input.clone(),
                vec![
                    get(s, "FN"),
                    get(s, "LN"),
                    get(s, "AC"),
                    get(s, phone_attr),
                    cerfix_relation::Value::str(ty),
                    get(s, "str"),
                    get(s, "city"),
                    get(s, "zip"),
                    cerfix_relation::Value::str(item),
                ],
            )
            .expect("universe tuple conforms");
            universe.push(t);
        }
    }
    universe
}

/// Build the complete UK scenario with `n_master` entities.
pub fn scenario(n_master: usize, rng: &mut StdRng) -> Scenario {
    let master = generate_master(n_master, rng);
    let universe = truth_universe(&master);
    // Share the universe tuples' schema object so workload tuples can be
    // collected into relations over `Scenario::input` (schema identity,
    // not just structural equality, is enforced by `Relation::push`).
    let input = universe
        .first()
        .map(|t| t.schema().clone())
        .unwrap_or_else(input_schema);
    Scenario {
        name: "uk",
        input,
        master_schema: master_schema(),
        master,
        rules: rules(),
        universe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix::{check_consistency, ConsistencyOptions, MasterData};
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn nine_rules_parse() {
        let r = rules();
        assert_eq!(r.len(), 9);
        assert!(r.get_by_name("phi1").is_some());
        assert!(r.get_by_name("phi9").is_some());
    }

    #[test]
    fn paper_rows_included() {
        let mut rng = StdRng::seed_from_u64(0);
        let master = generate_master(5, &mut rng);
        assert_eq!(master.len(), 5);
        assert_eq!(
            master.row(0).unwrap().get_by_name("FN").unwrap(),
            &cerfix_relation::Value::str("Robert")
        );
        assert_eq!(
            master.row(1).unwrap().get_by_name("zip").unwrap(),
            &cerfix_relation::Value::str("NW1 6XE")
        );
    }

    #[test]
    fn master_keys_functional() {
        let mut rng = StdRng::seed_from_u64(1);
        let master = generate_master(500, &mut rng);
        let mut zips = HashSet::new();
        let mut mphns = HashSet::new();
        let mut ac_city: std::collections::HashMap<String, String> = Default::default();
        for (_, s) in master.iter() {
            let zip = s.get_by_name("zip").unwrap().render();
            assert!(zips.insert(zip), "zips must be unique");
            let mphn = s.get_by_name("Mphn").unwrap().render();
            assert!(mphns.insert(mphn), "mobile phones must be unique");
            let ac = s.get_by_name("AC").unwrap().render();
            let city = s.get_by_name("city").unwrap().render();
            let prev = ac_city.insert(ac.clone(), city.clone());
            if let Some(prev) = prev {
                assert_eq!(prev, city, "AC → city must be functional (φ9)");
            }
        }
    }

    #[test]
    fn generated_rules_are_entity_consistent_with_generated_master() {
        // Under the demo's operating regime (validated evidence belongs
        // to one real customer) the nine rules are consistent with the
        // generated master data, and no key is ambiguous.
        let mut rng = StdRng::seed_from_u64(2);
        let master = MasterData::new(generate_master(300, &mut rng));
        let report = check_consistency(&rules(), &master, &ConsistencyOptions::entity_coherent());
        assert!(report.is_consistent(), "conflicts: {:?}", report.conflicts);
        assert!(report.ambiguities.is_empty(), "{:?}", report.ambiguities);
    }

    #[test]
    fn strict_mode_flags_cross_entity_mixtures() {
        // Strictly, φ2 (zip→str) and φ6 ((AC,phn)→str) conflict on inputs
        // mixing one entity's zip with another entity's home phone — a
        // tuple no real customer produces. This is why the checker
        // distinguishes the two modes (DESIGN.md §1).
        let mut rng = StdRng::seed_from_u64(2);
        let master = MasterData::new(generate_master(100, &mut rng));
        let report = check_consistency(&rules(), &master, &ConsistencyOptions::default());
        assert!(!report.is_consistent());
    }

    #[test]
    fn universe_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let master = generate_master(10, &mut rng);
        let universe = truth_universe(&master);
        assert_eq!(universe.len(), 20, "two phone types per entity");
        // Every universe tuple's zip exists in master.
        let zips: HashSet<String> = master
            .iter()
            .map(|(_, s)| s.get_by_name("zip").unwrap().render())
            .collect();
        for u in &universe {
            assert!(zips.contains(&u.get_by_name("zip").unwrap().render()));
            let ty = u.get_by_name("type").unwrap().render();
            assert!(ty == "1" || ty == "2");
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let s1 = scenario(50, &mut StdRng::seed_from_u64(7));
        let s2 = scenario(50, &mut StdRng::seed_from_u64(7));
        for ((_, a), (_, b)) in s1.master.iter().zip(s2.master.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(s1.universe.len(), s2.universe.len());
    }

    #[test]
    fn example1_matches_example2_master_on_zip() {
        let t = example1_tuple();
        let mut rng = StdRng::seed_from_u64(0);
        let master = generate_master(2, &mut rng);
        let s = master.row(0).unwrap();
        assert_eq!(
            t.get_by_name("zip").unwrap(),
            s.get_by_name("zip").unwrap(),
            "Example 1's tuple shares Robert Brady's zip"
        );
        assert_ne!(t.get_by_name("AC").unwrap(), s.get_by_name("AC").unwrap());
    }
}
