//! A textual DSL for editing rules, CFDs and MDs.
//!
//! The demo manages rules through a Web form (Fig. 2); the reproduction
//! manages them as text, one declaration per line:
//!
//! ```text
//! # The paper's nine editing rules (Fig. 2).
//! er phi1: match zip=zip fix zip:=zip when ()          # (sic: φ1 fixes AC)
//! er phi4: match phn=Mphn fix FN:=FN when (type='2')
//! er phi9: match AC=AC fix city:=city when (AC!='0800')
//!
//! # CFDs over the input schema (Example 1).
//! cfd psi1: AC -> city | '020' -> 'Ldn' ; '131' -> 'Edi'
//! cfd fd1: zip -> city | _ -> _
//!
//! # Matching dependencies across the schema pair.
//! md m1: phn==Mphn & FN abbr FN identify FN<=>FN
//! ```
//!
//! Grammar (per line, after stripping `#`-comments):
//!
//! ```text
//! er   NAME ':' 'match' pair (',' pair)* 'fix' fixpair (',' fixpair)* 'when' pattern
//! pair     := ATTR '=' ATTR                  (input = master)
//! fixpair  := ATTR ':=' ATTR                 (input := master)
//! pattern  := '(' ')' | '(' cond (',' cond)* ')'
//! cond     := ATTR '=' STRING | ATTR '!=' STRING
//!
//! cfd  NAME ':' attrs '->' ATTR '|' row (';' row)*
//! attrs    := ATTR (',' ATTR)*
//! row      := cell (',' cell)* '->' cell
//! cell     := '_' | STRING
//!
//! md   NAME ':' clause ('&' clause)* 'identify' ident (',' ident)*
//! clause   := ATTR simop ATTR                (input op master)
//! simop    := '==' | '=i=' | 'abbr' | '~' INT
//! ident    := ATTR '<=>' ATTR
//! ```
//!
//! `STRING` is single-quoted with `''` as the escape for a literal quote.

use crate::cfd::{Cfd, TableauCell, TableauRow};
use crate::editing_rule::EditingRule;
use crate::error::{Result, RuleError};
use crate::md::{MatchingDependency, MdClause};
use crate::pattern::PatternTuple;
use crate::similarity::SimilarityOp;
use cerfix_relation::{SchemaRef, Value};

/// A parsed top-level declaration.
#[derive(Debug, Clone)]
pub enum RuleDecl {
    /// An editing rule.
    Er(EditingRule),
    /// A conditional functional dependency (over the input schema).
    Cfd(Cfd),
    /// A matching dependency (across the schema pair).
    Md(MatchingDependency),
}

impl RuleDecl {
    /// The declaration's name.
    pub fn name(&self) -> &str {
        match self {
            RuleDecl::Er(r) => r.name(),
            RuleDecl::Cfd(c) => c.name(),
            RuleDecl::Md(m) => m.name(),
        }
    }
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(u32),
    Colon,
    Comma,
    Semicolon,
    LParen,
    RParen,
    Eq,       // =
    EqEq,     // ==
    EqIEq,    // =i=
    Ne,       // !=
    Assign,   // :=
    Arrow,    // ->
    Identify, // <=>
    Amp,      // &
    Tilde,    // ~
    Underscore,
    Pipe,
}

fn tokenize(line: &str, line_no: usize) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    let err = |msg: String| RuleError::Parse {
        line: line_no,
        message: msg,
    };
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '#' => break, // comment to end of line
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semicolon);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '&' => {
                toks.push(Tok::Amp);
                i += 1;
            }
            '|' => {
                toks.push(Tok::Pipe);
                i += 1;
            }
            '~' => {
                toks.push(Tok::Tilde);
                i += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Assign);
                    i += 2;
                } else {
                    toks.push(Tok::Colon);
                    i += 1;
                }
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    return Err(err("stray `-` (expected `->`)".into()));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') && chars.get(i + 2) == Some(&'>') {
                    toks.push(Tok::Identify);
                    i += 3;
                } else {
                    return Err(err("stray `<` (expected `<=>`)".into()));
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(err("stray `!` (expected `!=`)".into()));
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'i') && chars.get(i + 2) == Some(&'=') {
                    toks.push(Tok::EqIEq);
                    i += 3;
                } else if chars.get(i + 1) == Some(&'=') {
                    toks.push(Tok::EqEq);
                    i += 2;
                } else {
                    toks.push(Tok::Eq);
                    i += 1;
                }
            }
            '\'' => {
                // Quoted string; '' escapes a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err(err("unterminated string literal".into())),
                        Some('\'') => {
                            if chars.get(i + 1) == Some(&'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(ch) => {
                            s.push(*ch);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '_' if !chars
                .get(i + 1)
                .map(|c| c.is_alphanumeric() || *c == '_')
                .unwrap_or(false) =>
            {
                toks.push(Tok::Underscore);
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                // A digit run followed by identifier chars is an identifier
                // (attribute names may start with digits in odd schemas).
                if i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok::Ident(chars[start..i].iter().collect()));
                } else {
                    let n: u32 = text
                        .parse()
                        .map_err(|_| err(format!("integer literal `{text}` out of range")))?;
                    toks.push(Tok::Int(n));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: impl Into<String>) -> RuleError {
        RuleError::Parse {
            line: self.line,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<()> {
        match self.next() {
            Some(t) if t == *tok => Ok(()),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of line"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

/// Parse an entire DSL document into declarations.
pub fn parse_rules(text: &str, input: &SchemaRef, master: &SchemaRef) -> Result<Vec<RuleDecl>> {
    let mut decls = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let toks = tokenize(raw_line, line_no)?;
        if toks.is_empty() {
            continue;
        }
        let mut cur = Cursor {
            toks: &toks,
            pos: 0,
            line: line_no,
        };
        let kind = cur.ident("declaration keyword (`er`, `cfd` or `md`)")?;
        let decl = match kind.as_str() {
            "er" => RuleDecl::Er(parse_er(&mut cur, input, master)?),
            "cfd" => RuleDecl::Cfd(parse_cfd(&mut cur, input)?),
            "md" => RuleDecl::Md(parse_md(&mut cur, input, master)?),
            other => {
                return Err(cur.err(format!(
                    "unknown declaration `{other}` (expected `er`, `cfd` or `md`)"
                )))
            }
        };
        if !cur.at_end() {
            return Err(cur.err("trailing tokens after declaration"));
        }
        decls.push(decl);
    }
    Ok(decls)
}

fn parse_er(cur: &mut Cursor<'_>, input: &SchemaRef, master: &SchemaRef) -> Result<EditingRule> {
    let name = cur.ident("rule name")?;
    cur.expect(&Tok::Colon, "`:`")?;
    let kw = cur.ident("`match`")?;
    if kw != "match" {
        return Err(cur.err(format!("expected `match`, found `{kw}`")));
    }
    let mut lhs = Vec::new();
    loop {
        let t_attr = cur.ident("input attribute")?;
        cur.expect(&Tok::Eq, "`=`")?;
        let s_attr = cur.ident("master attribute")?;
        lhs.push((input.require_attr(&t_attr)?, master.require_attr(&s_attr)?));
        match cur.peek() {
            Some(Tok::Comma) => {
                cur.next();
            }
            _ => break,
        }
    }
    let kw = cur.ident("`fix`")?;
    if kw != "fix" {
        return Err(cur.err(format!("expected `fix`, found `{kw}`")));
    }
    let mut rhs = Vec::new();
    loop {
        let t_attr = cur.ident("input attribute")?;
        cur.expect(&Tok::Assign, "`:=`")?;
        let s_attr = cur.ident("master attribute")?;
        rhs.push((input.require_attr(&t_attr)?, master.require_attr(&s_attr)?));
        match cur.peek() {
            Some(Tok::Comma) => {
                cur.next();
            }
            _ => break,
        }
    }
    let kw = cur.ident("`when`")?;
    if kw != "when" {
        return Err(cur.err(format!("expected `when`, found `{kw}`")));
    }
    cur.expect(&Tok::LParen, "`(`")?;
    let mut pattern = PatternTuple::empty();
    if cur.peek() != Some(&Tok::RParen) {
        loop {
            let attr = cur.ident("pattern attribute")?;
            let attr_id = input.require_attr(&attr)?;
            match cur.next() {
                Some(Tok::Eq) => {
                    let v = cur.string("pattern constant")?;
                    pattern = pattern.with_eq(attr_id, Value::str(v));
                }
                Some(Tok::Ne) => {
                    let v = cur.string("pattern constant")?;
                    pattern = pattern.with_ne(attr_id, Value::str(v));
                }
                other => return Err(cur.err(format!("expected `=` or `!=`, found {other:?}"))),
            }
            match cur.peek() {
                Some(Tok::Comma) => {
                    cur.next();
                }
                _ => break,
            }
        }
    }
    cur.expect(&Tok::RParen, "`)`")?;
    EditingRule::new(name, input, master, lhs, rhs, pattern)
}

fn parse_cfd(cur: &mut Cursor<'_>, input: &SchemaRef) -> Result<Cfd> {
    let name = cur.ident("CFD name")?;
    cur.expect(&Tok::Colon, "`:`")?;
    let mut lhs = Vec::new();
    loop {
        let attr = cur.ident("LHS attribute")?;
        lhs.push(input.require_attr(&attr)?);
        match cur.peek() {
            Some(Tok::Comma) => {
                cur.next();
            }
            _ => break,
        }
    }
    cur.expect(&Tok::Arrow, "`->`")?;
    let rhs_attr = cur.ident("RHS attribute")?;
    let rhs = input.require_attr(&rhs_attr)?;
    cur.expect(&Tok::Pipe, "`|`")?;
    let mut tableau = Vec::new();
    loop {
        let mut cells = Vec::new();
        loop {
            cells.push(parse_cell(cur)?);
            match cur.peek() {
                Some(Tok::Comma) => {
                    cur.next();
                }
                _ => break,
            }
        }
        cur.expect(&Tok::Arrow, "`->`")?;
        let rhs_cell = parse_cell(cur)?;
        tableau.push(TableauRow {
            lhs: cells,
            rhs: rhs_cell,
        });
        match cur.peek() {
            Some(Tok::Semicolon) => {
                cur.next();
            }
            _ => break,
        }
    }
    Cfd::new(name, input, lhs, rhs, tableau)
}

fn parse_cell(cur: &mut Cursor<'_>) -> Result<TableauCell> {
    match cur.next() {
        Some(Tok::Underscore) => Ok(TableauCell::Wildcard),
        Some(Tok::Str(s)) => Ok(TableauCell::Const(Value::str(s.clone()))),
        other => Err(cur.err(format!(
            "expected `_` or a quoted constant, found {other:?}"
        ))),
    }
}

fn parse_md(
    cur: &mut Cursor<'_>,
    input: &SchemaRef,
    master: &SchemaRef,
) -> Result<MatchingDependency> {
    let name = cur.ident("MD name")?;
    cur.expect(&Tok::Colon, "`:`")?;
    let mut lhs = Vec::new();
    loop {
        let left = cur.ident("input attribute")?;
        let left_id = input.require_attr(&left)?;
        let op = match cur.next() {
            Some(Tok::EqEq) => SimilarityOp::Exact,
            Some(Tok::EqIEq) => SimilarityOp::CaseInsensitive,
            Some(Tok::Tilde) => match cur.next() {
                Some(Tok::Int(k)) => SimilarityOp::EditDistance(k),
                other => {
                    return Err(cur.err(format!(
                        "expected distance bound after `~`, found {other:?}"
                    )))
                }
            },
            Some(Tok::Ident(kw)) if kw == "abbr" => SimilarityOp::Abbreviation,
            other => {
                return Err(cur.err(format!(
                    "expected similarity operator (`==`, `=i=`, `~k`, `abbr`), found {other:?}"
                )))
            }
        };
        let right = cur.ident("master attribute")?;
        let right_id = master.require_attr(&right)?;
        lhs.push(MdClause {
            left: left_id,
            right: right_id,
            op,
        });
        match cur.peek() {
            Some(Tok::Amp) => {
                cur.next();
            }
            _ => break,
        }
    }
    let kw = cur.ident("`identify`")?;
    if kw != "identify" {
        return Err(cur.err(format!("expected `identify`, found `{kw}`")));
    }
    let mut rhs = Vec::new();
    loop {
        let left = cur.ident("input attribute")?;
        cur.expect(&Tok::Identify, "`<=>`")?;
        let right = cur.ident("master attribute")?;
        rhs.push((input.require_attr(&left)?, master.require_attr(&right)?));
        match cur.peek() {
            Some(Tok::Comma) => {
                cur.next();
            }
            _ => break,
        }
    }
    MatchingDependency::new(name, input, master, lhs, rhs)
}

// ---------------------------------------------------------------------------
// Rendering (inverse of parsing, for the explorer's rule listing)
// ---------------------------------------------------------------------------

/// Render an editing rule back into DSL syntax.
pub fn render_er_dsl(rule: &EditingRule, input: &SchemaRef, master: &SchemaRef) -> String {
    let lhs: Vec<String> = rule
        .lhs()
        .iter()
        .map(|&(t, s)| format!("{}={}", input.attr_name(t), master.attr_name(s)))
        .collect();
    let rhs: Vec<String> = rule
        .rhs()
        .iter()
        .map(|&(t, s)| format!("{}:={}", input.attr_name(t), master.attr_name(s)))
        .collect();
    let pattern = if rule.pattern().is_empty() {
        "()".to_string()
    } else {
        let conds: Vec<String> = rule
            .pattern()
            .cells()
            .iter()
            .map(|c| {
                use crate::pattern::PatternOp;
                match &c.op {
                    PatternOp::Any => format!("{}!=''", input.attr_name(c.attr)),
                    PatternOp::Eq(v) => format!("{}='{}'", input.attr_name(c.attr), quote(v)),
                    PatternOp::Ne(vs) => vs
                        .iter()
                        .map(|v| format!("{}!='{}'", input.attr_name(c.attr), quote(v)))
                        .collect::<Vec<_>>()
                        .join(", "),
                }
            })
            .collect();
        format!("({})", conds.join(", "))
    };
    format!(
        "er {}: match {} fix {} when {}",
        rule.name(),
        lhs.join(", "),
        rhs.join(", "),
        pattern
    )
}

fn quote(v: &Value) -> String {
    v.render().replace('\'', "''")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{Schema, Tuple};

    fn schemas() -> (SchemaRef, SchemaRef) {
        (
            Schema::of_strings(
                "customer",
                [
                    "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
                ],
            )
            .unwrap(),
            Schema::of_strings(
                "master",
                [
                    "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender",
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn parse_phi1() {
        let (input, master) = schemas();
        let decls =
            parse_rules("er phi1: match zip=zip fix AC:=AC when ()", &input, &master).unwrap();
        assert_eq!(decls.len(), 1);
        let RuleDecl::Er(r) = &decls[0] else {
            panic!("expected er")
        };
        assert_eq!(r.name(), "phi1");
        assert_eq!(r.input_lhs(), vec![input.attr_id("zip").unwrap()]);
        assert_eq!(r.input_rhs(), vec![input.attr_id("AC").unwrap()]);
        assert!(r.pattern().is_empty());
    }

    #[test]
    fn parse_phi4_with_pattern() {
        let (input, master) = schemas();
        let decls = parse_rules(
            "er phi4: match phn=Mphn fix FN:=FN when (type='2')",
            &input,
            &master,
        )
        .unwrap();
        let RuleDecl::Er(r) = &decls[0] else { panic!() };
        let t = Tuple::of_strings(
            input.clone(),
            ["M.", "Smith", "131", "079", "2", "s", "Edi", "EH8", "CD"],
        )
        .unwrap();
        assert!(r.pattern().matches(&t));
    }

    #[test]
    fn parse_phi9_negation() {
        let (input, master) = schemas();
        let decls = parse_rules(
            "er phi9: match AC=AC fix city:=city when (AC!='0800')",
            &input,
            &master,
        )
        .unwrap();
        let RuleDecl::Er(r) = &decls[0] else { panic!() };
        let toll_free = Tuple::of_strings(
            input.clone(),
            ["f", "l", "0800", "p", "1", "s", "c", "z", "i"],
        )
        .unwrap();
        assert!(!r.pattern().matches(&toll_free));
    }

    #[test]
    fn parse_multi_attr_and_multi_fix() {
        let (input, master) = schemas();
        let decls = parse_rules(
            "er phi678: match AC=AC, phn=Hphn fix str:=str, city:=city, zip:=zip when (type='1')",
            &input,
            &master,
        )
        .unwrap();
        let RuleDecl::Er(r) = &decls[0] else { panic!() };
        assert_eq!(r.lhs().len(), 2);
        assert_eq!(r.rhs().len(), 3);
    }

    #[test]
    fn parse_cfd_constant_and_variable() {
        let (input, master) = schemas();
        let text = "cfd psi: AC -> city | '020' -> 'Ldn' ; '131' -> 'Edi' ; _ -> _";
        let decls = parse_rules(text, &input, &master).unwrap();
        let RuleDecl::Cfd(c) = &decls[0] else {
            panic!()
        };
        assert_eq!(c.tableau().len(), 3);
        assert!(c.tableau()[0].is_constant());
        assert!(!c.tableau()[2].is_constant());
    }

    #[test]
    fn parse_md_operators() {
        let (input, master) = schemas();
        let text =
            "md m1: phn==Mphn & FN abbr FN & LN~1 LN & city=i=city identify FN<=>FN, LN<=>LN";
        let decls = parse_rules(text, &input, &master).unwrap();
        let RuleDecl::Md(m) = &decls[0] else { panic!() };
        assert_eq!(m.lhs().len(), 4);
        assert_eq!(m.lhs()[0].op, SimilarityOp::Exact);
        assert_eq!(m.lhs()[1].op, SimilarityOp::Abbreviation);
        assert_eq!(m.lhs()[2].op, SimilarityOp::EditDistance(1));
        assert_eq!(m.lhs()[3].op, SimilarityOp::CaseInsensitive);
        assert_eq!(m.rhs().len(), 2);
    }

    #[test]
    fn comments_and_blank_lines() {
        let (input, master) = schemas();
        let text =
            "\n# all nine rules below\n\ner phi1: match zip=zip fix AC:=AC when () # trailing\n";
        let decls = parse_rules(text, &input, &master).unwrap();
        assert_eq!(decls.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let (input, master) = schemas();
        let text = "er ok1: match zip=zip fix AC:=AC when ()\ner broken match";
        let err = parse_rules(text, &input, &master).unwrap_err();
        match err {
            RuleError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn unknown_attribute_is_reported() {
        let (input, master) = schemas();
        let err = parse_rules(
            "er r: match postcode=zip fix AC:=AC when ()",
            &input,
            &master,
        )
        .unwrap_err();
        assert!(err.to_string().contains("postcode"));
    }

    #[test]
    fn unknown_keyword_rejected() {
        let (input, master) = schemas();
        let err = parse_rules("rule r: match zip=zip", &input, &master).unwrap_err();
        assert!(err.to_string().contains("unknown declaration"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let (input, master) = schemas();
        let err = parse_rules(
            "er r: match zip=zip fix AC:=AC when () garbage",
            &input,
            &master,
        )
        .unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn string_escapes() {
        let (input, master) = schemas();
        let decls = parse_rules(
            "er r: match zip=zip fix AC:=AC when (city='O''Brien''s')",
            &input,
            &master,
        )
        .unwrap();
        let RuleDecl::Er(r) = &decls[0] else { panic!() };
        let cell = &r.pattern().cells()[0];
        assert_eq!(
            cell.op,
            crate::pattern::PatternOp::Eq(Value::str("O'Brien's"))
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        let (input, master) = schemas();
        let err = parse_rules(
            "er r: match zip=zip fix AC:=AC when (city='oops)",
            &input,
            &master,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn render_round_trip() {
        let (input, master) = schemas();
        let text = "er phi9: match AC=AC fix city:=city when (AC!='0800')";
        let decls = parse_rules(text, &input, &master).unwrap();
        let RuleDecl::Er(r) = &decls[0] else { panic!() };
        let rendered = render_er_dsl(r, &input, &master);
        let reparsed = parse_rules(&rendered, &input, &master).unwrap();
        let RuleDecl::Er(r2) = &reparsed[0] else {
            panic!()
        };
        assert_eq!(r, r2);
    }

    #[test]
    fn decl_names() {
        let (input, master) = schemas();
        let text = "er a: match zip=zip fix AC:=AC when ()\ncfd b: AC -> city | _ -> _\nmd c: phn==Mphn identify FN<=>FN";
        let decls = parse_rules(text, &input, &master).unwrap();
        let names: Vec<&str> = decls.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
