//! Dependency discovery from reference data.
//!
//! Paper §2: editing rules can be "derived from integrity constraints,
//! e.g., cfds and matching dependencies for which discovery algorithms
//! are already in place". This module provides those discovery
//! algorithms for the single-LHS case: exact functional dependencies
//! `X → A` (one attribute each side) holding on a reference relation,
//! with support statistics, plus a pipeline that discovers FDs on master
//! data and compiles them straight into editing rules over an input
//! schema.
//!
//! Discovery is deliberately conservative: a dependency is reported only
//! if it holds *exactly* (no violating pair) and its LHS has at least
//! `min_distinct` distinct values (tiny domains make accidental FDs
//! likely). Discovered rules are still subject to the engine's
//! consistency check and the region finder's certification — discovery
//! proposes, verification disposes.

use crate::cfd::Cfd;
use crate::derive::{derive_from_cfd, AttrCorrespondence};
use crate::editing_rule::EditingRule;
use crate::error::Result;
use cerfix_relation::{AttrId, Relation, SchemaRef, Value};
use std::collections::HashMap;

/// A discovered single-attribute functional dependency with support
/// statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredFd {
    /// LHS attribute (in the reference relation's schema).
    pub lhs: AttrId,
    /// RHS attribute.
    pub rhs: AttrId,
    /// Number of distinct LHS values observed.
    pub distinct_keys: usize,
    /// Number of rows supporting the dependency (non-null key and value).
    pub support: usize,
}

/// Check whether `lhs → rhs` holds exactly on `relation`; returns the
/// discovery record if it does.
pub fn check_fd(relation: &Relation, lhs: AttrId, rhs: AttrId) -> Option<DiscoveredFd> {
    let mut seen: HashMap<&Value, &Value> = HashMap::new();
    let mut support = 0usize;
    for (_, t) in relation.iter() {
        let k = t.get(lhs);
        let v = t.get(rhs);
        if k.is_null() || v.is_null() {
            continue;
        }
        support += 1;
        match seen.get(k) {
            None => {
                seen.insert(k, v);
            }
            Some(existing) => {
                if *existing != v {
                    return None;
                }
            }
        }
    }
    Some(DiscoveredFd {
        lhs,
        rhs,
        distinct_keys: seen.len(),
        support,
    })
}

/// Discover every single-LHS FD `X → A` (X ≠ A) holding exactly on
/// `relation` with at least `min_distinct` distinct LHS values.
///
/// O(arity² · n) with hash grouping — ample for entity-style schemas
/// (≤ a few dozen attributes).
pub fn discover_fds(relation: &Relation, min_distinct: usize) -> Vec<DiscoveredFd> {
    let arity = relation.schema().arity();
    let mut out = Vec::new();
    for lhs in 0..arity {
        for rhs in 0..arity {
            if lhs == rhs {
                continue;
            }
            if let Some(fd) = check_fd(relation, lhs, rhs) {
                if fd.distinct_keys >= min_distinct {
                    out.push(fd);
                }
            }
        }
    }
    out
}

/// A discovered rule with its provenance.
#[derive(Debug, Clone)]
pub struct DiscoveredRule {
    /// The compiled editing rule (over the input schema).
    pub rule: EditingRule,
    /// The FD it came from (attribute ids in the *master* schema).
    pub source: DiscoveredFd,
}

/// Full pipeline: discover FDs on `master_relation`, keep those whose
/// attributes exist (by name) in `input`, and compile each into an
/// editing rule `((x, X) → (a, A), ())`.
///
/// Returns the rules in deterministic (lhs, rhs) order, named
/// `auto_<lhs>_<rhs>`.
pub fn discover_rules(
    input: &SchemaRef,
    master: &SchemaRef,
    master_relation: &Relation,
    min_distinct: usize,
) -> Result<Vec<DiscoveredRule>> {
    debug_assert_eq!(master.arity(), master_relation.schema().arity());
    let correspondence = AttrCorrespondence::by_name(input, master);
    let mut out = Vec::new();
    for fd in discover_fds(master_relation, min_distinct) {
        // Map master attrs back to input attrs by name.
        let lhs_name = master_relation.schema().attr_name(fd.lhs);
        let rhs_name = master_relation.schema().attr_name(fd.rhs);
        let (Some(input_lhs), Some(input_rhs)) = (input.attr_id(lhs_name), input.attr_id(rhs_name))
        else {
            continue; // master-only attributes cannot seed input rules
        };
        // Reuse the CFD derivation machinery: the FD is a single
        // wildcard-row CFD over the input schema.
        let cfd = Cfd::functional(
            format!("auto_{lhs_name}_{rhs_name}"),
            input,
            vec![input_lhs],
            input_rhs,
        )?;
        let rules = derive_from_cfd(&cfd, input, master, &correspondence)?;
        for rule in rules {
            out.push(DiscoveredRule {
                rule,
                source: fd.clone(),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema};

    fn reference() -> Relation {
        let s = Schema::of_strings("m", ["zip", "AC", "city", "name"]).unwrap();
        RelationBuilder::new(s)
            .row_strs(["EH8", "131", "Edi", "Ann"])
            .row_strs(["EH9", "131", "Edi", "Bob"])
            .row_strs(["SW1", "020", "Ldn", "Cat"])
            .row_strs(["NW1", "020", "Ldn", "Ann"]) // name repeats: name→* fails
            .build()
            .unwrap()
    }

    #[test]
    fn check_fd_accepts_and_rejects() {
        let rel = reference();
        // zip → city holds (zips unique).
        let fd = check_fd(&rel, 0, 2).unwrap();
        assert_eq!(fd.distinct_keys, 4);
        assert_eq!(fd.support, 4);
        // AC → city holds (131→Edi, 020→Ldn).
        assert!(check_fd(&rel, 1, 2).is_some());
        // city → zip fails (Edi has two zips).
        assert!(check_fd(&rel, 2, 0).is_none());
        // name → zip fails (Ann has two zips).
        assert!(check_fd(&rel, 3, 0).is_none());
    }

    #[test]
    fn discovery_respects_min_distinct() {
        let rel = reference();
        let all = discover_fds(&rel, 1);
        let strict = discover_fds(&rel, 3);
        assert!(all.len() > strict.len());
        // AC has 2 distinct keys: excluded at min_distinct = 3.
        assert!(all.iter().any(|fd| fd.lhs == 1 && fd.rhs == 2));
        assert!(!strict.iter().any(|fd| fd.lhs == 1));
        // zip-keyed FDs (4 distinct) survive.
        assert!(strict.iter().any(|fd| fd.lhs == 0 && fd.rhs == 2));
    }

    #[test]
    fn nulls_do_not_support_or_violate() {
        let s = Schema::of_strings("m", ["k", "v"]).unwrap();
        let mut rel = RelationBuilder::new(s.clone())
            .row_strs(["a", "1"])
            .build()
            .unwrap();
        rel.push(
            cerfix_relation::Tuple::new(s.clone(), vec![Value::str("a"), Value::Null]).unwrap(),
        )
        .unwrap();
        let fd = check_fd(&rel, 0, 1).unwrap();
        assert_eq!(fd.support, 1, "null value rows don't count");
    }

    #[test]
    fn pipeline_compiles_rules_over_input_schema() {
        // Input lacks `name`; master-only columns are skipped.
        let input = Schema::of_strings("in", ["zip", "AC", "city", "extra"]).unwrap();
        let master = reference().schema().clone();
        let rel = reference();
        let rules = discover_rules(&input, &master, &rel, 2).unwrap();
        assert!(!rules.is_empty());
        for dr in &rules {
            // Every rule is a 1-1 join on same-named attrs with empty pattern.
            assert_eq!(dr.rule.lhs().len(), 1);
            assert!(dr.rule.pattern().is_empty());
            let (t, s) = dr.rule.lhs()[0];
            assert_eq!(input.attr_name(t), master.attr_name(s));
        }
        // zip→city must be among them; name-keyed rules must not.
        assert!(rules.iter().any(|dr| {
            let (t, _) = dr.rule.lhs()[0];
            let (b, _) = dr.rule.rhs()[0];
            input.attr_name(t) == "zip" && input.attr_name(b) == "city"
        }));
        assert!(rules.iter().all(|dr| {
            let (t, _) = dr.rule.lhs()[0];
            input.attr_name(t) != "name"
        }));
    }

    #[test]
    fn discovered_rule_names_are_deterministic() {
        let input = Schema::of_strings("in", ["zip", "AC", "city"]).unwrap();
        let master = reference().schema().clone();
        let rel = reference();
        let a = discover_rules(&input, &master, &rel, 2).unwrap();
        let b = discover_rules(&input, &master, &rel, 2).unwrap();
        let names_a: Vec<&str> = a.iter().map(|d| d.rule.name()).collect();
        let names_b: Vec<&str> = b.iter().map(|d| d.rule.name()).collect();
        assert_eq!(names_a, names_b);
        assert!(names_a[0].starts_with("auto_"));
    }
}
