//! Error types for rule construction, parsing and derivation.

use std::fmt;

/// Errors raised while building, parsing, or deriving rules.
#[derive(Debug)]
pub enum RuleError {
    /// A rule referenced an attribute missing from its schema.
    Relation(cerfix_relation::RelationError),
    /// The LHS/RHS attribute lists of a rule were structurally invalid.
    InvalidRule {
        /// Rule name for diagnostics.
        rule: String,
        /// What is wrong.
        message: String,
    },
    /// Types of a matched or copied attribute pair disagree.
    TypeIncompatible {
        /// Rule name.
        rule: String,
        /// Input-side attribute name.
        input_attr: String,
        /// Master-side attribute name.
        master_attr: String,
    },
    /// The rule DSL text was malformed.
    Parse {
        /// 1-based line of the offending declaration.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A matching dependency could not be compiled into an editing rule.
    Underivable {
        /// Source constraint name.
        source: String,
        /// Why the derivation is impossible.
        message: String,
    },
    /// A rule name was already present in the rule set.
    DuplicateRule {
        /// The duplicated name.
        name: String,
    },
    /// A rule name was not found in the rule set.
    UnknownRule {
        /// The missing name.
        name: String,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Relation(e) => write!(f, "{e}"),
            RuleError::InvalidRule { rule, message } => {
                write!(f, "invalid rule `{rule}`: {message}")
            }
            RuleError::TypeIncompatible { rule, input_attr, master_attr } => write!(
                f,
                "rule `{rule}`: attribute types of `{input_attr}` and `{master_attr}` are incompatible"
            ),
            RuleError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            RuleError::Underivable { source, message } => {
                write!(f, "cannot derive editing rule from `{source}`: {message}")
            }
            RuleError::DuplicateRule { name } => write!(f, "duplicate rule name `{name}`"),
            RuleError::UnknownRule { name } => write!(f, "unknown rule `{name}`"),
        }
    }
}

impl std::error::Error for RuleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuleError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cerfix_relation::RelationError> for RuleError {
    fn from(e: cerfix_relation::RelationError) -> Self {
        RuleError::Relation(e)
    }
}

/// Result alias for rule operations.
pub type Result<T> = std::result::Result<T, RuleError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RuleError::InvalidRule {
            rule: "phi1".into(),
            message: "empty LHS".into(),
        };
        assert_eq!(e.to_string(), "invalid rule `phi1`: empty LHS");

        let e = RuleError::Parse {
            line: 7,
            message: "expected `->`".into(),
        };
        assert!(e.to_string().contains("line 7"));

        let e = RuleError::DuplicateRule {
            name: "phi1".into(),
        };
        assert!(e.to_string().contains("phi1"));
    }

    #[test]
    fn wraps_relation_errors() {
        use std::error::Error;
        let inner = cerfix_relation::RelationError::EmptySchema;
        let e = RuleError::from(inner);
        assert!(e.source().is_some());
    }
}
