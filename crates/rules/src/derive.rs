//! Deriving editing rules from CFDs and MDs.
//!
//! Paper §2 (rule engine): *"Editing rules can be either explicitly
//! specified by the users, or derived from integrity constraints, e.g.,
//! cfds and matching dependencies for which discovery algorithms are
//! already in place."* This module implements that derivation.
//!
//! CFDs are defined over the *input* schema while editing rules join input
//! tuples to *master* tuples; the bridge is an [`AttrCorrespondence`]
//! mapping input attributes to the master attributes that carry the same
//! real-world field (built by name equality by default). Soundness rests
//! on the master data satisfying the source CFDs — master data is assumed
//! "consistent and accurate" (paper §2, master data manager).

use crate::cfd::{Cfd, TableauCell};
use crate::editing_rule::EditingRule;
use crate::error::{Result, RuleError};
use crate::md::MatchingDependency;
use crate::pattern::PatternTuple;
use cerfix_relation::{AttrId, SchemaRef};
use std::collections::HashMap;

/// A mapping from input-schema attributes to the corresponding
/// master-schema attributes.
#[derive(Debug, Clone, Default)]
pub struct AttrCorrespondence {
    map: HashMap<AttrId, AttrId>,
}

impl AttrCorrespondence {
    /// Build from explicit `(input, master)` pairs.
    pub fn new(pairs: impl IntoIterator<Item = (AttrId, AttrId)>) -> AttrCorrespondence {
        AttrCorrespondence {
            map: pairs.into_iter().collect(),
        }
    }

    /// Pair up attributes that share a name in both schemas. For the
    /// paper's UK schemas this maps FN, LN, AC, str, city and zip; phn /
    /// Hphn / Mphn are deliberately unmapped (they do not correspond 1:1).
    pub fn by_name(input: &SchemaRef, master: &SchemaRef) -> AttrCorrespondence {
        let mut map = HashMap::new();
        for (id, attr) in input.iter() {
            if let Some(mid) = master.attr_id(attr.name()) {
                map.insert(id, mid);
            }
        }
        AttrCorrespondence { map }
    }

    /// Extend with an explicit pair, overriding any name-based match.
    pub fn with_pair(mut self, input: AttrId, master: AttrId) -> AttrCorrespondence {
        self.map.insert(input, master);
        self
    }

    /// The master attribute corresponding to `input_attr`, if mapped.
    pub fn master_of(&self, input_attr: AttrId) -> Option<AttrId> {
        self.map.get(&input_attr).copied()
    }

    /// Number of mapped attributes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no attributes are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Derive one editing rule per tableau row of `cfd`.
///
/// * A **variable row** `(x̄ ∥ _)` becomes
///   `((X, map(X)) → (A, map(A)), tp)` where `tp` pins the constant LHS
///   cells: if the input tuple matches a master tuple on all of `X`
///   (within the row's condition scope) and `X` is validated, copy the
///   master's `A`.
/// * A **constant row** `(x̄ ∥ b)` becomes the same join rule with the
///   full `X = x̄` pattern. Master tuples matching `x̄` carry `A = b`
///   because master data satisfies the CFD, so the derived rule assigns
///   exactly the constant the CFD dictates.
///
/// Errors if the CFD's LHS or RHS attribute has no master correspondence.
pub fn derive_from_cfd(
    cfd: &Cfd,
    input: &SchemaRef,
    master: &SchemaRef,
    correspondence: &AttrCorrespondence,
) -> Result<Vec<EditingRule>> {
    let map_attr = |a: AttrId| -> Result<AttrId> {
        correspondence
            .master_of(a)
            .ok_or_else(|| RuleError::Underivable {
                source: cfd.name().to_string(),
                message: format!(
                    "input attribute `{}` has no corresponding master attribute",
                    input.attr_name(a)
                ),
            })
    };
    let master_rhs = map_attr(cfd.rhs())?;
    let master_lhs: Vec<AttrId> = cfd
        .lhs()
        .iter()
        .map(|&a| map_attr(a))
        .collect::<Result<_>>()?;

    let mut rules = Vec::with_capacity(cfd.tableau().len());
    for (i, row) in cfd.tableau().iter().enumerate() {
        let mut pattern = PatternTuple::empty();
        for (&attr, cell) in cfd.lhs().iter().zip(row.lhs.iter()) {
            if let TableauCell::Const(c) = cell {
                pattern = pattern.with_eq(attr, c.clone());
            }
        }
        let lhs: Vec<(AttrId, AttrId)> = cfd
            .lhs()
            .iter()
            .copied()
            .zip(master_lhs.iter().copied())
            .collect();
        let rule = EditingRule::new(
            format!("{}#{}", cfd.name(), i),
            input,
            master,
            lhs,
            vec![(cfd.rhs(), master_rhs)],
            pattern,
        )?;
        rules.push(rule);
    }
    Ok(rules)
}

/// Compile an exact MD into an editing rule.
///
/// The MD's equality clauses become the rule's LHS join and its identified
/// pairs become the RHS fixes (master side wins: an MD across input and
/// *authoritative* master data resolves identification in the master's
/// favor, which is exactly the editing-rule reading the paper's rule
/// manager uses). Non-exact operators are rejected: similarity joins are
/// not certain evidence.
pub fn derive_from_md(
    md: &MatchingDependency,
    input: &SchemaRef,
    master: &SchemaRef,
) -> Result<EditingRule> {
    if !md.is_exact() {
        return Err(RuleError::Underivable {
            source: md.name().to_string(),
            message: "MD uses similarity operators; only exact (==) MDs compile to editing rules"
                .into(),
        });
    }
    let lhs: Vec<(AttrId, AttrId)> = md.lhs().iter().map(|c| (c.left, c.right)).collect();
    let rhs: Vec<(AttrId, AttrId)> = md.rhs().to_vec();
    EditingRule::new(
        format!("{}!er", md.name()),
        input,
        master,
        lhs,
        rhs,
        PatternTuple::empty(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfd::TableauRow;
    use crate::md::MdClause;
    use crate::similarity::SimilarityOp;
    use cerfix_relation::{Schema, Tuple, Value};

    fn schemas() -> (SchemaRef, SchemaRef) {
        (
            Schema::of_strings("customer", ["FN", "AC", "phn", "city", "zip"]).unwrap(),
            Schema::of_strings("master", ["FN", "AC", "Mphn", "city", "zip", "DoB"]).unwrap(),
        )
    }

    #[test]
    fn by_name_correspondence() {
        let (input, master) = schemas();
        let c = AttrCorrespondence::by_name(&input, &master);
        assert_eq!(
            c.master_of(input.attr_id("zip").unwrap()),
            Some(master.attr_id("zip").unwrap())
        );
        assert_eq!(
            c.master_of(input.attr_id("phn").unwrap()),
            None,
            "phn ≠ Mphn by name"
        );
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn explicit_pairs_override() {
        let (input, master) = schemas();
        let c = AttrCorrespondence::by_name(&input, &master).with_pair(
            input.attr_id("phn").unwrap(),
            master.attr_id("Mphn").unwrap(),
        );
        assert_eq!(
            c.master_of(input.attr_id("phn").unwrap()),
            Some(master.attr_id("Mphn").unwrap())
        );
    }

    #[test]
    fn variable_cfd_derives_join_rule() {
        // zip → city (plain FD) ⇒ eR: ((zip, zip) → (city, city), ()) — the
        // paper's φ3 recovered from a CFD.
        let (input, master) = schemas();
        let fd = Cfd::functional(
            "fd1",
            &input,
            vec![input.attr_id("zip").unwrap()],
            input.attr_id("city").unwrap(),
        )
        .unwrap();
        let c = AttrCorrespondence::by_name(&input, &master);
        let rules = derive_from_cfd(&fd, &input, &master, &c).unwrap();
        assert_eq!(rules.len(), 1);
        let r = &rules[0];
        assert_eq!(r.input_lhs(), vec![input.attr_id("zip").unwrap()]);
        assert_eq!(r.master_lhs(), vec![master.attr_id("zip").unwrap()]);
        assert_eq!(r.input_rhs(), vec![input.attr_id("city").unwrap()]);
        assert!(r.pattern().is_empty());
    }

    #[test]
    fn constant_cfd_rows_become_patterned_rules() {
        // ψ1/ψ2 as a two-row CFD ⇒ two rules, each pinning AC.
        let (input, master) = schemas();
        let ac = input.attr_id("AC").unwrap();
        let city = input.attr_id("city").unwrap();
        let cfd = Cfd::new(
            "psi",
            &input,
            vec![ac],
            city,
            vec![
                TableauRow {
                    lhs: vec![TableauCell::Const(Value::str("020"))],
                    rhs: TableauCell::Const(Value::str("Ldn")),
                },
                TableauRow {
                    lhs: vec![TableauCell::Const(Value::str("131"))],
                    rhs: TableauCell::Const(Value::str("Edi")),
                },
            ],
        )
        .unwrap();
        let c = AttrCorrespondence::by_name(&input, &master);
        let rules = derive_from_cfd(&cfd, &input, &master, &c).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name(), "psi#0");
        // Row 0's pattern requires AC = 020.
        let t020 = Tuple::of_strings(input.clone(), ["f", "020", "p", "c", "z"]).unwrap();
        let t131 = Tuple::of_strings(input.clone(), ["f", "131", "p", "c", "z"]).unwrap();
        assert!(rules[0].pattern().matches(&t020));
        assert!(!rules[0].pattern().matches(&t131));
        assert!(rules[1].pattern().matches(&t131));
    }

    #[test]
    fn unmapped_attribute_fails_derivation() {
        let (input, master) = schemas();
        let fd = Cfd::functional(
            "fd_phone",
            &input,
            vec![input.attr_id("phn").unwrap()],
            input.attr_id("city").unwrap(),
        )
        .unwrap();
        let c = AttrCorrespondence::by_name(&input, &master);
        let err = derive_from_cfd(&fd, &input, &master, &c).unwrap_err();
        assert!(matches!(err, RuleError::Underivable { .. }));
        assert!(err.to_string().contains("phn"));
    }

    #[test]
    fn exact_md_compiles() {
        // customer[phn] == master[Mphn] → FN ⇌ FN: the MD behind φ4.
        let (input, master) = schemas();
        let md = MatchingDependency::new(
            "m1",
            &input,
            &master,
            vec![MdClause {
                left: input.attr_id("phn").unwrap(),
                right: master.attr_id("Mphn").unwrap(),
                op: SimilarityOp::Exact,
            }],
            vec![(input.attr_id("FN").unwrap(), master.attr_id("FN").unwrap())],
        )
        .unwrap();
        let r = derive_from_md(&md, &input, &master).unwrap();
        assert_eq!(r.name(), "m1!er");
        assert_eq!(r.input_lhs(), vec![input.attr_id("phn").unwrap()]);
        assert_eq!(r.master_lhs(), vec![master.attr_id("Mphn").unwrap()]);
        assert_eq!(r.input_rhs(), vec![input.attr_id("FN").unwrap()]);
    }

    #[test]
    fn similarity_md_rejected() {
        let (input, master) = schemas();
        let md = MatchingDependency::new(
            "m2",
            &input,
            &master,
            vec![MdClause {
                left: input.attr_id("FN").unwrap(),
                right: master.attr_id("FN").unwrap(),
                op: SimilarityOp::Abbreviation,
            }],
            vec![(
                input.attr_id("city").unwrap(),
                master.attr_id("city").unwrap(),
            )],
        )
        .unwrap();
        let err = derive_from_md(&md, &input, &master).unwrap_err();
        assert!(matches!(err, RuleError::Underivable { .. }));
    }

    #[test]
    fn derived_rule_semantics_against_master_tuple() {
        // End-to-end: the rule derived from zip→city matches Example 2's pair.
        let (input, master) = schemas();
        let fd = Cfd::functional(
            "fd1",
            &input,
            vec![input.attr_id("zip").unwrap()],
            input.attr_id("city").unwrap(),
        )
        .unwrap();
        let c = AttrCorrespondence::by_name(&input, &master);
        let r = derive_from_cfd(&fd, &input, &master, &c).unwrap().remove(0);
        let t = Tuple::of_strings(input.clone(), ["Bob", "020", "079", "Edi", "EH8 4AH"]).unwrap();
        let s = Tuple::of_strings(
            master.clone(),
            ["Robert", "131", "079", "Edi", "EH8 4AH", "11/11/55"],
        )
        .unwrap();
        assert!(r.matches_pair(&t, &s));
    }
}
