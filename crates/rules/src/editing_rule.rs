//! Editing rules — the paper's central formalism.
//!
//! An editing rule `φ: ((X, Xm) → (B, Bm), tp[Xp])` relates an *input*
//! schema `R` and a *master* schema `Rm` (Example 2 of the paper):
//! for an input tuple `t` and master tuple `s`, if `t[X] = s[Xm]`,
//! `t[Xp]` matches the pattern `tp`, and `t[X ∪ Xp]` is validated,
//! then `t[B] := s[Bm]` and `B` becomes validated.
//!
//! Rules are *structural* objects here; their application semantics (the
//! certain-fix requirement that all matching master tuples agree) lives in
//! `cerfix::engine`.

use crate::error::{Result, RuleError};
use crate::pattern::PatternTuple;
use cerfix_relation::{AttrId, SchemaRef, Tuple};
use std::collections::BTreeSet;
use std::fmt;

/// A pair of attribute ids: `(input-schema attr, master-schema attr)`.
pub type AttrPair = (AttrId, AttrId);

/// An editing rule over a fixed `(input, master)` schema pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditingRule {
    name: String,
    /// `X` / `Xm`: `t[X] = s[Xm]` match condition, position-wise.
    lhs: Vec<AttrPair>,
    /// `B` / `Bm`: the cells updated, `t[B] := s[Bm]` position-wise.
    rhs: Vec<AttrPair>,
    /// `tp[Xp]`: pattern over the *input* tuple.
    pattern: PatternTuple,
}

impl EditingRule {
    /// Build and validate an editing rule.
    ///
    /// Validation (against the schema pair):
    /// * LHS and RHS must be non-empty and reference in-range attributes;
    /// * matched and copied attribute pairs must have identical types;
    /// * RHS input attributes must be disjoint from `X ∪ Xp` (a rule may
    ///   not overwrite its own evidence) and duplicate-free;
    /// * pattern attributes must be in range.
    pub fn new(
        name: impl Into<String>,
        input: &SchemaRef,
        master: &SchemaRef,
        lhs: impl Into<Vec<AttrPair>>,
        rhs: impl Into<Vec<AttrPair>>,
        pattern: PatternTuple,
    ) -> Result<EditingRule> {
        let name = name.into();
        let lhs: Vec<AttrPair> = lhs.into();
        let rhs: Vec<AttrPair> = rhs.into();
        if lhs.is_empty() {
            return Err(RuleError::InvalidRule {
                rule: name,
                message: "LHS (match condition) must not be empty".into(),
            });
        }
        if rhs.is_empty() {
            return Err(RuleError::InvalidRule {
                rule: name,
                message: "RHS (fix targets) must not be empty".into(),
            });
        }
        let check_pair = |pair: &AttrPair, role: &str| -> Result<()> {
            let (ti, si) = *pair;
            let t_attr = input.attribute(ti).ok_or_else(|| RuleError::InvalidRule {
                rule: name.clone(),
                message: format!("{role} input attribute id {ti} out of range"),
            })?;
            let s_attr = master.attribute(si).ok_or_else(|| RuleError::InvalidRule {
                rule: name.clone(),
                message: format!("{role} master attribute id {si} out of range"),
            })?;
            if t_attr.data_type() != s_attr.data_type() {
                return Err(RuleError::TypeIncompatible {
                    rule: name.clone(),
                    input_attr: t_attr.name().into(),
                    master_attr: s_attr.name().into(),
                });
            }
            Ok(())
        };
        for pair in &lhs {
            check_pair(pair, "LHS")?;
        }
        for pair in &rhs {
            check_pair(pair, "RHS")?;
        }
        for attr in pattern.attrs() {
            if input.attribute(attr).is_none() {
                return Err(RuleError::InvalidRule {
                    rule: name,
                    message: format!("pattern attribute id {attr} out of range"),
                });
            }
        }
        let evidence: BTreeSet<AttrId> =
            lhs.iter().map(|&(t, _)| t).chain(pattern.attrs()).collect();
        let mut rhs_seen = BTreeSet::new();
        for &(t, _) in &rhs {
            if evidence.contains(&t) {
                return Err(RuleError::InvalidRule {
                    rule: name,
                    message: format!(
                        "RHS attribute `{}` overlaps the rule's own evidence (X ∪ Xp)",
                        input.attr_name(t)
                    ),
                });
            }
            if !rhs_seen.insert(t) {
                return Err(RuleError::InvalidRule {
                    rule: name,
                    message: format!("RHS attribute `{}` listed twice", input.attr_name(t)),
                });
            }
        }
        Ok(EditingRule {
            name,
            lhs,
            rhs,
            pattern,
        })
    }

    /// The rule's name (`φ1` … in the paper).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The match condition pairs `(X, Xm)`.
    pub fn lhs(&self) -> &[AttrPair] {
        &self.lhs
    }

    /// The fix pairs `(B, Bm)`.
    pub fn rhs(&self) -> &[AttrPair] {
        &self.rhs
    }

    /// The pattern tuple `tp[Xp]`.
    pub fn pattern(&self) -> &PatternTuple {
        &self.pattern
    }

    /// Input-side LHS attributes `X`, in rule order.
    pub fn input_lhs(&self) -> Vec<AttrId> {
        self.lhs.iter().map(|&(t, _)| t).collect()
    }

    /// Master-side LHS attributes `Xm`, in rule order.
    pub fn master_lhs(&self) -> Vec<AttrId> {
        self.lhs.iter().map(|&(_, s)| s).collect()
    }

    /// Input-side RHS attributes `B`.
    pub fn input_rhs(&self) -> Vec<AttrId> {
        self.rhs.iter().map(|&(t, _)| t).collect()
    }

    /// Master-side RHS attributes `Bm`.
    pub fn master_rhs(&self) -> Vec<AttrId> {
        self.rhs.iter().map(|&(_, s)| s).collect()
    }

    /// The *evidence set* `X ∪ Xp`: every input attribute that must be
    /// validated before this rule may fire.
    pub fn evidence_attrs(&self) -> BTreeSet<AttrId> {
        self.lhs
            .iter()
            .map(|&(t, _)| t)
            .chain(self.pattern.attrs())
            .collect()
    }

    /// True iff `t[X] = s[Xm]` (nulls never match) and `t` satisfies the
    /// pattern. This is the per-master-tuple applicability test; the
    /// validation precondition is the engine's concern.
    pub fn matches_pair(&self, t: &Tuple, s: &Tuple) -> bool {
        self.pattern.matches(t)
            && self
                .lhs
                .iter()
                .all(|&(ti, si)| t.get(ti).matches(s.get(si)))
    }

    /// Render the rule in the paper's notation using schema names.
    pub fn render(&self, input: &SchemaRef, master: &SchemaRef) -> String {
        let fmt_pairs = |pairs: &[AttrPair]| -> String {
            let xs: Vec<&str> = pairs.iter().map(|&(t, _)| input.attr_name(t)).collect();
            let ys: Vec<&str> = pairs.iter().map(|&(_, s)| master.attr_name(s)).collect();
            format!("(({}), ({}))", xs.join(", "), ys.join(", "))
        };
        format!(
            "{}: {} -> {}, tp = {}",
            self.name,
            fmt_pairs(&self.lhs),
            fmt_pairs(&self.rhs),
            self.pattern.render(input)
        )
    }
}

impl fmt::Display for EditingRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(|X|={}, |B|={})",
            self.name,
            self.lhs.len(),
            self.rhs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{Schema, Value};

    fn schemas() -> (SchemaRef, SchemaRef) {
        let input = Schema::of_strings(
            "customer",
            [
                "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let master = Schema::of_strings(
            "master",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender",
            ],
        )
        .unwrap();
        (input, master)
    }

    /// The paper's rule φ1: ((zip, zip) → (AC, AC), tp1 = ()).
    fn phi1(input: &SchemaRef, master: &SchemaRef) -> EditingRule {
        let zip_t = input.attr_id("zip").unwrap();
        let zip_s = master.attr_id("zip").unwrap();
        let ac_t = input.attr_id("AC").unwrap();
        let ac_s = master.attr_id("AC").unwrap();
        EditingRule::new(
            "phi1",
            input,
            master,
            vec![(zip_t, zip_s)],
            vec![(ac_t, ac_s)],
            PatternTuple::empty(),
        )
        .unwrap()
    }

    #[test]
    fn phi1_shape() {
        let (input, master) = schemas();
        let r = phi1(&input, &master);
        assert_eq!(r.input_lhs(), vec![input.attr_id("zip").unwrap()]);
        assert_eq!(r.master_lhs(), vec![master.attr_id("zip").unwrap()]);
        assert_eq!(r.input_rhs(), vec![input.attr_id("AC").unwrap()]);
        assert_eq!(r.evidence_attrs().len(), 1);
        assert_eq!(
            r.render(&input, &master),
            "phi1: ((zip), (zip)) -> ((AC), (AC)), tp = ()"
        );
    }

    #[test]
    fn matches_pair_example2() {
        // Example 2: t and s share zip EH8 4AH, so φ1 matches the pair.
        let (input, master) = schemas();
        let r = phi1(&input, &master);
        let t = Tuple::of_strings(
            input.clone(),
            [
                "Bob",
                "Brady",
                "020",
                "079172485",
                "2",
                "501 Elm St",
                "Edi",
                "EH8 4AH",
                "CD",
            ],
        )
        .unwrap();
        let s = Tuple::of_strings(
            master.clone(),
            [
                "Robert",
                "Brady",
                "131",
                "6884563",
                "079172485",
                "501 Elm St",
                "Edi",
                "EH8 4AH",
                "11/11/55",
                "M",
            ],
        )
        .unwrap();
        assert!(r.matches_pair(&t, &s));
        let mut t2 = t.clone();
        t2.set_by_name("zip", Value::str("XX1 1XX")).unwrap();
        assert!(!r.matches_pair(&t2, &s));
    }

    #[test]
    fn pattern_gates_match() {
        // φ4-style rule: phn ↔ Mphn with pattern type = 2.
        let (input, master) = schemas();
        let r = EditingRule::new(
            "phi4",
            &input,
            &master,
            vec![(
                input.attr_id("phn").unwrap(),
                master.attr_id("Mphn").unwrap(),
            )],
            vec![(input.attr_id("FN").unwrap(), master.attr_id("FN").unwrap())],
            PatternTuple::empty().with_eq(input.attr_id("type").unwrap(), Value::str("2")),
        )
        .unwrap();
        let t_mobile = Tuple::of_strings(
            input.clone(),
            [
                "M.",
                "Smith",
                "131",
                "079172485",
                "2",
                "x",
                "Edi",
                "EH8",
                "CD",
            ],
        )
        .unwrap();
        let t_home = Tuple::of_strings(
            input.clone(),
            [
                "M.",
                "Smith",
                "131",
                "079172485",
                "1",
                "x",
                "Edi",
                "EH8",
                "CD",
            ],
        )
        .unwrap();
        let s = Tuple::of_strings(
            master.clone(),
            [
                "Mark",
                "Smith",
                "131",
                "5550000",
                "079172485",
                "y",
                "Edi",
                "EH8",
                "1/1/70",
                "M",
            ],
        )
        .unwrap();
        assert!(r.matches_pair(&t_mobile, &s));
        assert!(!r.matches_pair(&t_home, &s), "pattern type=2 must gate");
        // Evidence includes both the LHS attribute and the pattern attribute.
        let ev = r.evidence_attrs();
        assert!(ev.contains(&input.attr_id("phn").unwrap()));
        assert!(ev.contains(&input.attr_id("type").unwrap()));
    }

    #[test]
    fn multi_attribute_lhs() {
        // φ6-style: (AC, phn) ↔ (AC, Hphn), pattern type = 1.
        let (input, master) = schemas();
        let r = EditingRule::new(
            "phi6",
            &input,
            &master,
            vec![
                (input.attr_id("AC").unwrap(), master.attr_id("AC").unwrap()),
                (
                    input.attr_id("phn").unwrap(),
                    master.attr_id("Hphn").unwrap(),
                ),
            ],
            vec![(
                input.attr_id("str").unwrap(),
                master.attr_id("str").unwrap(),
            )],
            PatternTuple::empty().with_eq(input.attr_id("type").unwrap(), Value::str("1")),
        )
        .unwrap();
        assert_eq!(r.lhs().len(), 2);
        assert_eq!(r.evidence_attrs().len(), 3);
    }

    #[test]
    fn rejects_empty_sides() {
        let (input, master) = schemas();
        let zip = (
            input.attr_id("zip").unwrap(),
            master.attr_id("zip").unwrap(),
        );
        let ac = (input.attr_id("AC").unwrap(), master.attr_id("AC").unwrap());
        assert!(matches!(
            EditingRule::new(
                "e",
                &input,
                &master,
                vec![],
                vec![ac],
                PatternTuple::empty()
            ),
            Err(RuleError::InvalidRule { .. })
        ));
        assert!(matches!(
            EditingRule::new(
                "e",
                &input,
                &master,
                vec![zip],
                vec![],
                PatternTuple::empty()
            ),
            Err(RuleError::InvalidRule { .. })
        ));
    }

    #[test]
    fn rejects_rhs_overlapping_evidence() {
        let (input, master) = schemas();
        let zip = (
            input.attr_id("zip").unwrap(),
            master.attr_id("zip").unwrap(),
        );
        // RHS = zip while LHS = zip: would overwrite its own evidence.
        let err = EditingRule::new(
            "bad",
            &input,
            &master,
            vec![zip],
            vec![zip],
            PatternTuple::empty(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("evidence"));
        // RHS overlapping a pattern attribute is equally rejected.
        let ty = input.attr_id("type").unwrap();
        let err = EditingRule::new(
            "bad2",
            &input,
            &master,
            vec![zip],
            vec![(ty, master.attr_id("gender").unwrap())],
            PatternTuple::empty().with_eq(ty, Value::str("1")),
        )
        .unwrap_err();
        assert!(err.to_string().contains("evidence"));
    }

    #[test]
    fn rejects_duplicate_rhs() {
        let (input, master) = schemas();
        let zip = (
            input.attr_id("zip").unwrap(),
            master.attr_id("zip").unwrap(),
        );
        let ac = (input.attr_id("AC").unwrap(), master.attr_id("AC").unwrap());
        let err = EditingRule::new(
            "dup",
            &input,
            &master,
            vec![zip],
            vec![ac, ac],
            PatternTuple::empty(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn rejects_out_of_range_and_type_mismatch() {
        let (input, master) = schemas();
        let zip = (
            input.attr_id("zip").unwrap(),
            master.attr_id("zip").unwrap(),
        );
        assert!(EditingRule::new(
            "r",
            &input,
            &master,
            vec![(99, 0)],
            vec![zip],
            PatternTuple::empty()
        )
        .is_err());
        assert!(EditingRule::new(
            "r",
            &input,
            &master,
            vec![zip],
            vec![(0, 99)],
            PatternTuple::empty()
        )
        .is_err());

        let typed_in = Schema::new(
            "i",
            [
                ("a", cerfix_relation::DataType::Int),
                ("b", cerfix_relation::DataType::String),
            ],
        )
        .unwrap();
        let typed_m = Schema::new(
            "m",
            [
                ("a", cerfix_relation::DataType::String),
                ("b", cerfix_relation::DataType::String),
            ],
        )
        .unwrap();
        let err = EditingRule::new(
            "r",
            &typed_in,
            &typed_m,
            vec![(0, 0)],
            vec![(1, 1)],
            PatternTuple::empty(),
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::TypeIncompatible { .. }));
    }

    #[test]
    fn multi_rhs_rule() {
        // A combined φ1+φ2+φ3-style rule: zip fixes AC, str and city at once.
        let (input, master) = schemas();
        let r = EditingRule::new(
            "phi123",
            &input,
            &master,
            vec![(
                input.attr_id("zip").unwrap(),
                master.attr_id("zip").unwrap(),
            )],
            vec![
                (input.attr_id("AC").unwrap(), master.attr_id("AC").unwrap()),
                (
                    input.attr_id("str").unwrap(),
                    master.attr_id("str").unwrap(),
                ),
                (
                    input.attr_id("city").unwrap(),
                    master.attr_id("city").unwrap(),
                ),
            ],
            PatternTuple::empty(),
        )
        .unwrap();
        assert_eq!(r.input_rhs().len(), 3);
        assert_eq!(r.master_rhs().len(), 3);
    }

    #[test]
    fn null_lhs_never_matches() {
        let (input, master) = schemas();
        let r = phi1(&input, &master);
        let t = Tuple::all_null(input.clone());
        let s = Tuple::all_null(master.clone());
        assert!(!r.matches_pair(&t, &s));
    }
}
