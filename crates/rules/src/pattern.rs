//! The pattern language of editing rules and pattern tableaux.
//!
//! The demo's rules carry *pattern tuples* restricting when a rule applies:
//! φ4/φ5 require `type = 2` (mobile phone), φ6–φ8 require `type = 1`, and
//! φ9 requires `AC ≠ 0800` (edited via a pop-up in Fig. 2). A pattern cell
//! is one of: wildcard, equality with a constant, or inequality with a set
//! of constants.
//!
//! The same language underlies certain-region tableaux and the consistency
//! checker, which must decide satisfiability of conjunctions of cells —
//! [`ConstraintSet`] implements that decision procedure exactly.

use cerfix_relation::{AttrId, DataType, SchemaRef, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A single-attribute pattern operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternOp {
    /// Matches any non-null value (`_` in the DSL).
    Any,
    /// Matches exactly this constant.
    Eq(Value),
    /// Matches any non-null value distinct from *all* of these constants
    /// (`≠ 0800` in the paper; the set form closes the language under
    /// conjunction).
    Ne(Vec<Value>),
}

impl PatternOp {
    /// Evaluate against a cell value. Null never matches any pattern —
    /// pattern evidence must be known.
    pub fn matches(&self, value: &Value) -> bool {
        if value.is_null() {
            return false;
        }
        match self {
            PatternOp::Any => true,
            PatternOp::Eq(c) => value == c,
            PatternOp::Ne(cs) => cs.iter().all(|c| value != c),
        }
    }

    /// Normalize: deduplicate and sort `Ne` constant lists so structurally
    /// equal patterns compare equal.
    pub fn normalize(self) -> PatternOp {
        match self {
            PatternOp::Ne(cs) => {
                let set: BTreeSet<Value> = cs.into_iter().collect();
                PatternOp::Ne(set.into_iter().collect())
            }
            other => other,
        }
    }
}

impl fmt::Display for PatternOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternOp::Any => f.write_str("_"),
            PatternOp::Eq(v) => write!(f, "= '{v}'"),
            PatternOp::Ne(vs) => {
                f.write_str("!=")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, " '{v}'")?;
                }
                Ok(())
            }
        }
    }
}

/// One constrained attribute within a pattern tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternCell {
    /// The constrained attribute (id in the *input* schema).
    pub attr: AttrId,
    /// The constraint.
    pub op: PatternOp,
}

/// A pattern tuple `tp[Xp]`: a conjunction of per-attribute constraints.
///
/// The empty pattern (paper notation `tp1 = ()`) matches every tuple.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PatternTuple {
    cells: Vec<PatternCell>,
}

impl PatternTuple {
    /// The empty pattern, which matches every tuple.
    pub fn empty() -> PatternTuple {
        PatternTuple { cells: Vec::new() }
    }

    /// Build from cells; merges duplicate attributes by conjunction when
    /// possible (two `Eq` on the same attribute with different constants is
    /// kept as-is and will simply never match).
    pub fn new(cells: impl Into<Vec<PatternCell>>) -> PatternTuple {
        let cells = cells
            .into()
            .into_iter()
            .map(|c| PatternCell {
                attr: c.attr,
                op: c.op.normalize(),
            })
            .collect();
        PatternTuple { cells }
    }

    /// Add an equality constraint.
    pub fn with_eq(mut self, attr: AttrId, value: Value) -> PatternTuple {
        self.cells.push(PatternCell {
            attr,
            op: PatternOp::Eq(value),
        });
        self
    }

    /// Add an inequality constraint.
    pub fn with_ne(mut self, attr: AttrId, value: Value) -> PatternTuple {
        self.cells.push(PatternCell {
            attr,
            op: PatternOp::Ne(vec![value]),
        });
        self
    }

    /// The constrained cells.
    pub fn cells(&self) -> &[PatternCell] {
        &self.cells
    }

    /// True iff the pattern has no constraints.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Attributes constrained by this pattern (may contain repeats if the
    /// pattern was built with repeated attributes).
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.cells.iter().map(|c| c.attr)
    }

    /// Distinct constrained attributes, sorted.
    pub fn distinct_attrs(&self) -> Vec<AttrId> {
        let set: BTreeSet<AttrId> = self.cells.iter().map(|c| c.attr).collect();
        set.into_iter().collect()
    }

    /// Evaluate the conjunction against `tuple`.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.cells.iter().all(|c| c.op.matches(tuple.get(c.attr)))
    }

    /// Render with attribute names from `schema`.
    pub fn render(&self, schema: &SchemaRef) -> String {
        if self.cells.is_empty() {
            return "()".to_string();
        }
        let parts: Vec<String> = self
            .cells
            .iter()
            .map(|c| format!("{} {}", schema.attr_name(c.attr), c.op))
            .collect();
        format!("({})", parts.join(", "))
    }
}

/// A conjunction of `= c` / `≠ c` constraints over a *single* attribute,
/// with an exact satisfiability test.
///
/// Used by the consistency checker: two editing rules conflict only if the
/// combined constraints they impose on a hypothetical input tuple are
/// satisfiable. Equality constraints also arise from master-tuple joins
/// (`t[X] = s[Xm]` forces `t[A] = constant` for a concrete `s`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    /// The single permitted value, when an equality constraint is present.
    eq: Option<Value>,
    /// Values the attribute must avoid.
    ne: BTreeSet<Value>,
    /// Set when two distinct equality constraints collided.
    contradictory: bool,
}

impl ConstraintSet {
    /// An unconstrained attribute.
    pub fn unconstrained() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Conjoin `attr = value`.
    pub fn add_eq(&mut self, value: Value) {
        match &self.eq {
            Some(existing) if *existing != value => self.contradictory = true,
            _ => self.eq = Some(value),
        }
    }

    /// Conjoin `attr ≠ value`.
    pub fn add_ne(&mut self, value: Value) {
        self.ne.insert(value);
    }

    /// Conjoin a whole pattern op.
    pub fn add_op(&mut self, op: &PatternOp) {
        match op {
            PatternOp::Any => {}
            PatternOp::Eq(v) => self.add_eq(v.clone()),
            PatternOp::Ne(vs) => {
                for v in vs {
                    self.add_ne(v.clone());
                }
            }
        }
    }

    /// The pinned value, if an equality constraint is present.
    pub fn pinned(&self) -> Option<&Value> {
        self.eq.as_ref()
    }

    /// Exact satisfiability over the attribute's type.
    ///
    /// * Contradictory equalities → unsat.
    /// * `= c` with `c ∈ ne` → unsat.
    /// * Only inequalities: satisfiable unless the type's domain is finite
    ///   and fully excluded (`bool` with both values excluded). String,
    ///   int and float domains are effectively infinite here.
    pub fn is_satisfiable(&self, dtype: DataType) -> bool {
        if self.contradictory {
            return false;
        }
        if let Some(v) = &self.eq {
            return !self.ne.contains(v);
        }
        match dtype {
            DataType::Bool => {
                !(self.ne.contains(&Value::Bool(true)) && self.ne.contains(&Value::Bool(false)))
            }
            _ => true,
        }
    }

    /// A witness value satisfying the constraints, when one exists.
    /// Used to materialize counterexample tuples in consistency reports.
    pub fn witness(&self, dtype: DataType) -> Option<Value> {
        if !self.is_satisfiable(dtype) {
            return None;
        }
        if let Some(v) = &self.eq {
            return Some(v.clone());
        }
        match dtype {
            DataType::Bool => [Value::Bool(true), Value::Bool(false)]
                .into_iter()
                .find(|v| !self.ne.contains(v)),
            DataType::Int => (0..).map(Value::int).find(|v| !self.ne.contains(v)),
            DataType::Float => (0..)
                .map(|i| Value::float(i as f64))
                .find(|v| !self.ne.contains(v)),
            DataType::String => (0..)
                .map(|i| Value::str(format!("w{i}")))
                .find(|v| !self.ne.contains(v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Schema;

    fn customer() -> SchemaRef {
        Schema::of_strings("customer", ["AC", "type", "city"]).unwrap()
    }

    fn tuple(ac: &str, ty: &str, city: &str) -> Tuple {
        Tuple::of_strings(customer(), [ac, ty, city]).unwrap()
    }

    #[test]
    fn ops_match_semantics() {
        assert!(PatternOp::Any.matches(&Value::str("x")));
        assert!(!PatternOp::Any.matches(&Value::Null));
        assert!(PatternOp::Eq(Value::str("2")).matches(&Value::str("2")));
        assert!(!PatternOp::Eq(Value::str("2")).matches(&Value::str("1")));
        let ne = PatternOp::Ne(vec![Value::str("0800")]);
        assert!(ne.matches(&Value::str("131")));
        assert!(!ne.matches(&Value::str("0800")));
        assert!(!ne.matches(&Value::Null));
    }

    #[test]
    fn empty_pattern_matches_everything_non_trivially() {
        let p = PatternTuple::empty();
        assert!(p.matches(&tuple("020", "1", "Ldn")));
        assert!(p.is_empty());
        assert_eq!(p.render(&customer()), "()");
    }

    #[test]
    fn paper_patterns() {
        let s = customer();
        let ty = s.attr_id("type").unwrap();
        let ac = s.attr_id("AC").unwrap();
        // φ4/φ5 pattern: type = 2
        let mobile = PatternTuple::empty().with_eq(ty, Value::str("2"));
        assert!(mobile.matches(&tuple("131", "2", "Edi")));
        assert!(!mobile.matches(&tuple("131", "1", "Edi")));
        // φ9 pattern: AC != 0800
        let geo = PatternTuple::empty().with_ne(ac, Value::str("0800"));
        assert!(geo.matches(&tuple("131", "2", "Edi")));
        assert!(!geo.matches(&tuple("0800", "2", "Edi")));
        assert_eq!(geo.render(&s), "(AC != '0800')");
    }

    #[test]
    fn conjunction_of_cells() {
        let s = customer();
        let p = PatternTuple::empty()
            .with_eq(s.attr_id("type").unwrap(), Value::str("1"))
            .with_ne(s.attr_id("AC").unwrap(), Value::str("0800"));
        assert!(p.matches(&tuple("131", "1", "Edi")));
        assert!(!p.matches(&tuple("0800", "1", "Edi")));
        assert!(!p.matches(&tuple("131", "2", "Edi")));
        assert_eq!(p.distinct_attrs(), vec![0, 1]);
    }

    #[test]
    fn null_cell_fails_pattern() {
        let s = customer();
        let mut t = tuple("131", "1", "Edi");
        t.set_by_name("type", Value::Null).unwrap();
        let p = PatternTuple::empty().with_eq(s.attr_id("type").unwrap(), Value::str("1"));
        assert!(!p.matches(&t));
        // Even a Ne pattern requires known evidence.
        let p2 = PatternTuple::empty().with_ne(s.attr_id("type").unwrap(), Value::str("9"));
        assert!(!p2.matches(&t));
    }

    #[test]
    fn normalize_dedups_ne() {
        let op = PatternOp::Ne(vec![Value::str("b"), Value::str("a"), Value::str("b")]);
        assert_eq!(
            op.normalize(),
            PatternOp::Ne(vec![Value::str("a"), Value::str("b")])
        );
    }

    #[test]
    fn constraints_eq_eq_conflict() {
        let mut c = ConstraintSet::unconstrained();
        c.add_eq(Value::str("020"));
        assert!(c.is_satisfiable(DataType::String));
        c.add_eq(Value::str("131"));
        assert!(!c.is_satisfiable(DataType::String));
        assert_eq!(c.witness(DataType::String), None);
    }

    #[test]
    fn constraints_eq_ne_conflict() {
        let mut c = ConstraintSet::unconstrained();
        c.add_eq(Value::str("0800"));
        c.add_ne(Value::str("0800"));
        assert!(!c.is_satisfiable(DataType::String));
    }

    #[test]
    fn constraints_ne_only_satisfiable() {
        let mut c = ConstraintSet::unconstrained();
        c.add_ne(Value::str("a"));
        c.add_ne(Value::str("w0"));
        assert!(c.is_satisfiable(DataType::String));
        let w = c.witness(DataType::String).unwrap();
        assert_ne!(w, Value::str("a"));
        assert_ne!(w, Value::str("w0"));
    }

    #[test]
    fn bool_domain_is_finite() {
        let mut c = ConstraintSet::unconstrained();
        c.add_ne(Value::Bool(true));
        assert!(c.is_satisfiable(DataType::Bool));
        assert_eq!(c.witness(DataType::Bool), Some(Value::Bool(false)));
        c.add_ne(Value::Bool(false));
        assert!(!c.is_satisfiable(DataType::Bool));
    }

    #[test]
    fn int_witness_avoids_exclusions() {
        let mut c = ConstraintSet::unconstrained();
        c.add_ne(Value::int(0));
        c.add_ne(Value::int(1));
        assert_eq!(c.witness(DataType::Int), Some(Value::int(2)));
    }

    #[test]
    fn add_op_folds_pattern_ops() {
        let mut c = ConstraintSet::unconstrained();
        c.add_op(&PatternOp::Any);
        c.add_op(&PatternOp::Ne(vec![Value::str("x")]));
        c.add_op(&PatternOp::Eq(Value::str("y")));
        assert!(c.is_satisfiable(DataType::String));
        assert_eq!(c.pinned(), Some(&Value::str("y")));
        c.add_op(&PatternOp::Eq(Value::str("z")));
        assert!(!c.is_satisfiable(DataType::String));
    }

    #[test]
    fn pattern_satisfiability_matches_brute_force_on_small_domain() {
        // Exhaustive check of the decision procedure against enumeration
        // over a tiny string domain.
        let domain = ["a", "b", "c"];
        let consts = [
            Value::str("a"),
            Value::str("b"),
            Value::str("c"),
            Value::str("d"),
        ];
        // Enumerate constraint sets: optional eq × subsets of ne.
        for eq_choice in std::iter::once(None).chain(consts.iter().cloned().map(Some)) {
            for mask in 0..(1 << consts.len()) {
                let mut c = ConstraintSet::unconstrained();
                if let Some(eq) = &eq_choice {
                    c.add_eq(eq.clone());
                }
                for (i, v) in consts.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        c.add_ne(v.clone());
                    }
                }
                // Brute force over domain ∪ {fresh}: strings are infinite,
                // so "fresh" stands for any value outside the constants.
                let mut candidates: Vec<Value> = domain.iter().map(|d| Value::str(*d)).collect();
                candidates.push(Value::str("fresh"));
                if let Some(eq) = &eq_choice {
                    candidates = vec![eq.clone()];
                }
                let brute = candidates.iter().any(|cand| {
                    (eq_choice.as_ref().is_none_or(|e| e == cand))
                        && (0..consts.len()).all(|i| mask & (1 << i) == 0 || &consts[i] != cand)
                });
                assert_eq!(
                    c.is_satisfiable(DataType::String),
                    brute,
                    "eq={eq_choice:?} mask={mask:b}"
                );
            }
        }
    }
}
