//! Similarity operators for matching dependencies.
//!
//! MDs relate attributes under similarity rather than strict equality
//! (Fan et al., *Reasoning about record matching rules*, PVLDB 2009 — the
//! paper's reference [6], cited as a source of editing rules). The demo's
//! rule manager can import rules discovered from MDs, and the FN
//! normalization of Fig. 3 ("M." → "Mark") motivates the abbreviation
//! matcher implemented here.

use cerfix_relation::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A similarity operator usable on the LHS of a matching dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimilarityOp {
    /// Strict equality (the only operator compilable to an editing rule).
    Exact,
    /// Levenshtein distance at most the given bound.
    EditDistance(u32),
    /// Case-insensitive equality.
    CaseInsensitive,
    /// Abbreviation match: `"M."` ≈ `"Mark"`, `"Rob"` ≈ `"Robert"`.
    Abbreviation,
}

impl SimilarityOp {
    /// Evaluate the operator on two values. Non-string values only ever
    /// match under [`SimilarityOp::Exact`]; nulls match nothing.
    pub fn matches(self, left: &Value, right: &Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        match self {
            SimilarityOp::Exact => left == right,
            SimilarityOp::EditDistance(k) => match (left.as_str(), right.as_str()) {
                (Some(a), Some(b)) => edit_distance_within(a, b, k as usize),
                _ => left == right,
            },
            SimilarityOp::CaseInsensitive => match (left.as_str(), right.as_str()) {
                (Some(a), Some(b)) => a.eq_ignore_ascii_case(b),
                _ => left == right,
            },
            SimilarityOp::Abbreviation => match (left.as_str(), right.as_str()) {
                (Some(a), Some(b)) => abbreviation_match(a, b),
                _ => left == right,
            },
        }
    }

    /// True iff the operator is plain equality (and hence an MD using it
    /// can be compiled into an editing rule).
    pub fn is_exact(self) -> bool {
        matches!(self, SimilarityOp::Exact)
    }
}

impl fmt::Display for SimilarityOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimilarityOp::Exact => f.write_str("=="),
            SimilarityOp::EditDistance(k) => write!(f, "~{k}"),
            SimilarityOp::CaseInsensitive => f.write_str("=i="),
            SimilarityOp::Abbreviation => f.write_str("abbr"),
        }
    }
}

/// Levenshtein distance with the standard O(|a|·|b|) dynamic program,
/// single-row formulation (no quadratic allocation).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// Early-exit check `edit_distance(a, b) <= k` (band optimization: lengths
/// differing by more than `k` can never be within distance `k`).
pub fn edit_distance_within(a: &str, b: &str, k: usize) -> bool {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la.abs_diff(lb) > k {
        return false;
    }
    edit_distance(a, b) <= k
}

/// Abbreviation match in either direction.
///
/// `abbr` matches `full` when `abbr` (sans a trailing `.`) is a non-empty
/// case-insensitive prefix of `full` and strictly shorter, e.g. `"M."` ≈
/// `"Mark"`, `"Rob"` ≈ `"Robert"`. Identical strings also match.
pub fn abbreviation_match(a: &str, b: &str) -> bool {
    if a.eq_ignore_ascii_case(b) {
        return true;
    }
    is_abbreviation_of(a, b) || is_abbreviation_of(b, a)
}

fn is_abbreviation_of(abbr: &str, full: &str) -> bool {
    let stem = abbr.strip_suffix('.').unwrap_or(abbr);
    if stem.is_empty() || stem.len() >= full.len() {
        return false;
    }
    full.len() >= stem.len()
        && full
            .chars()
            .zip(stem.chars())
            .all(|(f, s)| f.eq_ignore_ascii_case(&s))
        && full.chars().count() > stem.chars().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("Edi", "Edi"), 0);
        assert_eq!(edit_distance("Ldn", "Edi"), 2); // the shared `d` aligns
        assert_eq!(edit_distance("Brady", "Bradey"), 1);
    }

    #[test]
    fn edit_distance_unicode() {
        assert_eq!(edit_distance("naïve", "naive"), 1);
        assert_eq!(edit_distance("Šuai", "Suai"), 1);
    }

    #[test]
    fn within_band_short_circuits() {
        assert!(!edit_distance_within("a", "abcdef", 2));
        assert!(edit_distance_within("Brady", "Bradey", 1));
        assert!(!edit_distance_within("Brady", "Smith", 2));
    }

    #[test]
    fn abbreviation_paper_example() {
        // Fig. 3: FN normalized from 'M.' to 'Mark' — matched by
        // abbreviation before rule φ4 copies the master value.
        assert!(abbreviation_match("M.", "Mark"));
        assert!(abbreviation_match("Mark", "M."));
        assert!(abbreviation_match("Rob", "Robert"));
        assert!(!abbreviation_match("N.", "Mark"));
        assert!(!abbreviation_match("Mark", "Mar2"));
        assert!(abbreviation_match("mark", "Mark"));
    }

    #[test]
    fn abbreviation_edge_cases() {
        assert!(!abbreviation_match(".", "Mark"), "bare dot has no stem");
        assert!(!abbreviation_match("", "Mark"));
        assert!(abbreviation_match("Same", "Same"));
    }

    #[test]
    fn abbreviation_is_symmetric_prefix() {
        assert!(abbreviation_match("Mark", "Markus"));
        assert!(abbreviation_match("Markus", "Mark"));
    }

    #[test]
    fn ops_match() {
        let m = Value::str("Mark");
        let mdot = Value::str("M.");
        assert!(SimilarityOp::Abbreviation.matches(&mdot, &m));
        assert!(!SimilarityOp::Exact.matches(&mdot, &m));
        assert!(SimilarityOp::Exact.matches(&m, &m));
        assert!(SimilarityOp::EditDistance(1).matches(&Value::str("Brady"), &Value::str("Bradey")));
        assert!(!SimilarityOp::EditDistance(1).matches(&Value::str("Brady"), &Value::str("Smith")));
        assert!(SimilarityOp::CaseInsensitive.matches(&Value::str("EDI"), &Value::str("edi")));
    }

    #[test]
    fn nulls_never_similar() {
        for op in [
            SimilarityOp::Exact,
            SimilarityOp::EditDistance(5),
            SimilarityOp::CaseInsensitive,
            SimilarityOp::Abbreviation,
        ] {
            assert!(!op.matches(&Value::Null, &Value::Null));
            assert!(!op.matches(&Value::Null, &Value::str("x")));
        }
    }

    #[test]
    fn non_string_values_fall_back_to_equality() {
        assert!(SimilarityOp::EditDistance(2).matches(&Value::int(5), &Value::int(5)));
        assert!(!SimilarityOp::EditDistance(2).matches(&Value::int(5), &Value::int(6)));
        assert!(SimilarityOp::Abbreviation.matches(&Value::int(5), &Value::int(5)));
    }

    #[test]
    fn is_exact_flag() {
        assert!(SimilarityOp::Exact.is_exact());
        assert!(!SimilarityOp::Abbreviation.is_exact());
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimilarityOp::Exact.to_string(), "==");
        assert_eq!(SimilarityOp::EditDistance(2).to_string(), "~2");
        assert_eq!(SimilarityOp::Abbreviation.to_string(), "abbr");
    }
}
