//! Rule sets: the managed collection behind the demo's rule manager.
//!
//! A [`RuleSet`] binds a set of editing rules to one `(input, master)`
//! schema pair and supports the management operations the demo's Web
//! interface exposes (view / add / modify / delete, Fig. 2), with name
//! uniqueness enforced. The consistency *analysis* of a rule set lives in
//! `cerfix::engine::consistency` — this type is purely the container.

use crate::editing_rule::EditingRule;
use crate::error::{Result, RuleError};
use cerfix_relation::{AttrId, SchemaRef};
use std::collections::{BTreeSet, HashMap};

/// Stable identifier of a rule within a rule set (dense, in insertion
/// order; unaffected by deletions so audit records stay valid).
pub type RuleId = usize;

/// A managed collection of editing rules over one schema pair.
#[derive(Debug, Clone)]
pub struct RuleSet {
    input: SchemaRef,
    master: SchemaRef,
    /// Slot per ever-added rule; `None` marks a deleted rule.
    rules: Vec<Option<EditingRule>>,
    by_name: HashMap<String, RuleId>,
}

impl RuleSet {
    /// Create an empty rule set over the schema pair.
    pub fn new(input: SchemaRef, master: SchemaRef) -> RuleSet {
        RuleSet {
            input,
            master,
            rules: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The input (dirty-tuple) schema.
    pub fn input_schema(&self) -> &SchemaRef {
        &self.input
    }

    /// The master schema.
    pub fn master_schema(&self) -> &SchemaRef {
        &self.master
    }

    /// Add a rule, enforcing name uniqueness. Returns the new rule's id.
    pub fn add(&mut self, rule: EditingRule) -> Result<RuleId> {
        if self.by_name.contains_key(rule.name()) {
            return Err(RuleError::DuplicateRule {
                name: rule.name().into(),
            });
        }
        let id = self.rules.len();
        self.by_name.insert(rule.name().to_string(), id);
        self.rules.push(Some(rule));
        Ok(id)
    }

    /// Add several rules, stopping at the first failure.
    pub fn add_all(&mut self, rules: impl IntoIterator<Item = EditingRule>) -> Result<Vec<RuleId>> {
        rules.into_iter().map(|r| self.add(r)).collect()
    }

    /// Remove the rule named `name`. The id is retired, not reused.
    pub fn remove(&mut self, name: &str) -> Result<EditingRule> {
        let id = self
            .by_name
            .remove(name)
            .ok_or_else(|| RuleError::UnknownRule { name: name.into() })?;
        Ok(self.rules[id].take().expect("by_name points at live rule"))
    }

    /// Replace the rule named `name` with `rule` (which may be renamed;
    /// the new name must not collide with another live rule).
    pub fn update(&mut self, name: &str, rule: EditingRule) -> Result<RuleId> {
        let id = *self
            .by_name
            .get(name)
            .ok_or_else(|| RuleError::UnknownRule { name: name.into() })?;
        if rule.name() != name && self.by_name.contains_key(rule.name()) {
            return Err(RuleError::DuplicateRule {
                name: rule.name().into(),
            });
        }
        self.by_name.remove(name);
        self.by_name.insert(rule.name().to_string(), id);
        self.rules[id] = Some(rule);
        Ok(id)
    }

    /// The rule with the given id, if live.
    pub fn get(&self, id: RuleId) -> Option<&EditingRule> {
        self.rules.get(id).and_then(Option::as_ref)
    }

    /// The rule named `name`, if present.
    pub fn get_by_name(&self, name: &str) -> Option<(RuleId, &EditingRule)> {
        let id = *self.by_name.get(name)?;
        Some((id, self.rules[id].as_ref()?))
    }

    /// Number of live rules.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True iff there are no live rules.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Iterator over live rules as `(RuleId, &EditingRule)`.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &EditingRule)> {
        self.rules
            .iter()
            .enumerate()
            .filter_map(|(id, r)| r.as_ref().map(|r| (id, r)))
    }

    /// Every input attribute fixable by some rule (union of RHS sets).
    pub fn fixable_attrs(&self) -> BTreeSet<AttrId> {
        self.iter().flat_map(|(_, r)| r.input_rhs()).collect()
    }

    /// Every input attribute used as evidence by some rule (union of
    /// `X ∪ Xp` sets).
    pub fn evidence_attrs(&self) -> BTreeSet<AttrId> {
        self.iter().flat_map(|(_, r)| r.evidence_attrs()).collect()
    }

    /// Rules whose full evidence set is contained in `validated`, i.e.
    /// rules eligible to fire given the validated attributes.
    pub fn eligible(&self, validated: &BTreeSet<AttrId>) -> Vec<RuleId> {
        self.iter()
            .filter(|(_, r)| r.evidence_attrs().is_subset(validated))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternTuple;
    use cerfix_relation::Schema;

    fn schemas() -> (SchemaRef, SchemaRef) {
        (
            Schema::of_strings("customer", ["AC", "phn", "city", "zip"]).unwrap(),
            Schema::of_strings("master", ["AC", "Mphn", "city", "zip"]).unwrap(),
        )
    }

    fn rule(
        name: &str,
        input: &SchemaRef,
        master: &SchemaRef,
        lhs: &str,
        rhs: &str,
    ) -> EditingRule {
        EditingRule::new(
            name,
            input,
            master,
            vec![(input.attr_id(lhs).unwrap(), master.attr_id(lhs).unwrap())],
            vec![(input.attr_id(rhs).unwrap(), master.attr_id(rhs).unwrap())],
            PatternTuple::empty(),
        )
        .unwrap()
    }

    #[test]
    fn add_get_remove() {
        let (input, master) = schemas();
        let mut rs = RuleSet::new(input.clone(), master.clone());
        assert!(rs.is_empty());
        let id = rs.add(rule("r1", &input, &master, "zip", "AC")).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(id).unwrap().name(), "r1");
        assert_eq!(rs.get_by_name("r1").unwrap().0, id);
        let removed = rs.remove("r1").unwrap();
        assert_eq!(removed.name(), "r1");
        assert!(rs.is_empty());
        assert!(rs.get(id).is_none());
        assert!(matches!(
            rs.remove("r1"),
            Err(RuleError::UnknownRule { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let (input, master) = schemas();
        let mut rs = RuleSet::new(input.clone(), master.clone());
        rs.add(rule("r1", &input, &master, "zip", "AC")).unwrap();
        let err = rs
            .add(rule("r1", &input, &master, "zip", "city"))
            .unwrap_err();
        assert!(matches!(err, RuleError::DuplicateRule { .. }));
    }

    #[test]
    fn ids_not_reused_after_removal() {
        let (input, master) = schemas();
        let mut rs = RuleSet::new(input.clone(), master.clone());
        let id1 = rs.add(rule("r1", &input, &master, "zip", "AC")).unwrap();
        rs.remove("r1").unwrap();
        let id2 = rs.add(rule("r2", &input, &master, "zip", "city")).unwrap();
        assert_ne!(
            id1, id2,
            "retired ids stay retired so audit records stay valid"
        );
    }

    #[test]
    fn update_in_place_and_rename() {
        let (input, master) = schemas();
        let mut rs = RuleSet::new(input.clone(), master.clone());
        let id = rs.add(rule("r1", &input, &master, "zip", "AC")).unwrap();
        // Same-name update.
        rs.update("r1", rule("r1", &input, &master, "zip", "city"))
            .unwrap();
        assert_eq!(
            rs.get(id).unwrap().input_rhs(),
            vec![input.attr_id("city").unwrap()]
        );
        // Rename keeps the id.
        let id2 = rs
            .update("r1", rule("r1v2", &input, &master, "zip", "AC"))
            .unwrap();
        assert_eq!(id, id2);
        assert!(rs.get_by_name("r1").is_none());
        assert!(rs.get_by_name("r1v2").is_some());
        // Renaming onto an existing name fails.
        rs.add(rule("other", &input, &master, "zip", "city"))
            .unwrap();
        assert!(rs
            .update("r1v2", rule("other", &input, &master, "zip", "AC"))
            .is_err());
    }

    #[test]
    fn attr_summaries() {
        let (input, master) = schemas();
        let mut rs = RuleSet::new(input.clone(), master.clone());
        rs.add(rule("r1", &input, &master, "zip", "AC")).unwrap();
        rs.add(rule("r2", &input, &master, "zip", "city")).unwrap();
        let fixable = rs.fixable_attrs();
        assert!(fixable.contains(&input.attr_id("AC").unwrap()));
        assert!(fixable.contains(&input.attr_id("city").unwrap()));
        assert!(!fixable.contains(&input.attr_id("zip").unwrap()));
        let evidence = rs.evidence_attrs();
        assert_eq!(evidence.len(), 1);
        assert!(evidence.contains(&input.attr_id("zip").unwrap()));
    }

    #[test]
    fn eligibility_by_validated_set() {
        let (input, master) = schemas();
        let mut rs = RuleSet::new(input.clone(), master.clone());
        let r_zip = rs.add(rule("r1", &input, &master, "zip", "AC")).unwrap();
        let r_phn = rs.add(rule("r2", &input, &master, "AC", "city")).unwrap();
        let zip = input.attr_id("zip").unwrap();
        let ac = input.attr_id("AC").unwrap();

        let only_zip: BTreeSet<AttrId> = [zip].into();
        assert_eq!(rs.eligible(&only_zip), vec![r_zip]);
        let both: BTreeSet<AttrId> = [zip, ac].into();
        assert_eq!(rs.eligible(&both), vec![r_zip, r_phn]);
        assert!(rs.eligible(&BTreeSet::new()).is_empty());
    }

    #[test]
    fn iter_skips_deleted() {
        let (input, master) = schemas();
        let mut rs = RuleSet::new(input.clone(), master.clone());
        rs.add(rule("r1", &input, &master, "zip", "AC")).unwrap();
        rs.add(rule("r2", &input, &master, "zip", "city")).unwrap();
        rs.remove("r1").unwrap();
        let names: Vec<&str> = rs.iter().map(|(_, r)| r.name()).collect();
        assert_eq!(names, vec!["r2"]);
    }
}
