//! # cerfix-rules — constraints and rules for the CerFix reproduction
//!
//! Implements the rule formalisms of *CerFix: A System for Cleaning Data
//! with Certain Fixes* (Fan et al., PVLDB 4(12), 2011) and its companion
//! theory paper (*Towards certain fixes with editing rules and master
//! data*, PVLDB 2010):
//!
//! * [`EditingRule`] — the central formalism `((X, Xm) → (B, Bm), tp[Xp])`
//!   relating an input schema to a master schema;
//! * [`PatternTuple`] / [`PatternOp`] — the pattern language (`= c`,
//!   `≠ c`, wildcard) with an exact satisfiability procedure
//!   ([`ConstraintSet`]) used by consistency checking;
//! * [`Cfd`] — conditional functional dependencies with embedded pattern
//!   tableaux and violation detection (Example 1 of the paper, and the
//!   error detector of the heuristic baseline);
//! * [`MatchingDependency`] — matching dependencies with similarity
//!   operators ([`SimilarityOp`]);
//! * [`derive_from_cfd`] / [`derive_from_md`] — rule derivation, as the
//!   demo's rule manager imports rules "discovered from cfds or mds";
//! * [`parse_rules`] — a textual DSL standing in for the demo's rule
//!   management Web form;
//! * [`RuleSet`] — the managed rule collection (view/add/modify/delete).
//!
//! Application semantics (certain fixes, fixpoints, consistency,
//! regions) live in the `cerfix` core crate; this crate is purely the
//! rule layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfd;
mod derive;
mod discover;
mod editing_rule;
mod error;
mod md;
mod parser;
mod pattern;
mod ruleset;
mod similarity;

pub use cfd::{Cfd, CfdViolation, TableauCell, TableauRow};
pub use derive::{derive_from_cfd, derive_from_md, AttrCorrespondence};
pub use discover::{check_fd, discover_fds, discover_rules, DiscoveredFd, DiscoveredRule};
pub use editing_rule::{AttrPair, EditingRule};
pub use error::{Result, RuleError};
pub use md::{MatchingDependency, MdClause};
pub use parser::{parse_rules, render_er_dsl, RuleDecl};
pub use pattern::{ConstraintSet, PatternCell, PatternOp, PatternTuple};
pub use ruleset::{RuleId, RuleSet};
pub use similarity::{abbreviation_match, edit_distance, edit_distance_within, SimilarityOp};
