//! Conditional functional dependencies (CFDs).
//!
//! The paper's Example 1 uses CFDs `ψ1: AC = 020 → city = Ldn` and
//! `ψ2: AC = 131 → city = Edi` to *detect* errors — and §1 argues they
//! cannot *repair* with certainty. We implement CFDs for three purposes:
//!
//! 1. violation detection (Example 1's analysis, and the error detector of
//!    the heuristic-repair baseline in `cerfix-baseline`);
//! 2. derivation of editing rules (`crate::derive`), as the demo's rule
//!    manager imports rules "discovered from cfds or mds";
//! 3. the `T1` experiment comparing certain fixes against CFD repair.
//!
//! A CFD `(X → A, Tp)` has an embedded pattern tableau `Tp`; each pattern
//! row constrains `X` cells with constants or wildcards and the RHS cell
//! with a constant or wildcard. A wildcard RHS row is a *variable* CFD
//! (standard FD semantics conditioned on the LHS pattern); a constant RHS
//! row asserts the RHS value outright.

use crate::error::{Result, RuleError};
use cerfix_relation::{AttrId, Relation, RowId, SchemaRef, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A tableau cell: a constant or the wildcard `_`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableauCell {
    /// Matches any non-null value (and imposes/implies nothing by itself).
    Wildcard,
    /// Matches exactly this constant.
    Const(Value),
}

impl TableauCell {
    /// Does a data cell match this tableau cell? Nulls match nothing.
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            TableauCell::Wildcard => !value.is_null(),
            TableauCell::Const(c) => !value.is_null() && value == c,
        }
    }

    /// The constant, if this cell is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            TableauCell::Wildcard => None,
            TableauCell::Const(c) => Some(c),
        }
    }
}

impl fmt::Display for TableauCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableauCell::Wildcard => f.write_str("_"),
            TableauCell::Const(v) => write!(f, "'{v}'"),
        }
    }
}

/// One row of a CFD pattern tableau: LHS cells plus an RHS cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableauRow {
    /// Cells for the LHS attributes, position-wise.
    pub lhs: Vec<TableauCell>,
    /// Cell for the RHS attribute.
    pub rhs: TableauCell,
}

impl TableauRow {
    /// True iff the row's RHS is a constant (a *constant CFD* row).
    pub fn is_constant(&self) -> bool {
        matches!(self.rhs, TableauCell::Const(_))
    }
}

/// A conditional functional dependency `(X → A, Tp)` over one schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfd {
    name: String,
    lhs: Vec<AttrId>,
    rhs: AttrId,
    tableau: Vec<TableauRow>,
}

/// A violation of a CFD found in a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfdViolation {
    /// A single tuple contradicts a constant tableau row: its LHS matches
    /// but its RHS differs from the row's constant.
    Constant {
        /// The violating row.
        row: RowId,
        /// Index of the tableau row violated.
        tableau_row: usize,
        /// The constant the RHS should have had.
        expected: Value,
    },
    /// Two tuples agree on the (pattern-matched) LHS but differ on the RHS
    /// under a variable tableau row.
    Variable {
        /// First involved row.
        row_a: RowId,
        /// Second involved row.
        row_b: RowId,
        /// Index of the tableau row violated.
        tableau_row: usize,
    },
}

impl Cfd {
    /// Build and validate a CFD.
    pub fn new(
        name: impl Into<String>,
        schema: &SchemaRef,
        lhs: impl Into<Vec<AttrId>>,
        rhs: AttrId,
        tableau: impl Into<Vec<TableauRow>>,
    ) -> Result<Cfd> {
        let name = name.into();
        let lhs: Vec<AttrId> = lhs.into();
        let tableau: Vec<TableauRow> = tableau.into();
        if lhs.is_empty() {
            return Err(RuleError::InvalidRule {
                rule: name,
                message: "CFD LHS must not be empty".into(),
            });
        }
        if tableau.is_empty() {
            return Err(RuleError::InvalidRule {
                rule: name,
                message: "CFD tableau must have at least one row".into(),
            });
        }
        for &a in lhs.iter().chain(std::iter::once(&rhs)) {
            if schema.attribute(a).is_none() {
                return Err(RuleError::InvalidRule {
                    rule: name,
                    message: format!("attribute id {a} out of range"),
                });
            }
        }
        if lhs.contains(&rhs) {
            return Err(RuleError::InvalidRule {
                rule: name,
                message: "CFD RHS attribute may not appear in its LHS".into(),
            });
        }
        for (i, row) in tableau.iter().enumerate() {
            if row.lhs.len() != lhs.len() {
                return Err(RuleError::InvalidRule {
                    rule: name,
                    message: format!(
                        "tableau row {i} has {} LHS cells, expected {}",
                        row.lhs.len(),
                        lhs.len()
                    ),
                });
            }
        }
        Ok(Cfd {
            name,
            lhs,
            rhs,
            tableau,
        })
    }

    /// Convenience: a single-row constant CFD like ψ1 (`AC = 020 → city = Ldn`).
    pub fn constant(
        name: impl Into<String>,
        schema: &SchemaRef,
        lhs: impl Into<Vec<AttrId>>,
        lhs_consts: Vec<Value>,
        rhs: AttrId,
        rhs_const: Value,
    ) -> Result<Cfd> {
        let row = TableauRow {
            lhs: lhs_consts.into_iter().map(TableauCell::Const).collect(),
            rhs: TableauCell::Const(rhs_const),
        };
        Cfd::new(name, schema, lhs, rhs, vec![row])
    }

    /// Convenience: a single-row all-wildcard variable CFD (a plain FD).
    pub fn functional(
        name: impl Into<String>,
        schema: &SchemaRef,
        lhs: impl Into<Vec<AttrId>>,
        rhs: AttrId,
    ) -> Result<Cfd> {
        let lhs: Vec<AttrId> = lhs.into();
        let row = TableauRow {
            lhs: vec![TableauCell::Wildcard; lhs.len()],
            rhs: TableauCell::Wildcard,
        };
        Cfd::new(name, schema, lhs, rhs, vec![row])
    }

    /// The CFD's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// LHS attribute ids.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// RHS attribute id.
    pub fn rhs(&self) -> AttrId {
        self.rhs
    }

    /// The pattern tableau.
    pub fn tableau(&self) -> &[TableauRow] {
        &self.tableau
    }

    /// Does `t[lhs]` match tableau row `row`'s LHS cells?
    fn lhs_matches(&self, row: &TableauRow, t: &Tuple) -> bool {
        self.lhs
            .iter()
            .zip(row.lhs.iter())
            .all(|(&a, cell)| cell.matches(t.get(a)))
    }

    /// Check a *single tuple* against the constant rows of the tableau.
    /// Returns the indices of violated constant rows.
    pub fn check_tuple(&self, t: &Tuple) -> Vec<usize> {
        self.tableau
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                if let TableauCell::Const(expected) = &row.rhs {
                    self.lhs_matches(row, t) && {
                        let actual = t.get(self.rhs);
                        !actual.is_null() && actual != expected
                    }
                } else {
                    false
                }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Detect all violations of this CFD in `relation`.
    ///
    /// Constant rows are checked per tuple; variable rows by grouping on
    /// the LHS projection (hash-based, O(n) expected per row).
    pub fn violations(&self, relation: &Relation) -> Vec<CfdViolation> {
        let mut out = Vec::new();
        // Constant rows.
        for (row_id, t) in relation.iter() {
            for tr in self.check_tuple(t) {
                let expected = self.tableau[tr]
                    .rhs
                    .as_const()
                    .cloned()
                    .expect("constant row");
                out.push(CfdViolation::Constant {
                    row: row_id,
                    tableau_row: tr,
                    expected,
                });
            }
        }
        // Variable rows.
        for (tr, row) in self.tableau.iter().enumerate() {
            if row.is_constant() {
                continue;
            }
            let mut groups: HashMap<Vec<Value>, (RowId, Value)> = HashMap::new();
            for (row_id, t) in relation.iter() {
                if !self.lhs_matches(row, t) {
                    continue;
                }
                let rhs_val = t.get(self.rhs);
                if rhs_val.is_null() {
                    continue;
                }
                let key = t.project(&self.lhs);
                match groups.get(&key) {
                    None => {
                        groups.insert(key, (row_id, rhs_val.clone()));
                    }
                    Some((first_row, first_val)) => {
                        if first_val != rhs_val {
                            out.push(CfdViolation::Variable {
                                row_a: *first_row,
                                row_b: row_id,
                                tableau_row: tr,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Render in `ψ: (X → A, tableau)` notation.
    pub fn render(&self, schema: &SchemaRef) -> String {
        let lhs_names: Vec<&str> = self.lhs.iter().map(|&a| schema.attr_name(a)).collect();
        let rows: Vec<String> = self
            .tableau
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.lhs.iter().map(|c| c.to_string()).collect();
                format!("({}) -> {}", cells.join(", "), r.rhs)
            })
            .collect();
        format!(
            "{}: ({} -> {}, {{ {} }})",
            self.name,
            lhs_names.join(", "),
            schema.attr_name(self.rhs),
            rows.join(" ; ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::{RelationBuilder, Schema};

    fn schema() -> SchemaRef {
        Schema::of_strings("customer", ["AC", "city", "zip"]).unwrap()
    }

    fn psi1(schema: &SchemaRef) -> Cfd {
        // ψ1: AC = 020 → city = Ldn
        Cfd::constant(
            "psi1",
            schema,
            vec![schema.attr_id("AC").unwrap()],
            vec![Value::str("020")],
            schema.attr_id("city").unwrap(),
            Value::str("Ldn"),
        )
        .unwrap()
    }

    #[test]
    fn example1_detection() {
        // Example 1: t[AC] = 020 but t[city] = Edi violates ψ1.
        let s = schema();
        let t = Tuple::of_strings(s.clone(), ["020", "Edi", "EH8 4AH"]).unwrap();
        let cfd = psi1(&s);
        assert_eq!(cfd.check_tuple(&t), vec![0]);
        // The corrected tuple (131, Edi) does not violate ψ1 (LHS no longer matches).
        let fixed = Tuple::of_strings(s.clone(), ["131", "Edi", "EH8 4AH"]).unwrap();
        assert!(cfd.check_tuple(&fixed).is_empty());
        // And (020, Ldn) satisfies it.
        let ldn = Tuple::of_strings(s, ["020", "Ldn", "SW1"]).unwrap();
        assert!(cfd.check_tuple(&ldn).is_empty());
    }

    #[test]
    fn constant_violations_in_relation() {
        let s = schema();
        let rel = RelationBuilder::new(s.clone())
            .row_strs(["020", "Edi", "z1"]) // violates
            .row_strs(["020", "Ldn", "z2"]) // ok
            .row_strs(["131", "Edi", "z3"]) // LHS doesn't match ψ1
            .build()
            .unwrap();
        let v = psi1(&s).violations(&rel);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            CfdViolation::Constant {
                row: 0,
                tableau_row: 0,
                ..
            }
        ));
    }

    #[test]
    fn variable_cfd_violations() {
        // zip → city as a plain FD.
        let s = schema();
        let fd = Cfd::functional(
            "fd_zip_city",
            &s,
            vec![s.attr_id("zip").unwrap()],
            s.attr_id("city").unwrap(),
        )
        .unwrap();
        let rel = RelationBuilder::new(s.clone())
            .row_strs(["020", "Ldn", "EH8"]) // group EH8: Ldn
            .row_strs(["131", "Edi", "EH8"]) // group EH8: Edi -> violation
            .row_strs(["131", "Edi", "G12"]) // distinct group
            .build()
            .unwrap();
        let v = fd.violations(&rel);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            CfdViolation::Variable {
                row_a: 0,
                row_b: 1,
                tableau_row: 0
            }
        ));
    }

    #[test]
    fn conditioned_variable_row() {
        // (AC='131', zip) → city: FD applies only to Edinburgh area codes.
        let s = schema();
        let cfd = Cfd::new(
            "cond",
            &s,
            vec![s.attr_id("AC").unwrap(), s.attr_id("zip").unwrap()],
            s.attr_id("city").unwrap(),
            vec![TableauRow {
                lhs: vec![TableauCell::Const(Value::str("131")), TableauCell::Wildcard],
                rhs: TableauCell::Wildcard,
            }],
        )
        .unwrap();
        let rel = RelationBuilder::new(s.clone())
            .row_strs(["020", "Ldn", "EH8"]) // not in condition scope
            .row_strs(["020", "Xxx", "EH8"]) // not in scope either
            .row_strs(["131", "Edi", "EH8"])
            .row_strs(["131", "Leith", "EH8"]) // violation within scope
            .build()
            .unwrap();
        let v = cfd.violations(&rel);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            CfdViolation::Variable {
                row_a: 2,
                row_b: 3,
                ..
            }
        ));
    }

    #[test]
    fn nulls_do_not_trigger_violations() {
        let s = schema();
        let rel = RelationBuilder::new(s.clone())
            .row(vec![Value::str("020"), Value::Null, Value::str("z")])
            .build()
            .unwrap();
        assert!(psi1(&s).violations(&rel).is_empty());
    }

    #[test]
    fn multi_row_tableau() {
        // ψ1 and ψ2 as a two-row tableau of one CFD.
        let s = schema();
        let cfd = Cfd::new(
            "psi12",
            &s,
            vec![s.attr_id("AC").unwrap()],
            s.attr_id("city").unwrap(),
            vec![
                TableauRow {
                    lhs: vec![TableauCell::Const(Value::str("020"))],
                    rhs: TableauCell::Const(Value::str("Ldn")),
                },
                TableauRow {
                    lhs: vec![TableauCell::Const(Value::str("131"))],
                    rhs: TableauCell::Const(Value::str("Edi")),
                },
            ],
        )
        .unwrap();
        let bad = Tuple::of_strings(s.clone(), ["131", "Ldn", "z"]).unwrap();
        assert_eq!(cfd.check_tuple(&bad), vec![1]);
        assert_eq!(cfd.tableau().len(), 2);
    }

    #[test]
    fn validation_errors() {
        let s = schema();
        let city = s.attr_id("city").unwrap();
        assert!(Cfd::functional("x", &s, vec![], city).is_err());
        assert!(
            Cfd::functional("x", &s, vec![city], city).is_err(),
            "rhs in lhs"
        );
        assert!(
            Cfd::new("x", &s, vec![0], 1, vec![]).is_err(),
            "empty tableau"
        );
        let bad_row = TableauRow {
            lhs: vec![],
            rhs: TableauCell::Wildcard,
        };
        assert!(
            Cfd::new("x", &s, vec![0], 1, vec![bad_row]).is_err(),
            "ragged row"
        );
        assert!(
            Cfd::functional("x", &s, vec![99], city).is_err(),
            "attr range"
        );
    }

    #[test]
    fn render_notation() {
        let s = schema();
        let r = psi1(&s).render(&s);
        assert_eq!(r, "psi1: (AC -> city, { ('020') -> 'Ldn' })");
    }
}
