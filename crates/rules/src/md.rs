//! Matching dependencies (MDs).
//!
//! An MD `R1[X1] ≈ R2[X2] → R1[Y1] ⇌ R2[Y2]` (Fan et al., PVLDB 2009 — the
//! paper's reference [6]) asserts that when two tuples from `R1` and `R2`
//! are similar on `X1`/`X2` under the listed operators, their `Y1`/`Y2`
//! cells identify the same real-world value. The demo's rule manager
//! imports editing rules "discovered from cfds or mds"; MDs with exact
//! operators compile directly to editing rules (`crate::derive`), and
//! similarity MDs are used by the workload evaluation to justify matches
//! like `"M." ≈ "Mark"`.

use crate::error::{Result, RuleError};
use crate::similarity::SimilarityOp;
use cerfix_relation::{AttrId, SchemaRef, Tuple};
use std::fmt;

/// One similarity comparison in an MD's LHS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdClause {
    /// Attribute in the left (input) schema.
    pub left: AttrId,
    /// Attribute in the right (master) schema.
    pub right: AttrId,
    /// Similarity operator.
    pub op: SimilarityOp,
}

/// A matching dependency across an `(input, master)` schema pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingDependency {
    name: String,
    lhs: Vec<MdClause>,
    /// Identified pairs `(Y1, Y2)`: on match, `t[Y1]` and `s[Y2]` refer to
    /// the same value.
    rhs: Vec<(AttrId, AttrId)>,
}

impl MatchingDependency {
    /// Build and validate an MD against its schema pair.
    pub fn new(
        name: impl Into<String>,
        input: &SchemaRef,
        master: &SchemaRef,
        lhs: impl Into<Vec<MdClause>>,
        rhs: impl Into<Vec<(AttrId, AttrId)>>,
    ) -> Result<MatchingDependency> {
        let name = name.into();
        let lhs: Vec<MdClause> = lhs.into();
        let rhs: Vec<(AttrId, AttrId)> = rhs.into();
        if lhs.is_empty() {
            return Err(RuleError::InvalidRule {
                rule: name,
                message: "MD LHS must not be empty".into(),
            });
        }
        if rhs.is_empty() {
            return Err(RuleError::InvalidRule {
                rule: name,
                message: "MD RHS must not be empty".into(),
            });
        }
        for c in &lhs {
            if input.attribute(c.left).is_none() || master.attribute(c.right).is_none() {
                return Err(RuleError::InvalidRule {
                    rule: name,
                    message: "MD LHS attribute out of range".into(),
                });
            }
        }
        for &(l, r) in &rhs {
            if input.attribute(l).is_none() || master.attribute(r).is_none() {
                return Err(RuleError::InvalidRule {
                    rule: name,
                    message: "MD RHS attribute out of range".into(),
                });
            }
        }
        Ok(MatchingDependency { name, lhs, rhs })
    }

    /// The MD's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The LHS similarity clauses.
    pub fn lhs(&self) -> &[MdClause] {
        &self.lhs
    }

    /// The identified RHS attribute pairs.
    pub fn rhs(&self) -> &[(AttrId, AttrId)] {
        &self.rhs
    }

    /// True iff every LHS clause holds for `(t, s)`.
    pub fn matches_pair(&self, t: &Tuple, s: &Tuple) -> bool {
        self.lhs
            .iter()
            .all(|c| c.op.matches(t.get(c.left), s.get(c.right)))
    }

    /// True iff every LHS operator is exact equality (and hence the MD is
    /// compilable to an editing rule).
    pub fn is_exact(&self) -> bool {
        self.lhs.iter().all(|c| c.op.is_exact())
    }

    /// Render with attribute names.
    pub fn render(&self, input: &SchemaRef, master: &SchemaRef) -> String {
        let lhs: Vec<String> = self
            .lhs
            .iter()
            .map(|c| {
                format!(
                    "{}[{}] {} {}[{}]",
                    input.name(),
                    input.attr_name(c.left),
                    c.op,
                    master.name(),
                    master.attr_name(c.right)
                )
            })
            .collect();
        let rhs: Vec<String> = self
            .rhs
            .iter()
            .map(|&(l, r)| {
                format!(
                    "{}[{}] <=> {}[{}]",
                    input.name(),
                    input.attr_name(l),
                    master.name(),
                    master.attr_name(r)
                )
            })
            .collect();
        format!("{}: {} -> {}", self.name, lhs.join(" & "), rhs.join(", "))
    }
}

impl fmt::Display for MatchingDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(|lhs|={}, |rhs|={})",
            self.name,
            self.lhs.len(),
            self.rhs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Schema;

    fn schemas() -> (SchemaRef, SchemaRef) {
        (
            Schema::of_strings("customer", ["FN", "LN", "phn"]).unwrap(),
            Schema::of_strings("master", ["FN", "LN", "Mphn"]).unwrap(),
        )
    }

    #[test]
    fn phone_name_md() {
        // customer[phn] == master[Mphn] ∧ customer[FN] abbr master[FN]
        //   → customer[FN] ⇌ master[FN]
        let (input, master) = schemas();
        let md = MatchingDependency::new(
            "m1",
            &input,
            &master,
            vec![
                MdClause {
                    left: 2,
                    right: 2,
                    op: SimilarityOp::Exact,
                },
                MdClause {
                    left: 0,
                    right: 0,
                    op: SimilarityOp::Abbreviation,
                },
            ],
            vec![(0, 0)],
        )
        .unwrap();
        let t = Tuple::of_strings(input.clone(), ["M.", "Smith", "079172485"]).unwrap();
        let s = Tuple::of_strings(master.clone(), ["Mark", "Smith", "079172485"]).unwrap();
        assert!(md.matches_pair(&t, &s));
        assert!(!md.is_exact());

        let s2 = Tuple::of_strings(master.clone(), ["Nina", "Smith", "079172485"]).unwrap();
        assert!(!md.matches_pair(&t, &s2), "abbreviation clause must fail");
        let s3 = Tuple::of_strings(master, ["Mark", "Smith", "000"]).unwrap();
        assert!(!md.matches_pair(&t, &s3), "phone clause must fail");
    }

    #[test]
    fn exact_md_detected() {
        let (input, master) = schemas();
        let md = MatchingDependency::new(
            "m2",
            &input,
            &master,
            vec![MdClause {
                left: 2,
                right: 2,
                op: SimilarityOp::Exact,
            }],
            vec![(0, 0), (1, 1)],
        )
        .unwrap();
        assert!(md.is_exact());
        assert_eq!(md.rhs().len(), 2);
    }

    #[test]
    fn validation() {
        let (input, master) = schemas();
        assert!(MatchingDependency::new("m", &input, &master, vec![], vec![(0, 0)]).is_err());
        assert!(MatchingDependency::new(
            "m",
            &input,
            &master,
            vec![MdClause {
                left: 0,
                right: 0,
                op: SimilarityOp::Exact
            }],
            vec![],
        )
        .is_err());
        assert!(MatchingDependency::new(
            "m",
            &input,
            &master,
            vec![MdClause {
                left: 9,
                right: 0,
                op: SimilarityOp::Exact
            }],
            vec![(0, 0)],
        )
        .is_err());
        assert!(MatchingDependency::new(
            "m",
            &input,
            &master,
            vec![MdClause {
                left: 0,
                right: 0,
                op: SimilarityOp::Exact
            }],
            vec![(0, 9)],
        )
        .is_err());
    }

    #[test]
    fn render_readable() {
        let (input, master) = schemas();
        let md = MatchingDependency::new(
            "m1",
            &input,
            &master,
            vec![MdClause {
                left: 2,
                right: 2,
                op: SimilarityOp::EditDistance(1),
            }],
            vec![(0, 0)],
        )
        .unwrap();
        assert_eq!(
            md.render(&input, &master),
            "m1: customer[phn] ~1 master[Mphn] -> customer[FN] <=> master[FN]"
        );
    }
}
