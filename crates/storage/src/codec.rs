//! Binary codec for everything `cerfix-storage` puts on disk.
//!
//! Hand-rolled little-endian encoding (the build is offline; no serde
//! backend). Every on-disk unit — a journal event, a snapshot body, an
//! audit record — is framed as `[len: u32][crc32: u32][payload]` where
//! the CRC covers the payload only, so a torn tail (partial header,
//! partial payload, or bit rot) is detected and cut at the last complete
//! frame instead of corrupting recovery.
//!
//! Decoding is strict: trailing bytes inside a frame, out-of-range tags
//! and truncated fields are all [`CodecError`]s, never panics — the
//! reader treats any of them as the torn tail of a crashed write.

use cerfix_relation::Value;
use std::fmt;

/// Frame header size: payload length + CRC32, both `u32` LE.
pub const FRAME_HEADER: usize = 8;

/// A malformed or truncated on-disk payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table built on first use; 1 KiB, shared process-wide.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append-only byte writer with the primitive encoders.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// One relational [`Value`] (tag byte + payload).
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Str(s) => {
                self.put_u8(1);
                self.put_str(s);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_u64(*i as u64);
            }
            Value::Float(f) => {
                self.put_u8(3);
                self.put_u64(f.to_bits());
            }
            Value::Bool(b) => {
                self.put_u8(4);
                self.put_u8(*b as u8);
            }
        }
    }

    /// Length-prefixed list of values.
    pub fn put_values(&mut self, values: &[Value]) {
        self.put_u32(values.len() as u32);
        for v in values {
            self.put_value(v);
        }
    }

    /// Length-prefixed list of `u32` ids (attribute sets, session lists).
    pub fn put_u32_list(&mut self, ids: &[u32]) {
        self.put_u32(ids.len() as u32);
        for &id in ids {
            self.put_u32(id);
        }
    }
}

/// Bounds-checked reader over an encoded payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Decoder<'a> {
        Decoder { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Error unless every byte was consumed (frames are exact-length).
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "truncated: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// One byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// `u32`, little-endian.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// `u64`, little-endian.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError("string is not UTF-8".into()))
    }

    /// One relational [`Value`].
    pub fn get_value(&mut self) -> Result<Value, CodecError> {
        Ok(match self.get_u8()? {
            0 => Value::Null,
            1 => Value::str(self.get_str()?),
            2 => Value::Int(self.get_u64()? as i64),
            3 => Value::Float(f64::from_bits(self.get_u64()?)),
            4 => Value::Bool(self.get_u8()? != 0),
            tag => return Err(CodecError(format!("unknown value tag {tag}"))),
        })
    }

    /// Length-prefixed list of values.
    pub fn get_values(&mut self) -> Result<Vec<Value>, CodecError> {
        let n = self.get_u32()? as usize;
        // Guard against a corrupt length asking for gigabytes.
        if n > self.remaining() {
            return Err(CodecError(format!("value list length {n} exceeds payload")));
        }
        (0..n).map(|_| self.get_value()).collect()
    }

    /// Length-prefixed list of `u32` ids.
    pub fn get_u32_list(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.get_u32()? as usize;
        if n * 4 > self.remaining() {
            return Err(CodecError(format!("id list length {n} exceeds payload")));
        }
        (0..n).map(|_| self.get_u32()).collect()
    }
}

/// Wrap `payload` in a `[len][crc][payload]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Try to read one frame at the start of `bytes`.
///
/// `Ok(Some((payload, frame_len)))` on a complete, checksummed frame;
/// `Ok(None)` when `bytes` is a truncated frame (a torn tail — caller
/// stops and truncates); `Err` when the header is intact but the CRC
/// fails (bit rot / overwritten region — also treated as the end of the
/// valid prefix by readers, but distinguishable for diagnostics).
pub fn read_frame(bytes: &[u8]) -> Result<Option<(&[u8], usize)>, CodecError> {
    if bytes.len() < FRAME_HEADER {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let Some(payload) = bytes.get(FRAME_HEADER..FRAME_HEADER + len) else {
        return Ok(None); // payload torn mid-write
    };
    if crc32(payload) != crc {
        return Err(CodecError("frame checksum mismatch".into()));
    }
    Ok(Some((payload, FRAME_HEADER + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX);
        enc.put_str("héllo");
        enc.put_u32_list(&[3, 1, 4, 1, 5]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_str().unwrap(), "héllo");
        assert_eq!(dec.get_u32_list().unwrap(), vec![3, 1, 4, 1, 5]);
        dec.finish().unwrap();
    }

    #[test]
    fn values_round_trip() {
        let values = vec![
            Value::Null,
            Value::str("Edi"),
            Value::str(""),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Bool(true),
        ];
        let mut enc = Encoder::new();
        enc.put_values(&values);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_values().unwrap(), values);
        dec.finish().unwrap();
    }

    #[test]
    fn frames_detect_torn_and_corrupt_tails() {
        let framed = frame(b"payload");
        let (payload, len) = read_frame(&framed).unwrap().unwrap();
        assert_eq!(payload, b"payload");
        assert_eq!(len, framed.len());
        // Every strict prefix is a torn tail, not an error.
        for cut in 0..framed.len() {
            assert_eq!(read_frame(&framed[..cut]).unwrap(), None, "cut at {cut}");
        }
        // A flipped payload bit is a checksum error.
        let mut corrupt = framed.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        assert!(read_frame(&corrupt).is_err());
    }

    #[test]
    fn decoder_rejects_trailing_and_truncated() {
        let mut enc = Encoder::new();
        enc.put_u32(1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        dec.get_u8().unwrap();
        assert!(dec.finish().is_err(), "3 bytes left over");
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_u64().is_err(), "not enough bytes");
        // Corrupt list length larger than the payload.
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX);
        let bytes = enc.into_bytes();
        assert!(Decoder::new(&bytes).get_values().is_err());
        assert!(Decoder::new(&bytes).get_u32_list().is_err());
    }
}
