//! Atomic snapshots of live service state.
//!
//! A snapshot file is one CRC-framed [`SnapshotData`] payload behind a
//! `CFXS` header, written to `snapshot.tmp`, fsynced, then renamed over
//! `snapshot.bin` (with a directory fsync) — so `snapshot.bin` is always
//! either the previous complete snapshot or the new complete snapshot,
//! never a partial write. A crash mid-snapshot leaves a `snapshot.tmp`
//! that [`load_snapshot`] ignores and [`Storage::open`] deletes.
//!
//! [`Storage::open`]: crate::Storage::open

use crate::codec::{self};
use crate::events::SnapshotData;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CFXS";
const VERSION: u32 = 1;

/// File name of the current snapshot inside a data dir.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Scratch name used while writing (ignored by recovery).
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Write `data` atomically into `dir`.
pub fn write_snapshot(dir: &Path, data: &SnapshotData) -> std::io::Result<()> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let payload = data.encode();
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.write_all(&codec::frame(&payload))?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Persist the rename itself (directory entry) where supported.
    if let Ok(dirfile) = File::open(dir) {
        let _ = dirfile.sync_all();
    }
    Ok(())
}

/// Load the current snapshot from `dir`. `Ok(None)` when no snapshot
/// exists; `Err` when one exists but is unreadable (version mismatch or
/// corruption — recovery must not silently start empty over real state).
pub fn load_snapshot(dir: &Path) -> std::io::Result<Option<SnapshotData>> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    let invalid = |message: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("snapshot {}: {message}", path.display()),
        )
    };
    if bytes.len() < 8 || &bytes[0..4] != MAGIC {
        return Err(invalid("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(invalid(&format!(
            "format version {version} (this build reads {VERSION})"
        )));
    }
    let (payload, _) = codec::read_frame(&bytes[8..])
        .map_err(|e| invalid(&e.to_string()))?
        .ok_or_else(|| invalid("truncated"))?;
    let data = SnapshotData::decode(payload).map_err(|e| invalid(&e.to_string()))?;
    Ok(Some(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::SessionSnapshot;
    use cerfix_relation::Value;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cerfix-snapshot-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(epoch: u64) -> SnapshotData {
        SnapshotData {
            epoch,
            fingerprint: 11,
            rules_dsl: "er r: match a=a fix b:=b when ()".into(),
            next_session_id: 5,
            master_appended: vec![],
            sessions: vec![SessionSnapshot {
                session: 1,
                tuple_id: 1,
                rounds: 1,
                values: vec![Value::str("a"), Value::Null],
                validated: vec![0],
                user_validated: vec![0],
                auto_validated: vec![],
            }],
        }
    }

    #[test]
    fn write_load_round_trip_and_overwrite() {
        let dir = tmp_dir("round-trip");
        assert!(load_snapshot(&dir).unwrap().is_none());
        write_snapshot(&dir, &sample(1)).unwrap();
        assert_eq!(load_snapshot(&dir).unwrap().unwrap(), sample(1));
        write_snapshot(&dir, &sample(2)).unwrap();
        assert_eq!(load_snapshot(&dir).unwrap().unwrap().epoch, 2);
        assert!(!dir.join(SNAPSHOT_TMP).exists(), "tmp renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_tmp_is_ignored_and_corrupt_bin_is_an_error() {
        let dir = tmp_dir("partial");
        write_snapshot(&dir, &sample(1)).unwrap();
        // A crash mid-snapshot leaves a garbage tmp: load ignores it.
        std::fs::write(dir.join(SNAPSHOT_TMP), b"partial garbage").unwrap();
        assert_eq!(load_snapshot(&dir).unwrap().unwrap().epoch, 1);
        // But a corrupt snapshot.bin must error, not silently start empty.
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_snapshot(&dir).is_err());
        // Truncation is also corruption.
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_snapshot(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
