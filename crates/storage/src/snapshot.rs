//! Atomic snapshots of live service state.
//!
//! A snapshot file is one CRC-framed [`SnapshotData`] payload behind a
//! `CFXS` header, closed by a **full-file CRC trailer** (covering
//! header and frame), written to `snapshot.tmp`, fsynced, then renamed
//! over `snapshot.bin` (with a directory fsync) — so `snapshot.bin` is
//! always either the previous complete snapshot or the new complete
//! snapshot, never a partial write. A crash mid-snapshot leaves a
//! `snapshot.tmp` that [`load_snapshot`] ignores and [`Storage::open`]
//! deletes. The trailer catches what the frame checksum alone cannot:
//! bit rot in the header, the frame length prefix, or the trailer
//! region itself — any flipped bit anywhere in the file surfaces as a
//! typed [`StorageError::Corrupt`], never as a silently different
//! recovered state.
//!
//! [`Storage::open`]: crate::Storage::open
//! [`StorageError::Corrupt`]: crate::StorageError::Corrupt

use crate::codec::{self};
use crate::events::SnapshotData;
use crate::vfs::StorageFs;
use crate::StorageError;
use std::path::Path;

const MAGIC: &[u8; 4] = b"CFXS";
/// Version 2 added the full-file CRC trailer.
const VERSION: u32 = 2;
/// Trailing full-file CRC, little-endian `u32`.
const TRAILER: usize = 4;

/// File name of the current snapshot inside a data dir.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Scratch name used while writing (ignored by recovery).
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Write `data` atomically into `dir` through `fs`.
pub fn write_snapshot(fs: &dyn StorageFs, dir: &Path, data: &SnapshotData) -> std::io::Result<()> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let payload = data.encode();
    let mut bytes = Vec::with_capacity(payload.len() + 16 + TRAILER);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&codec::frame(&payload));
    let crc = codec::crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    {
        let mut file = fs.create_truncated(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    fs.rename(&tmp, &dir.join(SNAPSHOT_FILE))?;
    // Persist the rename itself (directory entry) where supported.
    let _ = fs.sync_dir(dir);
    Ok(())
}

/// Load the current snapshot from `dir`. `Ok(None)` when no snapshot
/// exists; `Err` when one exists but is unreadable (version mismatch or
/// corruption — recovery must not silently start empty over real
/// state). Corruption anywhere in the file is a typed
/// [`StorageError::Corrupt`].
pub fn load_snapshot(dir: &Path) -> Result<Option<SnapshotData>, StorageError> {
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::Io(e)),
    };
    let corrupt = |offset: u64, detail: &str| StorageError::Corrupt {
        file: path.display().to_string(),
        offset,
        detail: detail.to_string(),
    };
    if bytes.len() < 8 + TRAILER {
        return Err(corrupt(0, "truncated"));
    }
    if &bytes[0..4] != MAGIC {
        return Err(corrupt(0, "bad magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(corrupt(
            4,
            &format!("format version {version} (this build reads {VERSION})"),
        ));
    }
    // Full-file integrity first: any flipped bit anywhere (header,
    // frame length, payload, trailer) fails here with a typed error.
    let body = &bytes[..bytes.len() - TRAILER];
    let stored = u32::from_le_bytes(bytes[bytes.len() - TRAILER..].try_into().unwrap());
    if codec::crc32(body) != stored {
        return Err(corrupt(0, "full-file CRC mismatch"));
    }
    let (payload, _) = codec::read_frame(&body[8..])
        .map_err(|e| corrupt(8, &e.to_string()))?
        .ok_or_else(|| corrupt(8, "truncated frame"))?;
    let data = SnapshotData::decode(payload).map_err(|e| corrupt(8, &e.to_string()))?;
    Ok(Some(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::SessionSnapshot;
    use crate::vfs::RealFs;
    use cerfix_relation::Value;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cerfix-snapshot-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(epoch: u64) -> SnapshotData {
        SnapshotData {
            epoch,
            fingerprint: 11,
            rules_dsl: "er r: match a=a fix b:=b when ()".into(),
            next_session_id: 5,
            master_appended: vec![],
            sessions: vec![SessionSnapshot {
                session: 1,
                tuple_id: 1,
                rounds: 1,
                values: vec![Value::str("a"), Value::Null],
                validated: vec![0],
                user_validated: vec![0],
                auto_validated: vec![],
            }],
        }
    }

    #[test]
    fn write_load_round_trip_and_overwrite() {
        let dir = tmp_dir("round-trip");
        assert!(load_snapshot(&dir).unwrap().is_none());
        write_snapshot(&RealFs, &dir, &sample(1)).unwrap();
        assert_eq!(load_snapshot(&dir).unwrap().unwrap(), sample(1));
        write_snapshot(&RealFs, &dir, &sample(2)).unwrap();
        assert_eq!(load_snapshot(&dir).unwrap().unwrap().epoch, 2);
        assert!(!dir.join(SNAPSHOT_TMP).exists(), "tmp renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_tmp_is_ignored_and_corrupt_bin_is_a_typed_error() {
        let dir = tmp_dir("partial");
        write_snapshot(&RealFs, &dir, &sample(1)).unwrap();
        // A crash mid-snapshot leaves a garbage tmp: load ignores it.
        std::fs::write(dir.join(SNAPSHOT_TMP), b"partial garbage").unwrap();
        assert_eq!(load_snapshot(&dir).unwrap().unwrap().epoch, 1);
        // But a corrupt snapshot.bin must error, not silently start
        // empty — and the full-file trailer types EVERY flipped bit.
        let path = dir.join(SNAPSHOT_FILE);
        let full = std::fs::read(&path).unwrap();
        for idx in [0, 5, 9, full.len() / 2, full.len() - 2] {
            let mut bent = full.clone();
            bent[idx] ^= 0x10;
            std::fs::write(&path, &bent).unwrap();
            assert!(
                matches!(load_snapshot(&dir), Err(StorageError::Corrupt { .. })),
                "flip at {idx} must be typed corruption"
            );
        }
        // Truncation is also corruption.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            load_snapshot(&dir),
            Err(StorageError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
