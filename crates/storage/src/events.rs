//! The durable vocabulary: journal events, session snapshots, audit
//! records — what the service writes ahead and replays on recovery.
//!
//! Replay is *semantic*: a [`JournalEvent::SessionValidated`] stores the
//! resolved user assertions, not the rule firings they caused — recovery
//! re-runs the (deterministic) correcting process against the same rules
//! and master data, so a recovered session carries exactly the validated
//! `AttrSet`s and pending fixes the live one had, at a fraction of the
//! journal bytes. Rule reloads are journaled for the same reason: replay
//! must run each validation against the rule set that was active when it
//! happened.

use crate::codec::{CodecError, Decoder, Encoder};
use cerfix::{AuditRecord, CellEvent};
use cerfix_relation::Value;

/// One entry in the write-ahead session journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A session was opened for one input tuple.
    SessionCreated {
        /// Server-assigned session id.
        session: u64,
        /// The raw tuple as entered, in schema order.
        values: Vec<Value>,
    },
    /// The user asserted attribute values; the correcting process ran.
    SessionValidated {
        /// Server-assigned session id.
        session: u64,
        /// Resolved `(attribute id, asserted value)` pairs, in the order
        /// they were applied.
        validations: Vec<(u32, Value)>,
    },
    /// The session was committed (final state extracted, entry removed).
    SessionCommitted {
        /// Server-assigned session id.
        session: u64,
    },
    /// The session was aborted by the client.
    SessionAborted {
        /// Server-assigned session id.
        session: u64,
    },
    /// Sessions reaped by idle eviction (one event per sweep).
    SessionsEvicted {
        /// The evicted session ids.
        sessions: Vec<u64>,
    },
    /// The rule set was hot-swapped. Recovery re-parses `dsl` so later
    /// events replay against the right rules.
    RulesReloaded {
        /// Canonical DSL rendering of the new rule set.
        dsl: String,
        /// Fingerprint of the new rule set (sanity-checked on replay).
        fingerprint: u64,
    },
    /// Rows were appended to the master repository. Recovery re-applies
    /// them in order, so later session events replay against the master
    /// state that was live when they happened.
    MasterAppended {
        /// The appended rows, in append order, each in master-schema
        /// order.
        rows: Vec<Vec<Value>>,
    },
    /// A runtime-tunable configuration knob was changed (`config.set`).
    /// Replayed on recovery so operator tuning survives a restart.
    ConfigSet {
        /// Knob name (e.g. `slow_ms`, `trace_buffer`, `diag_buffer`).
        key: String,
        /// The new value.
        value: u64,
    },
}

impl JournalEvent {
    /// Short kind name, for diagnostics (`cerfix recover --inspect`).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::SessionCreated { .. } => "session.created",
            JournalEvent::SessionValidated { .. } => "session.validated",
            JournalEvent::SessionCommitted { .. } => "session.committed",
            JournalEvent::SessionAborted { .. } => "session.aborted",
            JournalEvent::SessionsEvicted { .. } => "sessions.evicted",
            JournalEvent::RulesReloaded { .. } => "rules.reloaded",
            JournalEvent::MasterAppended { .. } => "master.appended",
            JournalEvent::ConfigSet { .. } => "config.set",
        }
    }

    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            JournalEvent::SessionCreated { session, values } => {
                enc.put_u8(1);
                enc.put_u64(*session);
                enc.put_values(values);
            }
            JournalEvent::SessionValidated {
                session,
                validations,
            } => {
                enc.put_u8(2);
                enc.put_u64(*session);
                enc.put_u32(validations.len() as u32);
                for (attr, value) in validations {
                    enc.put_u32(*attr);
                    enc.put_value(value);
                }
            }
            JournalEvent::SessionCommitted { session } => {
                enc.put_u8(3);
                enc.put_u64(*session);
            }
            JournalEvent::SessionAborted { session } => {
                enc.put_u8(4);
                enc.put_u64(*session);
            }
            JournalEvent::SessionsEvicted { sessions } => {
                enc.put_u8(5);
                enc.put_u32(sessions.len() as u32);
                for &id in sessions {
                    enc.put_u64(id);
                }
            }
            JournalEvent::RulesReloaded { dsl, fingerprint } => {
                enc.put_u8(6);
                enc.put_str(dsl);
                enc.put_u64(*fingerprint);
            }
            JournalEvent::MasterAppended { rows } => {
                enc.put_u8(7);
                enc.put_u32(rows.len() as u32);
                for row in rows {
                    enc.put_values(row);
                }
            }
            JournalEvent::ConfigSet { key, value } => {
                enc.put_u8(8);
                enc.put_str(key);
                enc.put_u64(*value);
            }
        }
        enc.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<JournalEvent, CodecError> {
        let mut dec = Decoder::new(payload);
        let event = match dec.get_u8()? {
            1 => JournalEvent::SessionCreated {
                session: dec.get_u64()?,
                values: dec.get_values()?,
            },
            2 => {
                let session = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                if n > payload.len() {
                    return Err(CodecError(format!("validation count {n} exceeds payload")));
                }
                let validations = (0..n)
                    .map(|_| Ok((dec.get_u32()?, dec.get_value()?)))
                    .collect::<Result<Vec<_>, CodecError>>()?;
                JournalEvent::SessionValidated {
                    session,
                    validations,
                }
            }
            3 => JournalEvent::SessionCommitted {
                session: dec.get_u64()?,
            },
            4 => JournalEvent::SessionAborted {
                session: dec.get_u64()?,
            },
            5 => {
                let n = dec.get_u32()? as usize;
                if n * 8 > payload.len() {
                    return Err(CodecError(format!("eviction count {n} exceeds payload")));
                }
                JournalEvent::SessionsEvicted {
                    sessions: (0..n)
                        .map(|_| dec.get_u64())
                        .collect::<Result<Vec<_>, CodecError>>()?,
                }
            }
            6 => JournalEvent::RulesReloaded {
                dsl: dec.get_str()?,
                fingerprint: dec.get_u64()?,
            },
            7 => {
                let n = dec.get_u32()? as usize;
                if n > payload.len() {
                    return Err(CodecError(format!("row count {n} exceeds payload")));
                }
                JournalEvent::MasterAppended {
                    rows: (0..n)
                        .map(|_| dec.get_values())
                        .collect::<Result<Vec<_>, CodecError>>()?,
                }
            }
            8 => JournalEvent::ConfigSet {
                key: dec.get_str()?,
                value: dec.get_u64()?,
            },
            tag => return Err(CodecError(format!("unknown journal event tag {tag}"))),
        };
        dec.finish()?;
        Ok(event)
    }
}

/// One live session's full state inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Server-assigned session id.
    pub session: u64,
    /// Monitor tuple id (audit attribution).
    pub tuple_id: u64,
    /// Completed interaction rounds.
    pub rounds: u64,
    /// Current cell values (fixes already applied).
    pub values: Vec<Value>,
    /// All validated attribute ids.
    pub validated: Vec<u32>,
    /// Attribute ids validated by the user.
    pub user_validated: Vec<u32>,
    /// Attribute ids validated automatically by rules.
    pub auto_validated: Vec<u32>,
}

impl SessionSnapshot {
    pub(crate) fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        enc.put_u64(self.tuple_id);
        enc.put_u64(self.rounds);
        enc.put_values(&self.values);
        enc.put_u32_list(&self.validated);
        enc.put_u32_list(&self.user_validated);
        enc.put_u32_list(&self.auto_validated);
    }

    pub(crate) fn decode_from(dec: &mut Decoder<'_>) -> Result<SessionSnapshot, CodecError> {
        Ok(SessionSnapshot {
            session: dec.get_u64()?,
            tuple_id: dec.get_u64()?,
            rounds: dec.get_u64()?,
            values: dec.get_values()?,
            validated: dec.get_u32_list()?,
            user_validated: dec.get_u32_list()?,
            auto_validated: dec.get_u32_list()?,
        })
    }
}

/// A point-in-time snapshot of service state: everything recovery needs
/// besides the journal suffix written after it.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// Snapshot epoch; the journal whose header carries the same epoch
    /// holds exactly the events after this snapshot.
    pub epoch: u64,
    /// Fingerprint of the rule set active at snapshot time.
    pub fingerprint: u64,
    /// Canonical DSL of that rule set (re-parsed when the fingerprint
    /// differs from the boot rules, i.e. after a hot reload).
    pub rules_dsl: String,
    /// The session-id allocator's next id.
    pub next_session_id: u64,
    /// Master rows appended since boot (journaled appends survive the
    /// journal truncation a snapshot performs by riding in it).
    pub master_appended: Vec<Vec<Value>>,
    /// Every live (uncommitted) session.
    pub sessions: Vec<SessionSnapshot>,
}

impl SnapshotData {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(self.epoch);
        enc.put_u64(self.fingerprint);
        enc.put_str(&self.rules_dsl);
        enc.put_u64(self.next_session_id);
        enc.put_u32(self.master_appended.len() as u32);
        for row in &self.master_appended {
            enc.put_values(row);
        }
        enc.put_u32(self.sessions.len() as u32);
        for session in &self.sessions {
            session.encode_into(&mut enc);
        }
        enc.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<SnapshotData, CodecError> {
        let mut dec = Decoder::new(payload);
        let epoch = dec.get_u64()?;
        let fingerprint = dec.get_u64()?;
        let rules_dsl = dec.get_str()?;
        let next_session_id = dec.get_u64()?;
        let n_rows = dec.get_u32()? as usize;
        if n_rows > payload.len() {
            return Err(CodecError(format!(
                "master row count {n_rows} exceeds payload"
            )));
        }
        let master_appended = (0..n_rows)
            .map(|_| dec.get_values())
            .collect::<Result<Vec<_>, CodecError>>()?;
        let n = dec.get_u32()? as usize;
        if n > payload.len() {
            return Err(CodecError(format!("session count {n} exceeds payload")));
        }
        let sessions = (0..n)
            .map(|_| SessionSnapshot::decode_from(&mut dec))
            .collect::<Result<Vec<_>, CodecError>>()?;
        dec.finish()?;
        Ok(SnapshotData {
            epoch,
            fingerprint,
            rules_dsl,
            next_session_id,
            master_appended,
            sessions,
        })
    }
}

/// Encode one audit record as a spill-segment frame payload.
pub fn encode_audit_record(record: &AuditRecord) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(record.tuple_id as u64);
    enc.put_u32(record.attr as u32);
    enc.put_u64(record.round as u64);
    match &record.event {
        CellEvent::UserValidated { old, new } => {
            enc.put_u8(1);
            enc.put_value(old);
            enc.put_value(new);
        }
        CellEvent::RuleFixed {
            rule,
            master_row,
            old,
            new,
        } => {
            enc.put_u8(2);
            enc.put_u64(*rule as u64);
            enc.put_u64(*master_row as u64);
            enc.put_value(old);
            enc.put_value(new);
        }
        CellEvent::RuleConfirmed { rule } => {
            enc.put_u8(3);
            enc.put_u64(*rule as u64);
        }
    }
    enc.into_bytes()
}

/// Decode one audit record from a spill-segment frame payload.
pub fn decode_audit_record(payload: &[u8]) -> Result<AuditRecord, CodecError> {
    let mut dec = Decoder::new(payload);
    let tuple_id = dec.get_u64()? as usize;
    let attr = dec.get_u32()? as usize;
    let round = dec.get_u64()? as usize;
    let event = match dec.get_u8()? {
        1 => CellEvent::UserValidated {
            old: dec.get_value()?,
            new: dec.get_value()?,
        },
        2 => CellEvent::RuleFixed {
            rule: dec.get_u64()? as usize,
            master_row: dec.get_u64()? as usize,
            old: dec.get_value()?,
            new: dec.get_value()?,
        },
        3 => CellEvent::RuleConfirmed {
            rule: dec.get_u64()? as usize,
        },
        tag => return Err(CodecError(format!("unknown audit event tag {tag}"))),
    };
    dec.finish()?;
    Ok(AuditRecord {
        tuple_id,
        attr,
        round,
        event,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::SessionCreated {
                session: 1,
                values: vec![Value::str("M."), Value::Null, Value::Int(7)],
            },
            JournalEvent::SessionValidated {
                session: 1,
                validations: vec![(0, Value::str("Mark")), (2, Value::Float(1.5))],
            },
            JournalEvent::SessionValidated {
                session: 1,
                validations: vec![],
            },
            JournalEvent::SessionCommitted { session: 1 },
            JournalEvent::SessionAborted { session: 9 },
            JournalEvent::SessionsEvicted {
                sessions: vec![2, 3, 5],
            },
            JournalEvent::SessionsEvicted { sessions: vec![] },
            JournalEvent::RulesReloaded {
                dsl: "er phi1: match zip=zip fix AC:=AC when ()".into(),
                fingerprint: 0xFEED_FACE_CAFE_BEEF,
            },
            JournalEvent::MasterAppended {
                rows: vec![
                    vec![Value::str("G12"), Value::str("0141")],
                    vec![Value::Null, Value::Int(4)],
                ],
            },
            JournalEvent::MasterAppended { rows: vec![] },
            JournalEvent::ConfigSet {
                key: "slow_ms".into(),
                value: 250,
            },
        ]
    }

    #[test]
    fn journal_events_round_trip() {
        for event in sample_events() {
            let bytes = event.encode();
            let back = JournalEvent::decode(&bytes).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn journal_event_rejects_garbage() {
        assert!(JournalEvent::decode(&[]).is_err());
        assert!(JournalEvent::decode(&[99]).is_err());
        // Valid event with a trailing byte is rejected (strict frames).
        let mut bytes = JournalEvent::SessionCommitted { session: 3 }.encode();
        bytes.push(0);
        assert!(JournalEvent::decode(&bytes).is_err());
        // Truncated payload.
        let bytes = JournalEvent::SessionCommitted { session: 3 }.encode();
        assert!(JournalEvent::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn snapshot_round_trips() {
        let data = SnapshotData {
            epoch: 4,
            fingerprint: 77,
            rules_dsl: "er r: match a=a fix b:=b when ()".into(),
            next_session_id: 42,
            master_appended: vec![vec![Value::str("G12"), Value::str("Gla")]],
            sessions: vec![
                SessionSnapshot {
                    session: 7,
                    tuple_id: 7,
                    rounds: 2,
                    values: vec![Value::str("x"), Value::Null],
                    validated: vec![0, 1],
                    user_validated: vec![0],
                    auto_validated: vec![1],
                },
                SessionSnapshot {
                    session: 12,
                    tuple_id: 12,
                    rounds: 0,
                    values: vec![],
                    validated: vec![],
                    user_validated: vec![],
                    auto_validated: vec![],
                },
            ],
        };
        let bytes = data.encode();
        assert_eq!(SnapshotData::decode(&bytes).unwrap(), data);
        assert!(SnapshotData::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn audit_records_round_trip() {
        let records = vec![
            AuditRecord {
                tuple_id: 3,
                attr: 1,
                round: 1,
                event: CellEvent::UserValidated {
                    old: Value::Null,
                    new: Value::str("Edi"),
                },
            },
            AuditRecord {
                tuple_id: 4,
                attr: 2,
                round: 2,
                event: CellEvent::RuleFixed {
                    rule: 5,
                    master_row: 9,
                    old: Value::str("020"),
                    new: Value::str("131"),
                },
            },
            AuditRecord {
                tuple_id: 5,
                attr: 0,
                round: 1,
                event: CellEvent::RuleConfirmed { rule: usize::MAX },
            },
        ];
        for record in records {
            let bytes = encode_audit_record(&record);
            assert_eq!(decode_audit_record(&bytes).unwrap(), record);
        }
    }
}
