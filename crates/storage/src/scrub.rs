//! Integrity scrub: walk every durable file in a data directory and
//! verify its checksums without mutating anything.
//!
//! The scrub is the detection half of the corruption story (the repair
//! half is replica re-sync, see the server crate): it distinguishes a
//! *torn tail* — the legal residue of a crash mid-append, which
//! recovery truncates — from *corruption* — a complete frame whose CRC
//! no longer matches, i.e. bit rot under data the system already
//! acknowledged. Torn tails are reported as byte counts; corruption
//! becomes a typed [`Corruption`] entry with file, offset, and detail.
//!
//! Two entry points:
//!
//! * [`scrub_dir`] — offline, against a quiesced directory (the
//!   `cerfix scrub --data-dir` CLI). Reads whole files.
//! * [`Storage::scrub`](crate::Storage::scrub) — online, against a live
//!   node (the `scrub` protocol op). Reads only the *durable* prefix of
//!   the journal and audit segment, so bytes the flusher is still
//!   writing are never misread as damage.
//!
//! Every file is scanned independently: a corrupt journal does not
//! hide a corrupt snapshot.

use crate::journal::{scan_journal_bytes, ScanMode};
use crate::{snapshot, spill, StorageError, AUDIT_FILE, JOURNAL_FILE};
use std::path::Path;

/// One verified-bad region found by a scrub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// The damaged file (full path as scanned).
    pub file: String,
    /// Byte offset of the first damaged region.
    pub offset: u64,
    /// What failed to verify (CRC mismatch, bad magic, ...).
    pub detail: String,
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {}: {}", self.file, self.offset, self.detail)
    }
}

/// Result of scrubbing one data directory.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Complete, checksum-valid journal frames.
    pub journal_frames: usize,
    /// Journal bytes that are a legal torn tail (crash residue).
    pub journal_torn_bytes: u64,
    /// Whether a snapshot exists (and, when no corruption entry names
    /// it, verified clean including its full-file CRC trailer).
    pub snapshot_present: bool,
    /// Complete, checksum-valid audit records.
    pub audit_records: usize,
    /// Audit-segment bytes that are a legal torn tail.
    pub audit_torn_bytes: u64,
    /// Everything that failed verification. Empty means clean.
    pub corruptions: Vec<Corruption>,
}

impl ScrubReport {
    /// True when no corruption was found (torn tails are still legal).
    pub fn clean(&self) -> bool {
        self.corruptions.is_empty()
    }
}

/// Scrub a quiesced data directory offline (every byte of every file).
/// `Err` only for environmental I/O failures — verification failures
/// are collected in the report, not errored.
pub fn scrub_dir(dir: &Path) -> std::io::Result<ScrubReport> {
    scrub_with_limits(dir, None, None)
}

/// Scrub with optional byte limits on the append-only files — the
/// online path passes each file's durable length so concurrently
/// in-flight writes past it are ignored rather than misdiagnosed.
pub(crate) fn scrub_with_limits(
    dir: &Path,
    journal_limit: Option<u64>,
    audit_limit: Option<u64>,
) -> std::io::Result<ScrubReport> {
    let mut report = ScrubReport::default();
    scrub_journal(&dir.join(JOURNAL_FILE), journal_limit, &mut report)?;
    scrub_snapshot(dir, &mut report)?;
    scrub_audit(&dir.join(AUDIT_FILE), audit_limit, &mut report)?;
    Ok(report)
}

/// Read `path` (missing → empty), clipped to `limit` bytes.
fn read_limited(path: &Path, limit: Option<u64>) -> std::io::Result<Vec<u8>> {
    let mut bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    if let Some(limit) = limit {
        bytes.truncate(limit as usize);
    }
    Ok(bytes)
}

fn scrub_journal(path: &Path, limit: Option<u64>, report: &mut ScrubReport) -> std::io::Result<()> {
    let bytes = read_limited(path, limit)?;
    let label = path.display().to_string();
    match scan_journal_bytes(&label, &bytes, ScanMode::Strict) {
        Ok(scan) => {
            report.journal_frames = scan.events.len();
            report.journal_torn_bytes = scan.torn_bytes;
        }
        Err(StorageError::Corrupt {
            file,
            offset,
            detail,
        }) => {
            // Count the clean prefix anyway so the report shows how
            // much survives (what a tolerant follower would keep).
            if let Ok(scan) = scan_journal_bytes(&label, &bytes, ScanMode::Tolerant) {
                report.journal_frames = scan.events.len();
                report.journal_torn_bytes = scan.torn_bytes;
            }
            report.corruptions.push(Corruption {
                file,
                offset,
                detail,
            });
        }
        Err(StorageError::Io(e)) => return Err(e),
    }
    Ok(())
}

fn scrub_snapshot(dir: &Path, report: &mut ScrubReport) -> std::io::Result<()> {
    match snapshot::load_snapshot(dir) {
        Ok(Some(_)) => report.snapshot_present = true,
        Ok(None) => {}
        Err(StorageError::Corrupt {
            file,
            offset,
            detail,
        }) => {
            report.snapshot_present = true;
            report.corruptions.push(Corruption {
                file,
                offset,
                detail,
            });
        }
        Err(StorageError::Io(e)) => return Err(e),
    }
    Ok(())
}

fn scrub_audit(path: &Path, limit: Option<u64>, report: &mut ScrubReport) -> std::io::Result<()> {
    let bytes = read_limited(path, limit)?;
    let label = path.display().to_string();
    let corrupt = |offset: u64, detail: String| Corruption {
        file: label.clone(),
        offset,
        detail,
    };
    if bytes.is_empty() {
        return Ok(()); // no segment yet
    }
    if bytes.len() < spill::SEGMENT_HEADER as usize {
        report.audit_torn_bytes = bytes.len() as u64;
        return Ok(());
    }
    if &bytes[0..4] != spill::MAGIC {
        report.corruptions.push(corrupt(0, "bad magic".to_string()));
        return Ok(());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != spill::VERSION {
        report.corruptions.push(corrupt(
            4,
            format!(
                "format version {version} (this build reads {})",
                spill::VERSION
            ),
        ));
        return Ok(());
    }
    // Same classification as the journal scan: an incomplete trailing
    // frame is a torn tail; a complete frame failing its CRC (or
    // decoding to garbage) is corruption.
    let mut at = spill::SEGMENT_HEADER as usize;
    loop {
        match crate::codec::read_frame(&bytes[at..]) {
            Ok(None) => {
                report.audit_torn_bytes = (bytes.len() - at) as u64;
                break;
            }
            Ok(Some((payload, frame_len))) => {
                if let Err(e) = crate::events::decode_audit_record(payload) {
                    report
                        .corruptions
                        .push(corrupt(at as u64, format!("record payload: {e}")));
                    break;
                }
                report.audit_records += 1;
                at += frame_len;
            }
            Err(e) => {
                report.corruptions.push(corrupt(at as u64, e.to_string()));
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::JournalEvent;
    use crate::{Storage, StorageConfig};
    use cerfix::{AuditRecord, AuditSink, CellEvent};
    use cerfix_relation::Value;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cerfix-scrub-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populated(dir: &Path) -> std::io::Result<()> {
        let (storage, _) = Storage::open(StorageConfig::new(dir))?;
        for session in 1..=4u64 {
            let seq = storage.append(&JournalEvent::SessionCreated {
                session,
                values: vec![Value::str("v"), Value::Int(session as i64)],
            });
            storage.spill().append(&AuditRecord {
                tuple_id: session as usize,
                attr: 0,
                round: 1,
                event: CellEvent::UserValidated {
                    old: Value::Null,
                    new: Value::str("v"),
                },
            });
            storage.sync(seq).unwrap();
        }
        storage.spill().sync()?;
        Ok(())
    }

    #[test]
    fn clean_directory_scrubs_clean_and_counts_everything() {
        let dir = tmp_dir("clean");
        populated(&dir).unwrap();
        let report = scrub_dir(&dir).unwrap();
        assert!(report.clean(), "unexpected: {:?}", report.corruptions);
        assert_eq!(report.journal_frames, 4);
        assert_eq!(report.audit_records, 4);
        assert_eq!(report.journal_torn_bytes, 0);
        assert_eq!(report.audit_torn_bytes, 0);
        assert!(!report.snapshot_present, "no snapshot was taken");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn each_file_reports_corruption_independently() {
        let dir = tmp_dir("independent");
        populated(&dir).unwrap();
        // Flip one payload byte mid-journal and one mid-audit.
        for name in [crate::JOURNAL_FILE, crate::AUDIT_FILE] {
            let path = dir.join(name);
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
        }
        let report = scrub_dir(&dir).unwrap();
        assert_eq!(report.corruptions.len(), 2, "{:?}", report.corruptions);
        assert!(report
            .corruptions
            .iter()
            .any(|c| c.file.ends_with(crate::JOURNAL_FILE)));
        assert!(report
            .corruptions
            .iter()
            .any(|c| c.file.ends_with(crate::AUDIT_FILE)));
        // The clean prefixes are still counted.
        assert!(report.journal_frames >= 1);
        assert!(report.audit_records >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tails_are_reported_but_not_corruption() {
        let dir = tmp_dir("torn");
        populated(&dir).unwrap();
        for name in [crate::JOURNAL_FILE, crate::AUDIT_FILE] {
            let path = dir.join(name);
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        }
        let report = scrub_dir(&dir).unwrap();
        assert!(report.clean(), "tears are legal: {:?}", report.corruptions);
        assert_eq!(report.journal_frames, 3);
        assert_eq!(report.audit_records, 3);
        assert!(report.journal_torn_bytes > 0);
        assert!(report.audit_torn_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
