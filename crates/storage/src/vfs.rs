//! Pluggable filesystem layer — the storage crate's *write path* in
//! trait form, so disk faults can be injected deterministically.
//!
//! Every syscall that can lose or corrupt data (open-for-write, write,
//! `fdatasync`/`fsync`, `set_len`, rename, directory sync) goes through
//! [`StorageFs`] / [`StorageFile`]. Read-only paths (recovery scans,
//! replication cursor reads, `scrub`) deliberately stay on `std::fs`:
//! a fault plan corrupts what reaches the disk, and the ordinary read
//! path must then *detect* it — exactly the production contract.
//!
//! Two implementations ship:
//!
//! * [`RealFs`] — a zero-cost passthrough to `std::fs` (the default in
//!   [`StorageConfig`](crate::StorageConfig)).
//! * [`FaultFs`] — a deterministic fault injector driven by a
//!   [`FaultPlan`]: ENOSPC once a byte budget is exhausted, EIO on the
//!   Kth fsync, a torn write (half the buffer lands, then EIO), a
//!   bit-flip written to disk as if the sector rotted, and renames
//!   silently dropped (a crash before the directory entry was synced).
//!   Counters are shared across every file the instance opens, so a
//!   fault plan addresses "the Kth write *anywhere* in this data dir" —
//!   what a fault schedule needs to be reproducible.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An open, writable storage file. Mirrors the `std::fs::File` subset
/// the journal, snapshot and audit-spill writers use.
pub trait StorageFile: Send + std::fmt::Debug {
    /// Write the whole buffer (the injection point for ENOSPC, torn
    /// writes and bit-flips).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync` — the durability point fault plans target for
    /// fsyncgate-style EIO.
    fn sync_data(&mut self) -> io::Result<()>;
    /// `fsync` (data + metadata), used before snapshot renames.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate or extend to `len`.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Move the file cursor.
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64>;
    /// Read into `buf`, returning the count (reads are never faulted —
    /// see the module docs).
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Fill `buf` exactly or fail with `UnexpectedEof`.
    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let mut at = 0;
        while at < buf.len() {
            match self.read(&mut buf[at..])? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "failed to fill whole buffer",
                    ))
                }
                n => at += n,
            }
        }
        Ok(())
    }
    /// Current file length in bytes.
    fn file_len(&self) -> io::Result<u64>;
}

/// A filesystem the storage layer can be opened against.
pub trait StorageFs: Send + Sync + std::fmt::Debug {
    /// Open `path` read+write, creating it if absent, never truncating.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Create `path` truncated (the snapshot tmp-file pattern).
    fn create_truncated(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Atomically rename `from` over `to` (the injection point for a
    /// rename dropped before the directory entry was durable).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// fsync the directory itself so a rename survives power loss.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Free bytes available under `dir`, when the implementation can
    /// tell. [`RealFs`] returns `None` (`std` exposes no `statvfs`; the
    /// server layers its own probe on top); [`FaultFs`] reports the
    /// remaining injected byte budget so watermark tests are exact.
    fn free_bytes(&self, dir: &Path) -> Option<u64>;
}

/// The production filesystem: a passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

#[derive(Debug)]
struct RealFile(File);

impl StorageFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.0.seek(pos)
    }
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
    fn file_len(&self) -> io::Result<u64> {
        self.0.metadata().map(|m| m.len())
    }
}

impl StorageFs for RealFs {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn create_truncated(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
    fn free_bytes(&self, _dir: &Path) -> Option<u64> {
        None
    }
}

/// A deterministic disk-fault schedule. All counters are 1-based and
/// global across every file opened through the owning [`FaultFs`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Total write budget in bytes: once exhausted, writes land a
    /// partial prefix and fail with `StorageFull` (ENOSPC). Also backs
    /// [`StorageFs::free_bytes`] so watermark probes see it coming.
    pub capacity_bytes: Option<u64>,
    /// Fail the Kth `sync_data`/`sync_all` with EIO — the fsyncgate
    /// scenario (data handed to the kernel, durability unknown).
    pub fail_fsync_at: Option<u64>,
    /// The Kth write lands only its first half, then fails with EIO —
    /// a torn write.
    pub torn_write_at: Option<u64>,
    /// The Kth write has one byte (at the given index, modulo the
    /// buffer length) flipped before it reaches the disk — silent
    /// media corruption that only a checksum can catch.
    pub bitflip_write_at: Option<(u64, u64)>,
    /// Renames report success but never happen — what a crash after
    /// `rename(2)` but before the directory fsync leaves behind.
    pub drop_renames: bool,
}

#[derive(Debug)]
struct FaultState {
    plan: Mutex<FaultPlan>,
    writes: AtomicU64,
    fsyncs: AtomicU64,
    bytes_written: AtomicU64,
    renames_dropped: AtomicU64,
}

/// The fault-injecting filesystem. Clones share one plan and one set of
/// counters, so a test can keep a handle while storage owns another.
#[derive(Debug, Clone)]
pub struct FaultFs {
    state: Arc<FaultState>,
}

impl FaultFs {
    /// A fault filesystem executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultFs {
        FaultFs {
            state: Arc::new(FaultState {
                plan: Mutex::new(plan),
                writes: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
                bytes_written: AtomicU64::new(0),
                renames_dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Replace the whole plan (counters keep running).
    pub fn set_plan(&self, plan: FaultPlan) {
        *lock(&self.state.plan) = plan;
    }

    /// Mutate the plan in place mid-test.
    pub fn update_plan(&self, f: impl FnOnce(&mut FaultPlan)) {
        f(&mut lock(&self.state.plan));
    }

    /// Grow the ENOSPC budget — "the operator freed some disk".
    pub fn add_capacity(&self, extra: u64) {
        let mut plan = lock(&self.state.plan);
        if let Some(cap) = plan.capacity_bytes.as_mut() {
            *cap += extra;
        }
    }

    /// Writes issued so far (including failed ones).
    pub fn writes(&self) -> u64 {
        self.state.writes.load(Ordering::SeqCst)
    }

    /// fsyncs issued so far (including failed ones).
    pub fn fsyncs(&self) -> u64 {
        self.state.fsyncs.load(Ordering::SeqCst)
    }

    /// Bytes that actually reached the disk.
    pub fn bytes_written(&self) -> u64 {
        self.state.bytes_written.load(Ordering::SeqCst)
    }

    /// Renames silently swallowed by `drop_renames`.
    pub fn renames_dropped(&self) -> u64 {
        self.state.renames_dropped.load(Ordering::SeqCst)
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: File,
    state: Arc<FaultState>,
}

impl StorageFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let k = self.state.writes.fetch_add(1, Ordering::SeqCst) + 1;
        let plan = lock(&self.state.plan).clone();
        if let Some((at, byte)) = plan.bitflip_write_at {
            if at == k && !buf.is_empty() {
                // The write "succeeds": the corruption is silent.
                let mut flipped = buf.to_vec();
                let idx = (byte as usize) % flipped.len();
                flipped[idx] ^= 0x01;
                self.inner.write_all(&flipped)?;
                self.state
                    .bytes_written
                    .fetch_add(buf.len() as u64, Ordering::SeqCst);
                return Ok(());
            }
        }
        if plan.torn_write_at == Some(k) {
            let half = buf.len() / 2;
            self.inner.write_all(&buf[..half])?;
            self.state
                .bytes_written
                .fetch_add(half as u64, Ordering::SeqCst);
            return Err(io::Error::other("injected EIO (torn write)"));
        }
        if let Some(cap) = plan.capacity_bytes {
            let used = self.state.bytes_written.load(Ordering::SeqCst);
            if used + buf.len() as u64 > cap {
                // Like a real full disk: a prefix may still land.
                let allowed = cap.saturating_sub(used) as usize;
                self.inner.write_all(&buf[..allowed])?;
                self.state
                    .bytes_written
                    .fetch_add(allowed as u64, Ordering::SeqCst);
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected ENOSPC (write budget exhausted)",
                ));
            }
        }
        self.inner.write_all(buf)?;
        self.state
            .bytes_written
            .fetch_add(buf.len() as u64, Ordering::SeqCst);
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.faulted_sync()?;
        self.inner.sync_data()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.faulted_sync()?;
        self.inner.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }

    fn file_len(&self) -> io::Result<u64> {
        self.inner.metadata().map(|m| m.len())
    }
}

impl FaultFile {
    fn faulted_sync(&self) -> io::Result<()> {
        let k = self.state.fsyncs.fetch_add(1, Ordering::SeqCst) + 1;
        if lock(&self.state.plan).fail_fsync_at == Some(k) {
            return Err(io::Error::other("injected EIO (fsync failed)"));
        }
        Ok(())
    }
}

impl StorageFs for FaultFs {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let inner = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }
    fn create_truncated(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let inner = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if lock(&self.state.plan).drop_renames {
            self.state.renames_dropped.fetch_add(1, Ordering::SeqCst);
            return Ok(());
        }
        std::fs::rename(from, to)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
    fn free_bytes(&self, _dir: &Path) -> Option<u64> {
        let plan = lock(&self.state.plan);
        plan.capacity_bytes
            .map(|cap| cap.saturating_sub(self.state.bytes_written.load(Ordering::SeqCst)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cerfix-vfs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn enospc_lands_partial_prefix_then_fails() {
        let dir = tmp("enospc");
        let fs = FaultFs::new(FaultPlan {
            capacity_bytes: Some(10),
            ..FaultPlan::default()
        });
        let mut file = fs.open_rw(&dir.join("f")).unwrap();
        file.write_all(b"12345678").unwrap();
        let err = file.write_all(b"abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // 8 full + 2 partial bytes reached the disk.
        assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"12345678ab");
        assert_eq!(fs.free_bytes(&dir), Some(0));
        fs.add_capacity(100);
        file.write_all(b"more").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kth_fsync_fails_then_recovers() {
        let dir = tmp("fsync");
        let fs = FaultFs::new(FaultPlan {
            fail_fsync_at: Some(2),
            ..FaultPlan::default()
        });
        let mut file = fs.open_rw(&dir.join("f")).unwrap();
        file.write_all(b"x").unwrap();
        file.sync_data().unwrap();
        assert!(file.sync_data().is_err(), "second fsync injected EIO");
        file.sync_data().unwrap();
        assert_eq!(fs.fsyncs(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_lands_half_and_bitflip_lands_silently() {
        let dir = tmp("torn");
        let fs = FaultFs::new(FaultPlan {
            torn_write_at: Some(1),
            bitflip_write_at: Some((2, 0)),
            ..FaultPlan::default()
        });
        let mut file = fs.open_rw(&dir.join("f")).unwrap();
        assert!(file.write_all(b"abcdef").is_err());
        assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"abc");
        file.set_len(0).unwrap();
        file.seek(SeekFrom::Start(0)).unwrap();
        file.write_all(b"abcdef").unwrap(); // "succeeds", corrupted
        assert_eq!(std::fs::read(dir.join("f")).unwrap(), b"`bcdef");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_rename_leaves_target_untouched() {
        let dir = tmp("rename");
        std::fs::write(dir.join("a"), b"new").unwrap();
        std::fs::write(dir.join("b"), b"old").unwrap();
        let fs = FaultFs::new(FaultPlan {
            drop_renames: true,
            ..FaultPlan::default()
        });
        fs.rename(&dir.join("a"), &dir.join("b")).unwrap();
        assert_eq!(std::fs::read(dir.join("b")).unwrap(), b"old");
        assert_eq!(fs.renames_dropped(), 1);
        fs.set_plan(FaultPlan::default());
        fs.rename(&dir.join("a"), &dir.join("b")).unwrap();
        assert_eq!(std::fs::read(dir.join("b")).unwrap(), b"new");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
