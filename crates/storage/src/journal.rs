//! The crash-safe write-ahead session journal.
//!
//! Layout: a 20-byte header (`CFXJ` magic, format version, snapshot
//! epoch, header CRC) followed by length-prefixed, CRC-checksummed
//! event frames ([`codec::frame`]). Recovery reads the longest valid
//! frame prefix and truncates whatever a crash tore off mid-write; a
//! frame that is *complete but fails its checksum* is not a tear, it is
//! corruption, and [`scan_journal`] refuses with a typed
//! [`StorageError::Corrupt`] instead of silently dropping acked events
//! (a follower may opt into [`ScanMode::Tolerant`] and re-fetch the
//! corrupt suffix from its primary instead).
//!
//! Durability is **group-committed**: [`Journal::append`] only copies
//! the encoded frame into an in-memory pending buffer under a short
//! lock and returns a sequence number — no syscalls, no waiting behind
//! an fsync, on the request path. A dedicated flusher thread wakes on a
//! short interval (or when a waiter calls [`Journal::sync`]) and
//! retires the whole pending buffer with one `write` + one `fdatasync`,
//! so N concurrent requests share one disk round-trip instead of paying
//! one each. `sync(seq)` blocks until the fsync covering `seq` has
//! completed — the service calls it on `session.commit` (the protocol's
//! durability point) and lets every other op ride the background
//! cadence.
//!
//! ## Fault discipline
//!
//! A failed **write** is retryable: the file is repaired back to its
//! durable length, the failed frames return to the front of the pending
//! buffer, and in-flight [`sync`](Journal::sync) waiters covering them
//! fail with [`SyncError::WriteFailed`] instead of hanging (a later
//! retry may still land the frames — same contract as a quorum
//! timeout: the error says "not durable *yet*", not "lost").
//!
//! A failed **fsync** permanently poisons the journal. After `fdatasync`
//! reports an error, the kernel may have dropped the dirty pages while
//! clearing the error state, so retrying the fsync and seeing success
//! proves nothing about the data (the "fsyncgate" failure mode).
//! A poisoned journal never writes again; every `sync` fails with
//! [`SyncError::Poisoned`]. The only way out is
//! [`Journal::truncate_to_epoch`] — `set_len(0)` + a freshly written
//! and fsynced header is a new file whose entire contents are known
//! good, which is exactly what installing a snapshot produces.
//!
//! The pending buffer is tagged with the journal epoch: snapshot
//! truncation bumps the epoch while holding both locks, so a flusher
//! holding taken-but-unwritten pre-snapshot frames detects the bump and
//! discards them instead of writing them into the new epoch's file.
//!
//! [`codec::frame`]: crate::codec::frame
//! [`StorageError::Corrupt`]: crate::StorageError::Corrupt

use crate::codec::{self, CodecError};
use crate::events::JournalEvent;
use crate::spill::AuditSpill;
use crate::vfs::{StorageFile, StorageFs};
use crate::StorageError;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

const MAGIC: &[u8; 4] = b"CFXJ";
const VERSION: u32 = 2;
/// Header size: magic + version `u32` + epoch `u64` + header CRC `u32`.
pub const JOURNAL_HEADER: u64 = 20;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `StorageFull`, or raw ENOSPC from an OS that predates the kind.
fn is_enospc(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::StorageFull || e.raw_os_error() == Some(28)
}

/// How a scan treats a complete-but-corrupt frame (bit rot, as opposed
/// to the torn tail of a crashed append, which is always truncated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Refuse with [`StorageError::Corrupt`] — a primary must never
    /// silently drop events it acknowledged (the default).
    Strict,
    /// Truncate the corrupt suffix to the last valid frame and report
    /// it in [`JournalScan::corrupt_bytes`] — sound only for a replica
    /// that will re-fetch the suffix from its primary.
    Tolerant,
}

/// What a scan of an on-disk journal found.
#[derive(Debug)]
pub struct JournalScan {
    /// Epoch from the header (0 for a fresh/absent file).
    pub epoch: u64,
    /// Events in the valid prefix, in append order.
    pub events: Vec<JournalEvent>,
    /// File length of the valid prefix (header + complete frames).
    pub valid_len: u64,
    /// Bytes past the valid prefix (a torn tail from a crash; 0 when
    /// the journal shut down cleanly).
    pub torn_bytes: u64,
    /// Bytes discarded as *corrupt* (checksum-failed complete frames) —
    /// only ever non-zero under [`ScanMode::Tolerant`].
    pub corrupt_bytes: u64,
}

/// One batch of durable events served to a replication cursor by
/// [`Journal::read_durable_from`].
#[derive(Debug)]
pub struct CursorRead {
    /// Epoch of the journal file the events came from.
    pub epoch: u64,
    /// Total complete frames durable in this epoch's file — the
    /// primary's position; `durable_events - (offset + events.len())`
    /// is the reader's remaining lag in events.
    pub durable_events: u64,
    /// Events starting at the requested offset (empty when caught up
    /// or when the epoch changed under the reader).
    pub events: Vec<JournalEvent>,
}

/// Read and validate `path` without opening it for writing, refusing
/// corrupt frames ([`ScanMode::Strict`]). A missing file scans as an
/// empty epoch-0 journal.
pub fn scan_journal(path: &Path) -> Result<JournalScan, StorageError> {
    scan_journal_with(path, ScanMode::Strict)
}

/// [`scan_journal`] with an explicit corruption policy (used by
/// recovery and `cerfix recover --inspect`; followers scan tolerant).
pub fn scan_journal_with(path: &Path, mode: ScanMode) -> Result<JournalScan, StorageError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(StorageError::Io(e)),
    };
    scan_journal_bytes(&path.display().to_string(), &bytes, mode)
}

/// Scan an in-memory journal image (the whole file, or a durable
/// prefix of it when scrubbing online under concurrent appends).
pub(crate) fn scan_journal_bytes(
    file: &str,
    bytes: &[u8],
    mode: ScanMode,
) -> Result<JournalScan, StorageError> {
    if bytes.is_empty() {
        return Ok(JournalScan {
            epoch: 0,
            events: Vec::new(),
            valid_len: 0,
            torn_bytes: 0,
            corrupt_bytes: 0,
        });
    }
    if bytes.len() < JOURNAL_HEADER as usize {
        // Shorter than one header: the torn first write of a fresh
        // journal (there is nothing a complete frame could have acked).
        return Ok(JournalScan {
            epoch: 0,
            events: Vec::new(),
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
            corrupt_bytes: 0,
        });
    }
    let corrupt = |offset: u64, detail: String| StorageError::Corrupt {
        file: file.to_string(),
        offset,
        detail,
    };
    // A full-size file with a broken header is corruption, not a tear:
    // the header is written first and fsynced before any frame.
    let header_broken = if &bytes[0..4] != MAGIC {
        Some("bad magic".to_string())
    } else {
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(corrupt(
                4,
                format!("format version {version} (this build reads {VERSION})"),
            ));
        }
        let header_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        if codec::crc32(&bytes[0..16]) != header_crc {
            Some("header CRC mismatch".to_string())
        } else {
            None
        }
    };
    if let Some(detail) = header_broken {
        return match mode {
            ScanMode::Strict => Err(corrupt(0, detail)),
            ScanMode::Tolerant => Ok(JournalScan {
                epoch: 0,
                events: Vec::new(),
                valid_len: 0,
                torn_bytes: 0,
                corrupt_bytes: bytes.len() as u64,
            }),
        };
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut events = Vec::new();
    let mut at = JOURNAL_HEADER as usize;
    let mut corrupt_at: Option<(u64, String)> = None;
    // An incomplete frame ends the valid prefix (the torn tail of a
    // crashed write — legal, because appends are sequential and the
    // tail was never fsync-acked). A complete frame with a bad checksum
    // or garbage payload is corruption and is typed as such.
    loop {
        match codec::read_frame(&bytes[at..]) {
            Ok(None) => break, // torn tail
            Ok(Some((payload, frame_len))) => match JournalEvent::decode(payload) {
                Ok(event) => {
                    events.push(event);
                    at += frame_len;
                }
                Err(e) => {
                    corrupt_at = Some((at as u64, format!("frame payload: {e}")));
                    break;
                }
            },
            Err(e) => {
                corrupt_at = Some((at as u64, e.to_string()));
                break;
            }
        }
    }
    let (torn_bytes, corrupt_bytes) = match corrupt_at {
        None => ((bytes.len() - at) as u64, 0),
        Some((offset, detail)) => match mode {
            ScanMode::Strict => return Err(corrupt(offset, detail)),
            // Nothing after the first corrupt frame can be trusted.
            ScanMode::Tolerant => (0, (bytes.len() - at) as u64),
        },
    };
    Ok(JournalScan {
        epoch,
        events,
        valid_len: at as u64,
        torn_bytes,
        corrupt_bytes,
    })
}

/// Why a [`Journal::sync`] waiter was released without its sequence
/// becoming durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// An fsync failed earlier: the journal is permanently poisoned
    /// (see the module docs) and nothing appended since the last good
    /// fsync is, or will ever be, durable here.
    Poisoned {
        /// The original fsync failure.
        error: String,
    },
    /// The write covering this sequence failed; the frames were
    /// restored to the pending buffer and a later flush may still land
    /// them (retry the sync, or give up — the commit was NOT acked).
    WriteFailed {
        /// The write failure.
        error: String,
        /// True when the failure was ENOSPC — the disk-full signal the
        /// service uses to enter degraded (read-only) mode.
        enospc: bool,
    },
    /// The journal shut down (or simulated a crash) before the
    /// sequence became durable.
    Stopped,
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Poisoned { error } => write!(f, "journal poisoned: {error}"),
            SyncError::WriteFailed { error, .. } => write!(f, "journal write failed: {error}"),
            SyncError::Stopped => write!(f, "journal stopped before sync"),
        }
    }
}

impl std::error::Error for SyncError {}

/// Failure state shared between the flusher and sync waiters.
enum FailState {
    None,
    WriteFailed { error: String, enospc: bool },
    Poisoned { error: String },
}

/// Encoded-but-unflushed frames. Locked briefly by appenders; the
/// flusher swaps the buffer out whole.
struct Pending {
    buf: Vec<u8>,
    /// Sequence of the next append (seq 0 = "nothing appended").
    next_seq: u64,
    /// Epoch the buffered frames belong to (see module docs).
    epoch: u64,
    /// Complete frames already in the epoch file when it was opened
    /// (sequence numbers restart at 1 per process, file offsets do not).
    base_events: u64,
    /// Sequences consumed before the current epoch file started (a
    /// truncation retires all earlier seqs into the snapshot).
    retired_seqs: u64,
}

/// The file and its durability bookkeeping. Held across write+fsync by
/// the flusher; appenders never touch it.
struct FileState {
    file: Box<dyn StorageFile>,
    /// File length guaranteed on disk (fsync'd).
    durable_len: u64,
    /// Complete frames inside `durable_len` — the replication position
    /// `(epoch, durable_events)` a follower cursor advances through.
    durable_events: u64,
    epoch: u64,
    /// After a simulated crash: all writes become no-ops.
    dead: bool,
    /// A write failed: the file may hold un-fsynced partial bytes past
    /// `durable_len` and the cursor position is unknown. The next
    /// attempt truncates back to `durable_len` before writing.
    needs_repair: bool,
    /// Most recent write/fsync failure; cleared by a later fully
    /// successful flush (sticky while poisoned).
    error: Option<String>,
}

struct Shared {
    pending: Mutex<Pending>,
    filestate: Mutex<FileState>,
    /// Highest sequence number covered by a completed fsync.
    durable_seq: AtomicU64,
    durable_cv: Condvar,
    durable_mutex: Mutex<()>,
    /// Failure the flusher last hit, read by sync waiters.
    fail: Mutex<FailState>,
    /// Highest sequence covered by a *failed* write still pending
    /// retry — waiters at or below it error instead of blocking.
    failed_hi: AtomicU64,
    /// fsync failed: the journal never writes again (module docs).
    poisoned: AtomicBool,
    /// Kicks the flusher out of its interval sleep.
    flush_cv: Condvar,
    flush_mutex: Mutex<bool>,
    stop: AtomicBool,
    /// Total event bytes appended (monotonic; survives truncation).
    bytes_appended: AtomicU64,
    events_appended: AtomicU64,
    /// Flushed+fsynced together with the journal so `sync` is a
    /// durability point for provenance too.
    companion: Mutex<Option<Arc<AuditSpill>>>,
    /// Group-commit telemetry, recorded by the flusher thread.
    flush_stats: FlushStats,
}

/// Buckets in the flush-profile histograms: bucket `i` covers
/// `[2^i, 2^(i+1))` (nanoseconds, or events per flush).
const FLUSH_BUCKETS: usize = 32;

/// Lock-free flush telemetry: how long each group fsync took and how
/// many events it retired. Written only by the flusher thread; readers
/// snapshot via [`Journal::flush_profile`].
struct FlushStats {
    fsync_ns: [AtomicU64; FLUSH_BUCKETS],
    fsync_ns_total: AtomicU64,
    batch_events: [AtomicU64; FLUSH_BUCKETS],
    batch_events_total: AtomicU64,
    flushes: AtomicU64,
}

impl FlushStats {
    fn new() -> FlushStats {
        FlushStats {
            fsync_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            fsync_ns_total: AtomicU64::new(0),
            batch_events: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_events_total: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    fn record(&self, fsync: Duration, events: u64) {
        let ns = fsync.as_nanos().max(1) as u64;
        self.fsync_ns[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.fsync_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.batch_events[bucket_of(events.max(1))].fetch_add(1, Ordering::Relaxed);
        self.batch_events_total.fetch_add(events, Ordering::Relaxed);
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }
}

fn bucket_of(value: u64) -> usize {
    (63 - value.max(1).leading_zeros() as usize).min(FLUSH_BUCKETS - 1)
}

/// A point-in-time copy of the journal's group-commit profile: how
/// many flush cycles wrote to disk, the fsync-latency distribution and
/// the events-per-flush (group-commit batch size) distribution.
/// Buckets are `(exclusive upper bound, count)` pairs covering
/// `[2^i, 2^(i+1))`.
#[derive(Debug, Clone, Default)]
pub struct FlushProfile {
    /// Flush cycles that performed a write + fsync.
    pub flushes: u64,
    /// fsync (write + fdatasync) latency histogram, nanoseconds.
    pub fsync_ns_buckets: Vec<(u64, u64)>,
    /// Sum of all fsync latencies, nanoseconds.
    pub fsync_ns_total: u64,
    /// Events retired per flush cycle (the group-commit batch size).
    pub batch_events_buckets: Vec<(u64, u64)>,
    /// Total events retired through recorded flushes.
    pub batch_events_total: u64,
}

/// The write-ahead journal: lock-light appends, group-fsync flusher.
pub struct Journal {
    shared: Arc<Shared>,
    path: PathBuf,
    flusher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("epoch", &self.epoch())
            .field("bytes_appended", &self.bytes_appended())
            .finish()
    }
}

fn write_header(file: &mut dyn StorageFile, epoch: u64) -> std::io::Result<()> {
    file.set_len(0)?;
    file.seek(SeekFrom::Start(0))?;
    let mut header = Vec::with_capacity(JOURNAL_HEADER as usize);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&epoch.to_le_bytes());
    let crc = codec::crc32(&header);
    header.extend_from_slice(&crc.to_le_bytes());
    file.write_all(&header)
}

impl Journal {
    /// Open `path` for appending after `scan` validated it: the torn
    /// tail (if any) is truncated, the header is (re)written when the
    /// file is fresh or its epoch differs from `epoch`, and the flusher
    /// thread starts with the given group-commit interval.
    pub fn open(
        path: &Path,
        scan: &JournalScan,
        epoch: u64,
        flush_interval: Duration,
        fs: &Arc<dyn StorageFs>,
    ) -> std::io::Result<Journal> {
        let mut file = fs.open_rw(path)?;
        let (start_len, start_events) = if scan.epoch == epoch && scan.valid_len >= JOURNAL_HEADER {
            file.set_len(scan.valid_len)?; // drop the torn/corrupt tail
            file.seek(SeekFrom::Start(scan.valid_len))?;
            (scan.valid_len, scan.events.len() as u64)
        } else {
            // Fresh file, stale epoch (snapshot landed but truncation
            // didn't), or unrecognized content: start an empty journal
            // at the requested epoch.
            write_header(file.as_mut(), epoch)?;
            (JOURNAL_HEADER, 0)
        };
        file.sync_data()?;
        let shared = Arc::new(Shared {
            pending: Mutex::new(Pending {
                buf: Vec::new(),
                next_seq: 1,
                epoch,
                base_events: start_events,
                retired_seqs: 0,
            }),
            filestate: Mutex::new(FileState {
                file,
                durable_len: start_len,
                durable_events: start_events,
                epoch,
                dead: false,
                needs_repair: false,
                error: None,
            }),
            durable_seq: AtomicU64::new(0),
            durable_cv: Condvar::new(),
            durable_mutex: Mutex::new(()),
            fail: Mutex::new(FailState::None),
            failed_hi: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            flush_cv: Condvar::new(),
            flush_mutex: Mutex::new(false),
            stop: AtomicBool::new(false),
            bytes_appended: AtomicU64::new(0),
            events_appended: AtomicU64::new(0),
            companion: Mutex::new(None),
            flush_stats: FlushStats::new(),
        });
        let flusher_shared = Arc::clone(&shared);
        let flusher = std::thread::Builder::new()
            .name("cerfix-journal-flush".into())
            .spawn(move || flusher_loop(&flusher_shared, flush_interval))
            .expect("spawn journal flusher");
        Ok(Journal {
            shared,
            path: path.to_path_buf(),
            flusher: Some(flusher),
        })
    }

    /// Append one event to the pending buffer; returns its sequence
    /// number for [`sync`](Self::sync). No disk I/O on this path.
    pub fn append(&self, event: &JournalEvent) -> u64 {
        let framed = codec::frame(&event.encode());
        let seq = {
            let mut pending = lock(&self.shared.pending);
            let seq = pending.next_seq;
            pending.next_seq += 1;
            pending.buf.extend_from_slice(&framed);
            seq
        };
        self.shared
            .bytes_appended
            .fetch_add(framed.len() as u64, Ordering::Relaxed);
        self.shared.events_appended.fetch_add(1, Ordering::Relaxed);
        // No flusher kick: the event rides the next interval cycle (or
        // an explicit `sync`). Kicking per append would degenerate group
        // commit into fsync-per-request under light load.
        seq
    }

    fn kick_flusher(&self) {
        let mut kicked = lock(&self.shared.flush_mutex);
        *kicked = true;
        self.shared.flush_cv.notify_one();
    }

    /// The current failure verdict for a waiter on `seq`, if any.
    fn sync_failure(&self, seq: u64) -> Option<SyncError> {
        match &*lock(&self.shared.fail) {
            FailState::None => None,
            FailState::Poisoned { error } => Some(SyncError::Poisoned {
                error: error.clone(),
            }),
            FailState::WriteFailed { error, enospc }
                if self.shared.failed_hi.load(Ordering::Acquire) >= seq =>
            {
                Some(SyncError::WriteFailed {
                    error: error.clone(),
                    enospc: *enospc,
                })
            }
            FailState::WriteFailed { .. } => None,
        }
    }

    /// Block until the fsync covering `seq` has completed (the group
    /// commit). Returns immediately if already durable; returns a typed
    /// error — never hangs — when the journal poisoned, the covering
    /// write failed, or the journal stopped first.
    pub fn sync(&self, seq: u64) -> Result<(), SyncError> {
        if self.shared.durable_seq.load(Ordering::Acquire) >= seq {
            return Ok(());
        }
        self.kick_flusher();
        let mut guard = lock(&self.shared.durable_mutex);
        loop {
            if self.shared.durable_seq.load(Ordering::Acquire) >= seq {
                return Ok(());
            }
            if let Some(err) = self.sync_failure(seq) {
                return Err(err);
            }
            if self.shared.stop.load(Ordering::Acquire) {
                return Err(SyncError::Stopped);
            }
            let (g, _) = self
                .shared
                .durable_cv
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
    }

    /// Register the audit spill flushed+fsynced on every journal flush
    /// cycle, making [`sync`](Self::sync) a durability point for
    /// provenance records too.
    pub fn set_companion(&self, spill: Arc<AuditSpill>) {
        *lock(&self.shared.companion) = Some(spill);
    }

    /// The current snapshot epoch in the header.
    pub fn epoch(&self) -> u64 {
        lock(&self.shared.filestate).epoch
    }

    /// Total event bytes appended since open (monotonic).
    pub fn bytes_appended(&self) -> u64 {
        self.shared.bytes_appended.load(Ordering::Relaxed)
    }

    /// Total events appended since open (monotonic).
    pub fn events_appended(&self) -> u64 {
        self.shared.events_appended.load(Ordering::Relaxed)
    }

    /// Snapshot the group-commit flush profile (fsync latency and
    /// batch-size histograms). Buckets with zero counts are included so
    /// consumers can render full distributions.
    pub fn flush_profile(&self) -> FlushProfile {
        let stats = &self.shared.flush_stats;
        let histogram = |buckets: &[AtomicU64; FLUSH_BUCKETS]| -> Vec<(u64, u64)> {
            buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (1u64 << (i + 1).min(63), b.load(Ordering::Relaxed)))
                .collect()
        };
        FlushProfile {
            flushes: stats.flushes.load(Ordering::Relaxed),
            fsync_ns_buckets: histogram(&stats.fsync_ns),
            fsync_ns_total: stats.fsync_ns_total.load(Ordering::Relaxed),
            batch_events_buckets: histogram(&stats.batch_events),
            batch_events_total: stats.batch_events_total.load(Ordering::Relaxed),
        }
    }

    /// File length guaranteed on disk — what a kill-9 plus a lost page
    /// cache could roll the file back to.
    pub fn durable_len(&self) -> u64 {
        lock(&self.shared.filestate).durable_len
    }

    /// The replication position: `(epoch, durable event count)` read
    /// atomically. A follower whose cursor equals this is caught up.
    pub fn durable_position(&self) -> (u64, u64) {
        let filestate = lock(&self.shared.filestate);
        (filestate.epoch, filestate.durable_events)
    }

    /// The epoch-file position that covers `seq`: the number of events
    /// the epoch file holds once `seq` is durable. Sequence numbers
    /// restart at 1 per process while file offsets persist across
    /// restarts, so replication cursors speak positions, not seqs.
    pub fn position_of(&self, seq: u64) -> u64 {
        let pending = lock(&self.shared.pending);
        pending.base_events + seq.saturating_sub(pending.retired_seqs)
    }

    /// Read up to `max` durable events starting at epoch-file position
    /// `offset` — the primary side of `replica.sync`. Only complete,
    /// fsync-covered frames are served; a concurrent snapshot truncation
    /// yields an empty batch at the new epoch (the caller re-cursors).
    pub fn read_durable_from(&self, offset: u64, max: usize) -> std::io::Result<CursorRead> {
        for _ in 0..3 {
            let (epoch, durable_len, durable_events) = {
                let filestate = lock(&self.shared.filestate);
                (
                    filestate.epoch,
                    filestate.durable_len,
                    filestate.durable_events,
                )
            };
            if offset >= durable_events || max == 0 {
                return Ok(CursorRead {
                    epoch,
                    durable_events,
                    events: Vec::new(),
                });
            }
            let bytes = std::fs::read(&self.path)?;
            let limit = (durable_len as usize).min(bytes.len());
            if limit < JOURNAL_HEADER as usize
                || &bytes[0..4] != MAGIC
                || u64::from_le_bytes(bytes[8..16].try_into().unwrap()) != epoch
            {
                // Truncated to a new epoch between the position capture
                // and the read; retry against the fresh state.
                continue;
            }
            let mut events = Vec::new();
            let mut skipped = 0u64;
            let mut at = JOURNAL_HEADER as usize;
            while at < limit {
                let Ok(Some((payload, frame_len))) = codec::read_frame(&bytes[at..limit]) else {
                    break;
                };
                if skipped < offset {
                    skipped += 1; // length-prefixed: skip without decoding
                } else {
                    match JournalEvent::decode(payload) {
                        Ok(event) => events.push(event),
                        Err(e) => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("durable frame at {at} failed to decode: {e}"),
                            ))
                        }
                    }
                    if events.len() >= max {
                        break;
                    }
                }
                at += frame_len;
            }
            return Ok(CursorRead {
                epoch,
                durable_events,
                events,
            });
        }
        let (epoch, durable_events) = self.durable_position();
        Ok(CursorRead {
            epoch,
            durable_events,
            events: Vec::new(),
        })
    }

    /// Most recent journal write/fsync failure, if any. Write failures
    /// clear once a later flush fully succeeds (the frames were retried
    /// and landed); a poison failure is sticky until a snapshot
    /// truncation rebuilds the file.
    pub fn last_error(&self) -> Option<String> {
        lock(&self.shared.filestate).error.clone()
    }

    /// The poison failure, when an fsync error has permanently stopped
    /// this journal writing (see the module docs for why there is no
    /// retry). `None` while healthy.
    pub fn poisoned(&self) -> Option<String> {
        if !self.shared.poisoned.load(Ordering::Acquire) {
            return None;
        }
        match &*lock(&self.shared.fail) {
            FailState::Poisoned { error } => Some(error.clone()),
            _ => Some("journal poisoned".to_string()),
        }
    }

    /// True while the flusher thread is running and the journal file is
    /// accepting writes — the journal half of a liveness probe. False
    /// after shutdown or a (simulated) crash.
    pub fn is_alive(&self) -> bool {
        !self.shared.stop.load(Ordering::Acquire) && !lock(&self.shared.filestate).dead
    }

    /// Discard every journaled event and start epoch `new_epoch`: the
    /// snapshot carrying that epoch now owns all prior state. The caller
    /// (the service's snapshot path) must have quiesced appends — any
    /// pending bytes are dropped, which is only sound because the
    /// snapshot captured the state they produced.
    ///
    /// This is also the only exit from the poisoned state: `set_len(0)`
    /// plus a freshly written and fsynced header is a file whose entire
    /// contents are known good, unlike any retry against the old bytes.
    pub fn truncate_to_epoch(&self, new_epoch: u64) -> std::io::Result<()> {
        let mut filestate = lock(&self.shared.filestate);
        let mut pending = lock(&self.shared.pending);
        if filestate.dead {
            return Ok(());
        }
        let retired = pending.next_seq.saturating_sub(1);
        pending.buf.clear();
        pending.epoch = new_epoch;
        pending.base_events = 0;
        pending.retired_seqs = retired;
        drop(pending);
        let rebuilt = write_header(filestate.file.as_mut(), new_epoch)
            .and_then(|()| filestate.file.sync_data());
        if let Err(e) = rebuilt {
            // The old content is gone and the new header may be partial
            // or un-fsynced: nothing about this file is trustworthy.
            // Poison so no later flush writes into it (recovery is safe
            // either way: the snapshot owns the state).
            let msg = format!("journal rebuild failed: {e}");
            filestate.error = Some(msg.clone());
            self.shared.poisoned.store(true, Ordering::Release);
            *lock(&self.shared.fail) = FailState::Poisoned { error: msg };
            drop(filestate);
            self.shared.durable_seq.fetch_max(retired, Ordering::AcqRel);
            self.shared.durable_cv.notify_all();
            return Err(e);
        }
        filestate.durable_len = JOURNAL_HEADER;
        filestate.durable_events = 0;
        filestate.epoch = new_epoch;
        // set_len(0) + fresh fsynced header put the file in a known-good
        // state: clear repair, error and poison.
        filestate.needs_repair = false;
        filestate.error = None;
        drop(filestate);
        self.shared.poisoned.store(false, Ordering::Release);
        *lock(&self.shared.fail) = FailState::None;
        self.shared.failed_hi.store(0, Ordering::Release);
        // Everything up to `retired` is trivially durable now (the
        // snapshot holds it); release any sync waiters.
        self.shared.durable_seq.fetch_max(retired, Ordering::AcqRel);
        self.shared.durable_cv.notify_all();
        Ok(())
    }

    /// Simulate a kill-9 with a cold page cache: drop all pending bytes,
    /// truncate the file back to the last fsync'd length, and make every
    /// later write a no-op. Crash-recovery tests use this to model the
    /// worst legal outcome of a real crash.
    pub fn simulate_crash(&self) -> std::io::Result<()> {
        let mut filestate = lock(&self.shared.filestate);
        let mut pending = lock(&self.shared.pending);
        pending.buf.clear();
        let retired = pending.next_seq.saturating_sub(1);
        drop(pending);
        filestate.dead = true;
        let durable = filestate.durable_len;
        filestate.file.set_len(durable)?;
        filestate.file.sync_data()?;
        drop(filestate);
        self.shared.stop.store(true, Ordering::Release);
        // Release sync() waiters: their events are gone, but nobody
        // should hang inside a crashed process simulation.
        self.shared.durable_seq.fetch_max(retired, Ordering::AcqRel);
        self.kick_flusher();
        self.shared.durable_cv.notify_all();
        Ok(())
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Which half of the durability pair failed — a write error is
/// retryable after repair, an fsync error poisons the journal.
enum WriteFault {
    Write(std::io::Error),
    Fsync(std::io::Error),
}

/// Append `bytes` and fsync, repairing the file back to its last
/// durable length first if an earlier attempt failed partway (partial
/// un-fsynced bytes, unknown cursor). `durable_len` advances only on
/// full success.
fn write_durable(filestate: &mut FileState, bytes: &[u8]) -> Result<(), WriteFault> {
    if filestate.needs_repair {
        let repaired = filestate
            .file
            .set_len(filestate.durable_len)
            .and_then(|()| filestate.file.seek(SeekFrom::Start(filestate.durable_len)));
        match repaired {
            Ok(_) => filestate.needs_repair = false,
            Err(e) => return Err(WriteFault::Write(e)),
        }
    }
    filestate.file.write_all(bytes).map_err(WriteFault::Write)?;
    filestate.file.sync_data().map_err(WriteFault::Fsync)?;
    filestate.durable_len += bytes.len() as u64;
    Ok(())
}

fn flusher_loop(shared: &Shared, interval: Duration) {
    loop {
        // Swap the pending buffer out whole, remembering which epoch it
        // belongs to and the highest sequence it covers.
        let (bytes, seq_hi, epoch_at_take) = {
            let mut pending = lock(&shared.pending);
            (
                std::mem::take(&mut pending.buf),
                pending.next_seq - 1,
                pending.epoch,
            )
        };
        // `retired`: the frames no longer need writing (fsync'd, or
        // owned by a snapshot / crash sim) — only then may durable_seq
        // advance and commit waiters be released. A FAILED write must
        // not ack: the bytes go back to the front of the pending buffer
        // and the commit waiter gets a typed error (it may retry the
        // sync; a later cycle can still land the frames). A failed
        // FSYNC poisons the journal outright — after fdatasync reports
        // an error the page-cache state is unknowable, so "retry and
        // see it succeed" could ack data the kernel already dropped.
        let bytes_were_empty = bytes.is_empty();
        let mut retired = false;
        let mut failed = false;
        if !bytes.is_empty() {
            let mut filestate = lock(&shared.filestate);
            if filestate.dead || filestate.epoch != epoch_at_take {
                // Crash sim, or a snapshot truncation between take and
                // here retagged the epoch: these frames are already
                // owned elsewhere — discard and retire.
                retired = true;
            } else if shared.poisoned.load(Ordering::Acquire) {
                // Poisoned: discard, never write. Waiters observe the
                // poison through sync()'s failure check.
                failed = true;
            } else {
                let flush_started = Instant::now();
                match write_durable(&mut filestate, &bytes) {
                    Ok(()) => {
                        retired = true;
                        // Batch size: events this fsync newly covered.
                        let events =
                            seq_hi.saturating_sub(shared.durable_seq.load(Ordering::Acquire));
                        filestate.durable_events += events;
                        // A fully successful flush clears any earlier
                        // transient write failure (the retry landed).
                        filestate.error = None;
                        shared.flush_stats.record(flush_started.elapsed(), events);
                        *lock(&shared.fail) = FailState::None;
                        shared.failed_hi.store(0, Ordering::Release);
                    }
                    Err(WriteFault::Write(e)) => {
                        failed = true;
                        filestate.needs_repair = true;
                        filestate.error = Some(e.to_string());
                        *lock(&shared.fail) = FailState::WriteFailed {
                            error: e.to_string(),
                            enospc: is_enospc(&e),
                        };
                        shared.failed_hi.fetch_max(seq_hi, Ordering::AcqRel);
                        drop(filestate);
                        // Restore order: failed frames precede anything
                        // appended since the take — unless a truncation
                        // retired them while the write was failing.
                        let mut pending = lock(&shared.pending);
                        if pending.epoch == epoch_at_take {
                            let mut restored = bytes;
                            restored.extend_from_slice(&pending.buf);
                            pending.buf = restored;
                        } else {
                            retired = true;
                            failed = false;
                        }
                    }
                    Err(WriteFault::Fsync(e)) => {
                        failed = true;
                        let msg = format!(
                            "fdatasync failed ({e}); journal poisoned — \
                             page-cache state unknown, no retry"
                        );
                        filestate.error = Some(msg.clone());
                        // durable_len stays where the last good fsync
                        // left it; the bytes written above are dropped
                        // on the floor along with all pending frames.
                        shared.poisoned.store(true, Ordering::Release);
                        *lock(&shared.fail) = FailState::Poisoned { error: msg };
                    }
                }
            }
        }
        // Companion (audit spill) rides every cycle, not just ones with
        // journal traffic: batch cleans produce audit records without
        // journal events. A no-op when its buffer is empty; failures
        // park in the spill's own error state for the service to read.
        let companion = lock(&shared.companion).clone();
        if let Some(spill) = companion {
            let _ = spill.sync();
        }
        if !bytes_were_empty && retired {
            shared.durable_seq.fetch_max(seq_hi, Ordering::AcqRel);
            shared.durable_cv.notify_all();
        } else if failed {
            // Wake waiters so they observe the typed failure now
            // instead of at their next 50 ms poll.
            shared.durable_cv.notify_all();
        }
        if shared.stop.load(Ordering::Acquire) {
            let drained = lock(&shared.pending).buf.is_empty();
            // Drain what arrived between take and stop — but if the disk
            // is failing (frames restored to pending) or the journal is
            // poisoned, give up instead of retrying forever inside Drop.
            if drained || failed {
                shared.durable_cv.notify_all();
                return;
            }
            continue;
        }
        let guard = lock(&shared.flush_mutex);
        let mut guard = if *guard {
            guard
        } else {
            shared
                .flush_cv
                .wait_timeout(guard, interval)
                .unwrap_or_else(PoisonError::into_inner)
                .0
        };
        *guard = false;
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.kick_flusher();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

/// Convenience for tests and inspection: decode the events currently on
/// disk (valid prefix only, strict mode).
pub fn read_events(path: &Path) -> Result<Vec<JournalEvent>, CodecError> {
    scan_journal(path)
        .map(|scan| scan.events)
        .map_err(|e| CodecError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultFs, FaultPlan, RealFs};
    use cerfix_relation::Value;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cerfix-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn real_fs() -> Arc<dyn StorageFs> {
        Arc::new(RealFs)
    }

    fn ev(session: u64) -> JournalEvent {
        JournalEvent::SessionCreated {
            session,
            values: vec![Value::str("x"), Value::Int(session as i64)],
        }
    }

    #[test]
    fn append_sync_scan_round_trip() {
        let dir = tmp_dir("round-trip");
        let path = dir.join("journal.wal");
        let scan = scan_journal(&path).unwrap();
        let journal = Journal::open(&path, &scan, 0, Duration::from_millis(1), &real_fs()).unwrap();
        let mut last = 0;
        for i in 0..20 {
            last = journal.append(&ev(i));
        }
        journal.sync(last).unwrap();
        assert_eq!(journal.events_appended(), 20);
        assert!(journal.durable_len() > JOURNAL_HEADER);
        drop(journal);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.epoch, 0);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.events.len(), 20);
        assert_eq!(scan.events[7], ev(7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_profile_records_fsync_and_batch_histograms() {
        let dir = tmp_dir("flush-profile");
        let path = dir.join("journal.wal");
        let scan = scan_journal(&path).unwrap();
        let journal =
            Journal::open(&path, &scan, 0, Duration::from_millis(50), &real_fs()).unwrap();
        assert_eq!(journal.flush_profile().flushes, 0);
        let mut last = 0;
        for i in 0..8 {
            last = journal.append(&ev(i));
        }
        journal.sync(last).unwrap();
        let profile = journal.flush_profile();
        assert!(profile.flushes >= 1);
        assert_eq!(profile.batch_events_total, 8);
        assert!(profile.fsync_ns_total > 0);
        let fsync_count: u64 = profile.fsync_ns_buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(fsync_count, profile.flushes);
        let batch_count: u64 = profile.batch_events_buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(batch_count, profile.flushes);
        // Bounds are powers of two, strictly increasing.
        for pair in profile.fsync_ns_buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_cut_at_every_byte_boundary() {
        let dir = tmp_dir("torn");
        let path = dir.join("journal.wal");
        {
            let scan = scan_journal(&path).unwrap();
            let journal =
                Journal::open(&path, &scan, 3, Duration::from_millis(1), &real_fs()).unwrap();
            let last = (0..5).fold(0, |_, i| journal.append(&ev(i)));
            journal.sync(last).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let full_scan = scan_journal(&path).unwrap();
        assert_eq!(full_scan.events.len(), 5);
        // Cut the file at every length: the scan must always return a
        // clean prefix of the appended events, never an error or panic.
        let mut seen = Vec::new();
        for cut in (JOURNAL_HEADER as usize)..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_journal(&path).unwrap();
            assert_eq!(scan.epoch, 3);
            assert!(scan.events.len() <= 5);
            for (i, event) in scan.events.iter().enumerate() {
                assert_eq!(event, &ev(i as u64), "prefix property at cut {cut}");
            }
            seen.push(scan.events.len());
            // Reopening truncates the tail and accepts new appends.
            let journal = Journal::open(
                &path,
                &scan,
                scan.epoch,
                Duration::from_millis(1),
                &real_fs(),
            )
            .unwrap();
            let seq = journal.append(&ev(99));
            journal.sync(seq).unwrap();
            drop(journal);
            let rescan = scan_journal(&path).unwrap();
            assert_eq!(rescan.torn_bytes, 0);
            assert_eq!(rescan.events.last().unwrap(), &ev(99));
        }
        assert!(seen.contains(&4), "some cut keeps 4 events");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_is_typed_in_strict_mode_and_cut_in_tolerant_mode() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("journal.wal");
        {
            let scan = scan_journal(&path).unwrap();
            let journal =
                Journal::open(&path, &scan, 0, Duration::from_millis(1), &real_fs()).unwrap();
            let last = (0..4).fold(0, |_, i| journal.append(&ev(i)));
            journal.sync(last).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Flip one payload byte in the middle of the file: the frame is
        // complete, so this is corruption, not a tear.
        let mut bent = full.clone();
        let idx = full.len() / 2;
        bent[idx] ^= 0x01;
        std::fs::write(&path, &bent).unwrap();
        match scan_journal(&path) {
            Err(StorageError::Corrupt { offset, .. }) => {
                assert!(offset >= JOURNAL_HEADER, "corruption inside the frames");
            }
            other => panic!("strict scan must refuse corruption, got {other:?}"),
        }
        let scan = scan_journal_with(&path, ScanMode::Tolerant).unwrap();
        assert!(scan.corrupt_bytes > 0);
        assert_eq!(scan.torn_bytes, 0);
        assert!(scan.events.len() < 4, "corrupt suffix dropped");
        for (i, event) in scan.events.iter().enumerate() {
            assert_eq!(event, &ev(i as u64), "tolerant scan keeps a clean prefix");
        }
        // A header flip is typed corruption too (header CRC).
        let mut bent = full.clone();
        bent[9] ^= 0x01; // epoch byte
        std::fs::write(&path, &bent).unwrap();
        assert!(matches!(
            scan_journal(&path),
            Err(StorageError::Corrupt { offset: 0, .. })
        ));
        let scan = scan_journal_with(&path, ScanMode::Tolerant).unwrap();
        assert_eq!(scan.corrupt_bytes, full.len() as u64);
        assert!(scan.events.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_failure_poisons_and_truncate_to_epoch_clears() {
        let dir = tmp_dir("poison");
        let path = dir.join("journal.wal");
        let fault = FaultFs::new(FaultPlan::default());
        let fs: Arc<dyn StorageFs> = Arc::new(fault.clone());
        let scan = scan_journal(&path).unwrap();
        let journal = Journal::open(&path, &scan, 0, Duration::from_millis(1), &fs).unwrap();
        let seq = journal.append(&ev(1));
        journal.sync(seq).unwrap();
        let durable_before = journal.durable_len();
        // Fail the next fsync (open + the first sync used some).
        fault.update_plan(|p| p.fail_fsync_at = Some(fault.fsyncs() + 1));
        let seq = journal.append(&ev(2));
        match journal.sync(seq) {
            Err(SyncError::Poisoned { error }) => assert!(error.contains("injected")),
            other => panic!("expected poison, got {other:?}"),
        }
        assert!(journal.poisoned().is_some());
        assert!(journal.last_error().is_some());
        assert_eq!(journal.durable_len(), durable_before, "no false advance");
        // Appends after the poison fail fast instead of hanging.
        let seq = journal.append(&ev(3));
        assert!(matches!(journal.sync(seq), Err(SyncError::Poisoned { .. })));
        // A snapshot truncation rebuilds the file and clears the poison.
        journal.truncate_to_epoch(1).unwrap();
        assert!(journal.poisoned().is_none());
        assert!(journal.last_error().is_none());
        let seq = journal.append(&ev(4));
        journal.sync(seq).unwrap();
        drop(journal);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.epoch, 1);
        assert_eq!(scan.events, vec![ev(4)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failure_errors_waiters_then_recovers_on_retry() {
        let dir = tmp_dir("enospc");
        let path = dir.join("journal.wal");
        let fault = FaultFs::new(FaultPlan::default());
        let fs: Arc<dyn StorageFs> = Arc::new(fault.clone());
        let scan = scan_journal(&path).unwrap();
        let journal = Journal::open(&path, &scan, 0, Duration::from_millis(1), &fs).unwrap();
        let seq = journal.append(&ev(1));
        journal.sync(seq).unwrap();
        // Exhaust the byte budget: the next flush hits ENOSPC.
        fault.update_plan(|p| p.capacity_bytes = Some(fault.bytes_written()));
        let seq = journal.append(&ev(2));
        match journal.sync(seq) {
            Err(SyncError::WriteFailed { enospc, .. }) => assert!(enospc),
            other => panic!("expected ENOSPC write failure, got {other:?}"),
        }
        assert!(journal.last_error().is_some());
        assert!(journal.poisoned().is_none(), "ENOSPC does not poison");
        // "Free some disk": the restored frames retry and land, and the
        // error state clears. A sync re-issued before the flusher's
        // retry cycle may still observe the stale failure ("not durable
        // *yet*"), so poll until the retry lands.
        fault.add_capacity(1 << 20);
        let deadline = Instant::now() + Duration::from_secs(10);
        while journal.sync(seq).is_err() {
            assert!(Instant::now() < deadline, "retry never landed");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(journal.last_error().is_none(), "error clears on success");
        drop(journal);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.events, vec![ev(1), ev(2)], "retried frame landed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_to_epoch_resets_and_scan_sees_new_epoch() {
        let dir = tmp_dir("epoch");
        let path = dir.join("journal.wal");
        let scan = scan_journal(&path).unwrap();
        let journal = Journal::open(&path, &scan, 0, Duration::from_millis(1), &real_fs()).unwrap();
        let seq = journal.append(&ev(1));
        journal.sync(seq).unwrap();
        journal.truncate_to_epoch(1).unwrap();
        let seq = journal.append(&ev(2));
        journal.sync(seq).unwrap();
        drop(journal);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.epoch, 1);
        assert_eq!(scan.events, vec![ev(2)]);
        // A stale journal (epoch < snapshot epoch) is reset on open.
        let reopened =
            Journal::open(&path, &scan, 5, Duration::from_millis(1), &real_fs()).unwrap();
        drop(reopened);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.epoch, 5);
        assert!(scan.events.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_crash_loses_only_unsynced_suffix() {
        let dir = tmp_dir("crash");
        let path = dir.join("journal.wal");
        let scan = scan_journal(&path).unwrap();
        // Hour-long interval: nothing flushes unless sync() forces it.
        let journal =
            Journal::open(&path, &scan, 0, Duration::from_secs(3600), &real_fs()).unwrap();
        let durable_seq = journal.append(&ev(1));
        journal.sync(durable_seq).unwrap();
        journal.append(&ev(2)); // never synced
        journal.simulate_crash().unwrap();
        drop(journal);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.events, vec![ev(1)], "only the synced event survives");
        assert_eq!(scan.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cursor_reads_and_positions_survive_reopen_and_truncation() {
        let dir = tmp_dir("cursor");
        let path = dir.join("journal.wal");
        let scan = scan_journal(&path).unwrap();
        let journal = Journal::open(&path, &scan, 0, Duration::from_millis(1), &real_fs()).unwrap();
        assert_eq!(journal.durable_position(), (0, 0));
        let mut last = 0;
        for i in 0..6 {
            last = journal.append(&ev(i));
        }
        assert_eq!(journal.position_of(last), 6);
        journal.sync(last).unwrap();
        assert_eq!(journal.durable_position(), (0, 6));
        let read = journal.read_durable_from(2, 3).unwrap();
        assert_eq!((read.epoch, read.durable_events), (0, 6));
        assert_eq!(read.events, vec![ev(2), ev(3), ev(4)]);
        assert!(journal.read_durable_from(6, 8).unwrap().events.is_empty());
        drop(journal);
        // Seqs restart at 1 on reopen; file positions do not.
        let scan = scan_journal(&path).unwrap();
        let journal = Journal::open(&path, &scan, 0, Duration::from_millis(1), &real_fs()).unwrap();
        assert_eq!(journal.durable_position(), (0, 6));
        let seq = journal.append(&ev(6));
        assert_eq!(journal.position_of(seq), 7);
        journal.sync(seq).unwrap();
        assert_eq!(
            journal.read_durable_from(6, 10).unwrap().events,
            vec![ev(6)]
        );
        // Truncation restarts positions in the new epoch.
        journal.truncate_to_epoch(1).unwrap();
        assert_eq!(journal.durable_position(), (1, 0));
        let seq = journal.append(&ev(7));
        assert_eq!(journal.position_of(seq), 1);
        journal.sync(seq).unwrap();
        let read = journal.read_durable_from(0, 10).unwrap();
        assert_eq!(read.epoch, 1);
        assert_eq!(read.events, vec![ev(7)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_under_concurrent_appenders() {
        let dir = tmp_dir("group");
        let path = dir.join("journal.wal");
        let scan = scan_journal(&path).unwrap();
        let journal =
            Arc::new(Journal::open(&path, &scan, 0, Duration::from_millis(2), &real_fs()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let journal = Arc::clone(&journal);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let seq = journal.append(&ev(t * 1000 + i));
                        if i % 10 == 9 {
                            journal.sync(seq).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let last = journal.append(&ev(9999));
        journal.sync(last).unwrap();
        drop(journal);
        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.events.len(), 201);
        assert_eq!(scan.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
