//! The audit spill: cell-level provenance archived to disk.
//!
//! An append-only segment file (`CFXA` header + CRC-framed
//! [`AuditRecord`]s) with an in-memory offset index for ranged reads —
//! the durable backend behind the core [`AuditLog`]'s bounded window.
//! Unlike the journal, the segment is **never truncated by snapshots**:
//! it is the full provenance history the paper's auditing module
//! promises ("keeps track of changes to each tuple"), served over the
//! wire by the `audit.read` protocol op.
//!
//! Appends buffer in memory; [`AuditSpill::sync`] (called by the
//! journal's group-commit cycle, and directly at durability points)
//! writes and fsyncs the buffer. Reads address records by global index:
//! flushed records come from the file via positioned reads, still-
//! buffered ones from memory — so a read never forces a flush and a
//! flush never blocks behind a long read of cold history.
//!
//! On open, the segment is scanned to rebuild the offset index; a torn
//! tail (crash mid-append) is cut at the last complete frame, mirroring
//! journal recovery.
//!
//! [`AuditLog`]: cerfix::AuditLog

use crate::codec::{self};
use crate::events::{decode_audit_record, encode_audit_record};
use crate::vfs::{StorageFile, StorageFs};
use cerfix::{AuditRecord, AuditSink};
use std::io::{Read, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

pub(crate) const MAGIC: &[u8; 4] = b"CFXA";
pub(crate) const VERSION: u32 = 1;
pub(crate) const SEGMENT_HEADER: u64 = 8;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `io::Read` over a [`StorageFile`] so the recovery scan can stream
/// through a `BufReader` without caring which vfs backs the file.
struct ReadAdapter<'a>(&'a mut dyn StorageFile);

impl Read for ReadAdapter<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}

struct SpillState {
    file: Box<dyn StorageFile>,
    /// Byte offset of every record's frame, flushed or buffered.
    offsets: Vec<u64>,
    /// Records already in `offsets` when the segment was opened.
    recovered: usize,
    /// File bytes flushed (records at offsets below this are on disk).
    committed: u64,
    /// Of `committed`, bytes covered by an fsync.
    durable: u64,
    /// Encoded frames past `committed`, not yet written.
    buffer: Vec<u8>,
    /// After a simulated crash: all writes become no-ops.
    dead: bool,
    /// A write/fsync failed partway: the file may hold partial bytes
    /// past `committed` and the cursor is unknown. The next sync
    /// truncates back to `committed` before writing.
    needs_repair: bool,
    /// Most recent write/fsync failure, surfaced via `last_error`;
    /// cleared when a later sync lands the buffer successfully.
    error: Option<String>,
    /// Total write/fsync failures over the life of this handle (each
    /// failed sync cycle counts once), surfaced via `write_errors`.
    write_errors: u64,
}

/// The audit spill segment. Implements [`AuditSink`] so a windowed
/// [`AuditLog`](cerfix::AuditLog) archives through it transparently.
pub struct AuditSpill {
    state: Mutex<SpillState>,
    path: PathBuf,
}

impl std::fmt::Debug for AuditSpill {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock(&self.state);
        f.debug_struct("AuditSpill")
            .field("path", &self.path)
            .field("records", &state.offsets.len())
            .field("committed_bytes", &state.committed)
            .finish()
    }
}

/// What opening a segment found (diagnostics for `recover --inspect`).
#[derive(Debug, Clone, Copy)]
pub struct SpillScan {
    /// Complete records recovered from the segment.
    pub records: usize,
    /// Torn tail bytes discarded.
    pub torn_bytes: u64,
}

impl AuditSpill {
    /// Open (or create) the segment at `path`, rebuilding the offset
    /// index and cutting any torn tail. The scan streams the file frame
    /// by frame with one reusable payload buffer — the archive grows
    /// without bound by design, so startup memory must not grow with it
    /// (the index itself costs 8 bytes per record; segment rotation is
    /// the ROADMAP item that will bound that too).
    pub fn open(path: &Path, fs: &Arc<dyn StorageFs>) -> std::io::Result<(AuditSpill, SpillScan)> {
        let mut file = fs.open_rw(path)?;
        let file_len = file.file_len()?;
        let mut offsets = Vec::new();
        let mut valid_len = SEGMENT_HEADER;
        let mut header = [0u8; SEGMENT_HEADER as usize];
        file.seek(SeekFrom::Start(0))?;
        let header_ok = file_len >= SEGMENT_HEADER
            && file.read_exact(&mut header).is_ok()
            && &header[0..4] == MAGIC;
        if !header_ok {
            // Fresh or unrecognized: rewrite the header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
        } else {
            let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if version != VERSION {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("audit segment version {version} (this build reads {VERSION})"),
                ));
            }
            {
                let mut reader = std::io::BufReader::new(ReadAdapter(file.as_mut()));
                let mut frame = [0u8; codec::FRAME_HEADER];
                let mut payload = Vec::new();
                let mut at = SEGMENT_HEADER;
                // Stop at the first truncated, checksum-failed or
                // garbage frame: the torn tail of a crashed append.
                loop {
                    if at + codec::FRAME_HEADER as u64 > file_len
                        || reader.read_exact(&mut frame).is_err()
                    {
                        break;
                    }
                    let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as u64;
                    let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
                    if at + codec::FRAME_HEADER as u64 + len > file_len {
                        break;
                    }
                    payload.resize(len as usize, 0);
                    if reader.read_exact(&mut payload).is_err()
                        || codec::crc32(&payload) != crc
                        || decode_audit_record(&payload).is_err()
                    {
                        break;
                    }
                    offsets.push(at);
                    at += codec::FRAME_HEADER as u64 + len;
                }
                valid_len = at;
            }
            file.set_len(valid_len)?;
            file.seek(SeekFrom::Start(valid_len))?;
        }
        file.sync_data()?;
        let torn = if header_ok {
            file_len - valid_len
        } else {
            file_len
        };
        let scan = SpillScan {
            records: offsets.len(),
            torn_bytes: torn,
        };
        let recovered = offsets.len();
        Ok((
            AuditSpill {
                state: Mutex::new(SpillState {
                    file,
                    offsets,
                    recovered,
                    committed: valid_len,
                    durable: valid_len,
                    buffer: Vec::new(),
                    dead: false,
                    needs_repair: false,
                    error: None,
                    write_errors: 0,
                }),
                path: path.to_path_buf(),
            },
            scan,
        ))
    }

    /// Write and fsync everything buffered. Called by the journal's
    /// group-commit cycle; cheap when nothing is pending. On failure the
    /// buffer is kept (records stay readable from memory and the write
    /// is retried next cycle, after truncating any partial bytes back
    /// to the committed length).
    pub fn sync(&self) -> std::io::Result<()> {
        let mut state = lock(&self.state);
        if state.dead || state.buffer.is_empty() {
            return Ok(());
        }
        let result = (|| {
            if state.needs_repair {
                let committed = state.committed;
                state.file.set_len(committed)?;
                state.file.seek(SeekFrom::Start(committed))?;
                state.needs_repair = false;
            }
            let buffer = std::mem::take(&mut state.buffer);
            let write = state
                .file
                .write_all(&buffer)
                .and_then(|()| state.file.sync_data());
            match write {
                Ok(()) => {
                    state.committed += buffer.len() as u64;
                    state.durable = state.committed;
                    state.error = None; // archive caught up again
                    Ok(())
                }
                Err(e) => {
                    state.buffer = buffer; // nothing new appended: lock held
                    Err(e)
                }
            }
        })();
        if let Err(e) = &result {
            state.needs_repair = true;
            state.write_errors += 1;
            state.error = Some(e.to_string());
        }
        result
    }

    /// Records recovered from disk when the segment was opened (the
    /// archive's pre-existing history).
    pub fn recovered_records(&self) -> usize {
        lock(&self.state).recovered
    }

    /// Total segment bytes on disk guaranteed durable.
    pub fn durable_len(&self) -> u64 {
        lock(&self.state).durable
    }

    /// Most recent write failure, if any (appends are infallible on the
    /// [`AuditSink`] trait; failures park here until a later sync lands
    /// the buffer). `Some` means the on-disk archive is currently
    /// *behind* the in-memory index — an `audit.read` answered from disk
    /// may be shorter than `len()` suggests.
    pub fn last_error(&self) -> Option<String> {
        lock(&self.state).error.clone()
    }

    /// Total write/fsync failures since open (one per failed sync
    /// cycle). Monotonic — unlike [`last_error`](Self::last_error),
    /// which clears on recovery — so stats can expose a counter.
    pub fn write_errors(&self) -> u64 {
        lock(&self.state).write_errors
    }

    /// Simulate a kill-9 with a cold page cache: lose the buffer and
    /// anything written but not fsynced, and go inert.
    pub fn simulate_crash(&self) -> std::io::Result<()> {
        let mut state = lock(&self.state);
        state.buffer.clear();
        state.dead = true;
        let durable = state.durable;
        state.offsets.retain(|&o| o < durable);
        state.file.set_len(durable)?;
        state.file.sync_data()?;
        Ok(())
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl AuditSink for AuditSpill {
    fn append(&self, record: &AuditRecord) {
        let framed = codec::frame(&encode_audit_record(record));
        let mut state = lock(&self.state);
        if state.dead {
            return;
        }
        let offset = state.committed + state.buffer.len() as u64;
        state.offsets.push(offset);
        state.buffer.extend_from_slice(&framed);
    }

    fn read(&self, start: usize, count: usize) -> Vec<AuditRecord> {
        let mut state = lock(&self.state);
        let end = state.offsets.len().min(start.saturating_add(count));
        if start >= end {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(end - start);
        for i in start..end {
            let offset = state.offsets[i];
            let record = if offset >= state.committed {
                // Still buffered: decode straight from memory.
                let at = (offset - state.committed) as usize;
                codec::read_frame(&state.buffer[at..])
                    .ok()
                    .flatten()
                    .and_then(|(payload, _)| decode_audit_record(payload).ok())
            } else {
                read_record_at(state.file.as_mut(), offset)
            };
            match record {
                Some(record) => out.push(record),
                None => break, // unreadable region: stop, don't invent
            }
        }
        // Restore the append position for subsequent writes.
        let committed = state.committed;
        let _ = state.file.seek(SeekFrom::Start(committed));
        out
    }

    fn len(&self) -> usize {
        lock(&self.state).offsets.len()
    }
}

/// Read one framed record at `offset` via seek+read (the state lock
/// serializes this against appends).
fn read_record_at(file: &mut dyn StorageFile, offset: u64) -> Option<AuditRecord> {
    file.seek(SeekFrom::Start(offset)).ok()?;
    let mut header = [0u8; codec::FRAME_HEADER];
    file.read_exact(&mut header).ok()?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let mut framed = vec![0u8; codec::FRAME_HEADER + len];
    framed[..codec::FRAME_HEADER].copy_from_slice(&header);
    file.read_exact(&mut framed[codec::FRAME_HEADER..]).ok()?;
    let (payload, _) = codec::read_frame(&framed).ok()??;
    decode_audit_record(payload).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealFs;
    use cerfix::CellEvent;
    use cerfix_relation::Value;

    fn real_fs() -> Arc<dyn StorageFs> {
        Arc::new(RealFs)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cerfix-spill-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("audit.seg")
    }

    fn rec(i: usize) -> AuditRecord {
        AuditRecord {
            tuple_id: i,
            attr: i % 4,
            round: 1,
            event: CellEvent::UserValidated {
                old: Value::Null,
                new: Value::str(format!("v{i}")),
            },
        }
    }

    #[test]
    fn append_read_reopen() {
        let path = tmp("reopen");
        let (spill, scan) = AuditSpill::open(&path, &real_fs()).unwrap();
        assert_eq!(scan.records, 0);
        for i in 0..10 {
            spill.append(&rec(i));
        }
        // Buffered reads work before any flush.
        assert_eq!(spill.read(3, 4), (3..7).map(rec).collect::<Vec<_>>());
        spill.sync().unwrap();
        // Flushed reads and mixed flushed/buffered reads.
        for i in 10..13 {
            spill.append(&rec(i));
        }
        assert_eq!(spill.read(8, 10), (8..13).map(rec).collect::<Vec<_>>());
        spill.sync().unwrap();
        assert_eq!(spill.len(), 13);
        drop(spill);
        let (reopened, scan) = AuditSpill::open(&path, &real_fs()).unwrap();
        assert_eq!(scan.records, 13);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(reopened.recovered_records(), 13);
        assert_eq!(reopened.read(0, 100), (0..13).map(rec).collect::<Vec<_>>());
        // And appends continue after recovery.
        reopened.append(&rec(13));
        reopened.sync().unwrap();
        assert_eq!(reopened.read(12, 5), vec![rec(12), rec(13)]);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_dropped_on_open() {
        let path = tmp("torn");
        {
            let (spill, _) = AuditSpill::open(&path, &real_fs()).unwrap();
            for i in 0..5 {
                spill.append(&rec(i));
            }
            spill.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Tear mid-way through the last record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (spill, scan) = AuditSpill::open(&path, &real_fs()).unwrap();
        assert_eq!(scan.records, 4);
        assert!(scan.torn_bytes > 0);
        assert_eq!(spill.read(0, 10).len(), 4);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn crash_simulation_keeps_only_durable_records() {
        let path = tmp("crash");
        let (spill, _) = AuditSpill::open(&path, &real_fs()).unwrap();
        for i in 0..3 {
            spill.append(&rec(i));
        }
        spill.sync().unwrap();
        for i in 3..6 {
            spill.append(&rec(i)); // buffered, never synced
        }
        spill.simulate_crash().unwrap();
        drop(spill);
        let (reopened, scan) = AuditSpill::open(&path, &real_fs()).unwrap();
        assert_eq!(scan.records, 3);
        assert_eq!(reopened.read(0, 10).len(), 3);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
