//! # cerfix-storage — durability for the CerFix cleaning service
//!
//! CerFix's pitch is that every fix is *certain* — a claim that is only
//! worth something if the system can attest to what it fixed, and only
//! operationally useful if a restart doesn't destroy every in-flight
//! clerk session. This crate is the durable substrate behind
//! `cerfix-server`:
//!
//! * [`Journal`] — a crash-safe, length-prefixed + CRC-checksummed
//!   **write-ahead journal** of session events (create / validate /
//!   commit / abort / evict / rules-reload) with group-fsync batching:
//!   appends are memory-only on the request path; a flusher thread
//!   retires them with one `write`+`fdatasync` per cycle, and
//!   `session.commit` waits for its group's fsync.
//! * [`snapshot`] — periodic atomic **snapshots** of all live session
//!   state (tmp + fsync + rename), after which the journal is truncated
//!   to a new epoch. Recovery = load snapshot + replay the journal
//!   suffix through the (deterministic) correcting process.
//! * [`AuditSpill`] — an append-only, indexed segment of cell-level
//!   **audit provenance**, implementing the core
//!   [`AuditSink`](cerfix::AuditSink) so the in-memory audit log keeps
//!   only a bounded window while `audit.read` serves the full history.
//!
//! [`Storage`] ties the three together under one data directory:
//!
//! ```text
//! <data-dir>/journal.wal   write-ahead session journal (epoch-tagged)
//! <data-dir>/snapshot.bin  last complete snapshot (atomic rename target)
//! <data-dir>/audit.seg     append-only audit provenance segment
//! ```
//!
//! Durability contract (also documented in the repository README):
//! a `session.commit` acknowledged over the wire survives kill-9; other
//! acknowledged ops survive any crash that happens after the next group
//! flush (bounded by the flush interval); a torn tail from a crash is
//! cut at the last complete frame and loses only un-fsynced suffix
//! events. The audit segment is never truncated — it is the system's
//! provenance archive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod events;
mod journal;
pub mod snapshot;
mod spill;

pub use codec::CodecError;
pub use events::{
    decode_audit_record, encode_audit_record, JournalEvent, SessionSnapshot, SnapshotData,
};
pub use journal::{
    read_events, scan_journal, CursorRead, FlushProfile, Journal, JournalScan, JOURNAL_HEADER,
};
pub use snapshot::{load_snapshot, write_snapshot, SNAPSHOT_FILE, SNAPSHOT_TMP};
pub use spill::{AuditSpill, SpillScan};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// File name of the write-ahead journal inside a data dir.
pub const JOURNAL_FILE: &str = "journal.wal";
/// File name of the audit spill segment inside a data dir.
pub const AUDIT_FILE: &str = "audit.seg";

/// Tunables for a [`Storage`].
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// The data directory (created if absent).
    pub dir: PathBuf,
    /// Group-commit cadence of the journal flusher. Smaller = less data
    /// at risk between fsyncs; larger = better batching.
    pub flush_interval: Duration,
    /// Audit records kept resident in the in-memory window.
    pub audit_window: usize,
    /// Take a snapshot when at least this much time has passed *and*
    /// events have been journaled since the last one.
    pub snapshot_interval: Duration,
    /// Also snapshot (regardless of the interval) once this many events
    /// accumulate in the journal — bounds replay time after a crash.
    pub snapshot_every_events: u64,
}

impl StorageConfig {
    /// Defaults for `dir`: 2 ms group commits, 4096-record audit
    /// window, snapshots every 60 s or 50 000 events.
    pub fn new(dir: impl Into<PathBuf>) -> StorageConfig {
        StorageConfig {
            dir: dir.into(),
            flush_interval: Duration::from_millis(2),
            audit_window: 4096,
            snapshot_interval: Duration::from_secs(60),
            snapshot_every_events: 50_000,
        }
    }
}

/// What recovery found on disk, handed to the service for replay.
#[derive(Debug)]
pub struct RecoveredState {
    /// The last complete snapshot, if any.
    pub snapshot: Option<SnapshotData>,
    /// Journal events appended after that snapshot, in order. Empty
    /// when the journal's epoch did not match (a crash landed between
    /// snapshot rename and journal truncation — the snapshot already
    /// owns that state).
    pub events: Vec<JournalEvent>,
    /// Journal bytes discarded as a torn tail.
    pub journal_torn_bytes: u64,
    /// Audit records recovered from the spill segment.
    pub audit_records: usize,
    /// Audit-segment bytes discarded as a torn tail.
    pub audit_torn_bytes: u64,
}

/// One data directory: journal + snapshots + audit spill.
#[derive(Debug)]
pub struct Storage {
    journal: Journal,
    spill: Arc<AuditSpill>,
    config: StorageConfig,
    epoch: AtomicU64,
    events_since_snapshot: AtomicU64,
    last_snapshot: Mutex<Instant>,
}

impl Storage {
    /// Open (or initialize) the data directory, recovering whatever a
    /// previous process left: load the snapshot, scan the journal for
    /// the valid suffix of events, cut torn tails, and reopen the audit
    /// segment. The returned [`RecoveredState`] is what the service
    /// replays.
    pub fn open(config: StorageConfig) -> std::io::Result<(Storage, RecoveredState)> {
        std::fs::create_dir_all(&config.dir)?;
        // A tmp left by a crash mid-snapshot is garbage by construction.
        let _ = std::fs::remove_file(config.dir.join(SNAPSHOT_TMP));
        let snapshot = snapshot::load_snapshot(&config.dir)?;
        let snapshot_epoch = snapshot.as_ref().map_or(0, |s| s.epoch);
        let journal_path = config.dir.join(JOURNAL_FILE);
        let scan = journal::scan_journal(&journal_path)?;
        // The journal's events belong to this snapshot lineage only if
        // the epochs agree; otherwise the snapshot already covers them
        // (crash between rename and truncate) and the journal is reset.
        let (events, journal_torn) = if scan.epoch == snapshot_epoch {
            (scan.events.clone(), scan.torn_bytes)
        } else {
            (Vec::new(), scan.torn_bytes + scan.valid_len)
        };
        let journal = Journal::open(&journal_path, &scan, snapshot_epoch, config.flush_interval)?;
        let (spill, spill_scan) = AuditSpill::open(&config.dir.join(AUDIT_FILE))?;
        let spill = Arc::new(spill);
        journal.set_companion(Arc::clone(&spill));
        let recovered = RecoveredState {
            snapshot,
            events,
            journal_torn_bytes: journal_torn,
            audit_records: spill_scan.records,
            audit_torn_bytes: spill_scan.torn_bytes,
        };
        Ok((
            Storage {
                journal,
                spill,
                epoch: AtomicU64::new(snapshot_epoch),
                events_since_snapshot: AtomicU64::new(recovered.events.len() as u64),
                last_snapshot: Mutex::new(Instant::now()),
                config,
            },
            recovered,
        ))
    }

    /// Journal one event (group-committed in the background); returns
    /// the sequence number for [`sync`](Self::sync).
    pub fn append(&self, event: &JournalEvent) -> u64 {
        self.events_since_snapshot.fetch_add(1, Ordering::Relaxed);
        self.journal.append(event)
    }

    /// Block until the fsync covering `seq` (journal *and* audit spill)
    /// completes.
    pub fn sync(&self, seq: u64) {
        self.journal.sync(seq);
    }

    /// The write-ahead journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The audit spill segment (attach as the audit log's sink).
    pub fn spill(&self) -> &Arc<AuditSpill> {
        &self.spill
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Configuration this storage was opened with.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The replication position `(epoch, durable event count)`.
    pub fn durable_position(&self) -> (u64, u64) {
        self.journal.durable_position()
    }

    /// Epoch-file position covering `seq` (see [`Journal::position_of`]).
    pub fn position_of(&self, seq: u64) -> u64 {
        self.journal.position_of(seq)
    }

    /// Read up to `max` durable events from epoch-file position
    /// `offset` — the primary side of a `replica.sync` pull.
    pub fn read_journal_from(&self, offset: u64, max: usize) -> std::io::Result<CursorRead> {
        self.journal.read_durable_from(offset, max)
    }

    /// Events journaled since the last snapshot.
    pub fn events_since_snapshot(&self) -> u64 {
        self.events_since_snapshot.load(Ordering::Relaxed)
    }

    /// True when the snapshot policy says it is time (interval elapsed
    /// with activity, or the event budget is exhausted). The service
    /// checks this from its housekeeping loop.
    pub fn should_snapshot(&self) -> bool {
        let events = self.events_since_snapshot();
        if events == 0 {
            return false;
        }
        if events >= self.config.snapshot_every_events {
            return true;
        }
        let last = *self
            .last_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        last.elapsed() >= self.config.snapshot_interval
    }

    /// Install `data` as the new snapshot and truncate the journal to
    /// its epoch. The caller must have quiesced journal appends (the
    /// service holds its storage gate in write mode) and `data.epoch`
    /// must be greater than `self.epoch()` (locally produced snapshots
    /// use `epoch() + 1`; a follower installing a primary's snapshot
    /// may jump several epochs at once).
    ///
    /// Ordering is crash-safe at every step: the snapshot is renamed
    /// into place *before* the journal is truncated, so a crash between
    /// the two leaves a stale-epoch journal that recovery ignores.
    pub fn install_snapshot(&self, data: &SnapshotData) -> std::io::Result<()> {
        debug_assert!(data.epoch > self.epoch());
        // Make the audit archive at least as fresh as the snapshot.
        self.spill.sync()?;
        snapshot::write_snapshot(&self.config.dir, data)?;
        self.journal.truncate_to_epoch(data.epoch)?;
        self.epoch.store(data.epoch, Ordering::Release);
        self.events_since_snapshot.store(0, Ordering::Relaxed);
        *self
            .last_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Instant::now();
        Ok(())
    }

    /// Simulate a kill-9 with a cold page cache: every file rolls back
    /// to its last fsync'd length and all writers go inert. The worst
    /// legal crash outcome, used by the recovery test harness.
    pub fn simulate_crash(&self) -> std::io::Result<()> {
        self.journal.simulate_crash()?;
        self.spill.simulate_crash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Value;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cerfix-storage-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> StorageConfig {
        StorageConfig {
            snapshot_interval: Duration::from_secs(3600),
            snapshot_every_events: 1_000_000,
            ..StorageConfig::new(dir)
        }
    }

    fn ev(session: u64) -> JournalEvent {
        JournalEvent::SessionCreated {
            session,
            values: vec![Value::str("v")],
        }
    }

    #[test]
    fn open_append_reopen_replays_events() {
        let dir = tmp_dir("replay");
        {
            let (storage, recovered) = Storage::open(config(&dir)).unwrap();
            assert!(recovered.snapshot.is_none());
            assert!(recovered.events.is_empty());
            let seq = storage.append(&ev(1));
            storage.append(&ev(2));
            storage.sync(seq + 1);
        }
        let (_, recovered) = Storage::open(config(&dir)).unwrap();
        assert_eq!(recovered.events, vec![ev(1), ev(2)]);
        assert_eq!(recovered.journal_torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_journal_and_epoch_guard_discards_stale_journal() {
        let dir = tmp_dir("epoch-guard");
        {
            let (storage, _) = Storage::open(config(&dir)).unwrap();
            let seq = storage.append(&ev(1));
            storage.sync(seq);
            storage
                .install_snapshot(&SnapshotData {
                    epoch: 1,
                    fingerprint: 0,
                    rules_dsl: String::new(),
                    next_session_id: 2,
                    master_appended: vec![],
                    sessions: vec![],
                })
                .unwrap();
            assert_eq!(storage.epoch(), 1);
            assert_eq!(storage.events_since_snapshot(), 0);
            let seq = storage.append(&ev(2));
            storage.sync(seq);
        }
        let (_, recovered) = Storage::open(config(&dir)).unwrap();
        assert_eq!(recovered.snapshot.as_ref().unwrap().epoch, 1);
        assert_eq!(recovered.events, vec![ev(2)], "pre-snapshot event gone");

        // Crash between snapshot rename and journal truncation: fake it
        // by writing a *newer* snapshot while the journal stays at the
        // old epoch. The journal must be ignored.
        write_snapshot(
            &dir,
            &SnapshotData {
                epoch: 9,
                fingerprint: 0,
                rules_dsl: String::new(),
                next_session_id: 10,
                master_appended: vec![],
                sessions: vec![],
            },
        )
        .unwrap();
        let (storage, recovered) = Storage::open(config(&dir)).unwrap();
        assert_eq!(recovered.snapshot.unwrap().epoch, 9);
        assert!(
            recovered.events.is_empty(),
            "stale-epoch journal not replayed"
        );
        assert_eq!(storage.epoch(), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn should_snapshot_respects_event_budget() {
        let dir = tmp_dir("policy");
        let mut cfg = config(&dir);
        cfg.snapshot_every_events = 3;
        let (storage, _) = Storage::open(cfg).unwrap();
        assert!(!storage.should_snapshot(), "no events yet");
        storage.append(&ev(1));
        assert!(!storage.should_snapshot(), "below budget, interval far");
        storage.append(&ev(2));
        storage.append(&ev(3));
        assert!(storage.should_snapshot(), "event budget reached");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
