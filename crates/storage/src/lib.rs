//! # cerfix-storage — durability for the CerFix cleaning service
//!
//! CerFix's pitch is that every fix is *certain* — a claim that is only
//! worth something if the system can attest to what it fixed, and only
//! operationally useful if a restart doesn't destroy every in-flight
//! clerk session. This crate is the durable substrate behind
//! `cerfix-server`:
//!
//! * [`Journal`] — a crash-safe, length-prefixed + CRC-checksummed
//!   **write-ahead journal** of session events (create / validate /
//!   commit / abort / evict / rules-reload) with group-fsync batching:
//!   appends are memory-only on the request path; a flusher thread
//!   retires them with one `write`+`fdatasync` per cycle, and
//!   `session.commit` waits for its group's fsync.
//! * [`snapshot`] — periodic atomic **snapshots** of all live session
//!   state (tmp + fsync + rename), after which the journal is truncated
//!   to a new epoch. Recovery = load snapshot + replay the journal
//!   suffix through the (deterministic) correcting process.
//! * [`AuditSpill`] — an append-only, indexed segment of cell-level
//!   **audit provenance**, implementing the core
//!   [`AuditSink`](cerfix::AuditSink) so the in-memory audit log keeps
//!   only a bounded window while `audit.read` serves the full history.
//!
//! [`Storage`] ties the three together under one data directory:
//!
//! ```text
//! <data-dir>/journal.wal   write-ahead session journal (epoch-tagged)
//! <data-dir>/snapshot.bin  last complete snapshot (atomic rename target)
//! <data-dir>/audit.seg     append-only audit provenance segment
//! ```
//!
//! Durability contract (also documented in the repository README):
//! a `session.commit` acknowledged over the wire survives kill-9; other
//! acknowledged ops survive any crash that happens after the next group
//! flush (bounded by the flush interval); a torn tail from a crash is
//! cut at the last complete frame and loses only un-fsynced suffix
//! events. The audit segment is never truncated — it is the system's
//! provenance archive.
//!
//! ## Fault tolerance
//!
//! Every write-path syscall goes through the pluggable [`vfs`] layer
//! ([`RealFs`] in production, [`FaultFs`] under test), so ENOSPC, EIO,
//! torn writes, bit flips and dropped renames can be injected
//! deterministically. The failure contract they exercise:
//!
//! * a failed journal **write** is retryable ([`SyncError::WriteFailed`]
//!   — the commit was *not* acked, frames retry next cycle);
//! * a failed journal **fsync** permanently poisons the writer
//!   ([`SyncError::Poisoned`] — fsyncgate semantics: after `fdatasync`
//!   errors, a retried-and-"successful" fsync proves nothing);
//! * **corruption** (a complete frame or snapshot failing its checksum)
//!   is a typed [`StorageError::Corrupt`] with file and offset — never
//!   a silently wrong recovery ([`scrub`] is the offline/online
//!   detector; replica re-sync, in the server crate, is the repair).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod events;
mod journal;
pub mod scrub;
pub mod snapshot;
mod spill;
pub mod vfs;

pub use codec::CodecError;
pub use events::{
    decode_audit_record, encode_audit_record, JournalEvent, SessionSnapshot, SnapshotData,
};
pub use journal::{
    read_events, scan_journal, scan_journal_with, CursorRead, FlushProfile, Journal, JournalScan,
    ScanMode, SyncError, JOURNAL_HEADER,
};
pub use scrub::{scrub_dir, Corruption, ScrubReport};
pub use snapshot::{load_snapshot, write_snapshot, SNAPSHOT_FILE, SNAPSHOT_TMP};
pub use spill::{AuditSpill, SpillScan};
pub use vfs::{FaultFs, FaultPlan, RealFs, StorageFile, StorageFs};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// File name of the write-ahead journal inside a data dir.
pub const JOURNAL_FILE: &str = "journal.wal";
/// File name of the audit spill segment inside a data dir.
pub const AUDIT_FILE: &str = "audit.seg";

/// Why an on-disk structure could not be trusted.
///
/// The two variants draw the line the whole crate is built around: an
/// environmental I/O failure ([`Io`](Self::Io)) may be transient and
/// names no bytes, while [`Corrupt`](Self::Corrupt) means a *complete,
/// previously acknowledged* structure failed verification — recovery
/// must refuse (or, on a replica, re-fetch) rather than guess.
#[derive(Debug)]
pub enum StorageError {
    /// The underlying read/write failed.
    Io(std::io::Error),
    /// A checksum-verified structure no longer verifies: bit rot,
    /// a bad block, or outside interference.
    Corrupt {
        /// The damaged file (full path as scanned).
        file: String,
        /// Byte offset of the first damaged region.
        offset: u64,
        /// What failed to verify (CRC mismatch, bad magic, ...).
        detail: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt {
                file,
                offset,
                detail,
            } => write!(f, "corrupt: {file} @ {offset}: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> StorageError {
        StorageError::Io(e)
    }
}

impl From<StorageError> for std::io::Error {
    fn from(e: StorageError) -> std::io::Error {
        match e {
            StorageError::Io(e) => e,
            corrupt @ StorageError::Corrupt { .. } => {
                std::io::Error::new(std::io::ErrorKind::InvalidData, corrupt.to_string())
            }
        }
    }
}

/// Tunables for a [`Storage`].
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// The data directory (created if absent).
    pub dir: PathBuf,
    /// Group-commit cadence of the journal flusher. Smaller = less data
    /// at risk between fsyncs; larger = better batching.
    pub flush_interval: Duration,
    /// Audit records kept resident in the in-memory window.
    pub audit_window: usize,
    /// Take a snapshot when at least this much time has passed *and*
    /// events have been journaled since the last one.
    pub snapshot_interval: Duration,
    /// Also snapshot (regardless of the interval) once this many events
    /// accumulate in the journal — bounds replay time after a crash.
    pub snapshot_every_events: u64,
    /// The filesystem every write-path syscall goes through —
    /// [`RealFs`] in production, [`FaultFs`] under fault injection.
    pub fs: Arc<dyn StorageFs>,
    /// How recovery treats a complete-but-corrupt journal frame:
    /// [`ScanMode::Strict`] (a primary refuses with a typed error)
    /// or [`ScanMode::Tolerant`] (a replica keeps the clean prefix and
    /// re-fetches the corrupt suffix from its primary).
    pub scan_mode: ScanMode,
}

impl StorageConfig {
    /// Defaults for `dir`: 2 ms group commits, 4096-record audit
    /// window, snapshots every 60 s or 50 000 events, the real
    /// filesystem, strict corruption handling.
    pub fn new(dir: impl Into<PathBuf>) -> StorageConfig {
        StorageConfig {
            dir: dir.into(),
            flush_interval: Duration::from_millis(2),
            audit_window: 4096,
            snapshot_interval: Duration::from_secs(60),
            snapshot_every_events: 50_000,
            fs: Arc::new(RealFs),
            scan_mode: ScanMode::Strict,
        }
    }
}

/// What recovery found on disk, handed to the service for replay.
#[derive(Debug)]
pub struct RecoveredState {
    /// The last complete snapshot, if any.
    pub snapshot: Option<SnapshotData>,
    /// Journal events appended after that snapshot, in order. Empty
    /// when the journal's epoch did not match (a crash landed between
    /// snapshot rename and journal truncation — the snapshot already
    /// owns that state).
    pub events: Vec<JournalEvent>,
    /// Journal bytes discarded as a torn tail.
    pub journal_torn_bytes: u64,
    /// Journal bytes discarded as *corruption* under
    /// [`ScanMode::Tolerant`] — acked events a replica must re-fetch
    /// from its primary (always 0 in strict mode, which errors
    /// instead).
    pub journal_corrupt_bytes: u64,
    /// Audit records recovered from the spill segment.
    pub audit_records: usize,
    /// Audit-segment bytes discarded as a torn tail.
    pub audit_torn_bytes: u64,
}

/// One data directory: journal + snapshots + audit spill.
#[derive(Debug)]
pub struct Storage {
    journal: Journal,
    spill: Arc<AuditSpill>,
    config: StorageConfig,
    epoch: AtomicU64,
    events_since_snapshot: AtomicU64,
    last_snapshot: Mutex<Instant>,
}

impl Storage {
    /// Open (or initialize) the data directory, recovering whatever a
    /// previous process left: load the snapshot, scan the journal for
    /// the valid suffix of events, cut torn tails, and reopen the audit
    /// segment. The returned [`RecoveredState`] is what the service
    /// replays.
    ///
    /// Corruption (as opposed to a legal torn tail) is a typed
    /// [`StorageError::Corrupt`] under the default
    /// [`ScanMode::Strict`]; a replica opens with
    /// [`ScanMode::Tolerant`] and re-fetches instead.
    pub fn open(config: StorageConfig) -> Result<(Storage, RecoveredState), StorageError> {
        std::fs::create_dir_all(&config.dir)?;
        // A tmp left by a crash mid-snapshot is garbage by construction.
        let _ = std::fs::remove_file(config.dir.join(SNAPSHOT_TMP));
        let snapshot = snapshot::load_snapshot(&config.dir)?;
        let snapshot_epoch = snapshot.as_ref().map_or(0, |s| s.epoch);
        let journal_path = config.dir.join(JOURNAL_FILE);
        let scan = journal::scan_journal_with(&journal_path, config.scan_mode)?;
        // The journal's events belong to this snapshot lineage only if
        // the epochs agree; otherwise the snapshot already covers them
        // (crash between rename and truncate) and the journal is reset.
        let (events, journal_torn) = if scan.epoch == snapshot_epoch {
            (scan.events.clone(), scan.torn_bytes)
        } else {
            (Vec::new(), scan.torn_bytes + scan.valid_len)
        };
        let journal = Journal::open(
            &journal_path,
            &scan,
            snapshot_epoch,
            config.flush_interval,
            &config.fs,
        )?;
        let (spill, spill_scan) = AuditSpill::open(&config.dir.join(AUDIT_FILE), &config.fs)?;
        let spill = Arc::new(spill);
        journal.set_companion(Arc::clone(&spill));
        let recovered = RecoveredState {
            snapshot,
            events,
            journal_torn_bytes: journal_torn,
            journal_corrupt_bytes: scan.corrupt_bytes,
            audit_records: spill_scan.records,
            audit_torn_bytes: spill_scan.torn_bytes,
        };
        Ok((
            Storage {
                journal,
                spill,
                epoch: AtomicU64::new(snapshot_epoch),
                events_since_snapshot: AtomicU64::new(recovered.events.len() as u64),
                last_snapshot: Mutex::new(Instant::now()),
                config,
            },
            recovered,
        ))
    }

    /// Journal one event (group-committed in the background); returns
    /// the sequence number for [`sync`](Self::sync).
    pub fn append(&self, event: &JournalEvent) -> u64 {
        self.events_since_snapshot.fetch_add(1, Ordering::Relaxed);
        self.journal.append(event)
    }

    /// Block until the fsync covering `seq` (journal *and* audit spill)
    /// completes. Returns a typed [`SyncError`] — never hangs — when
    /// the covering write failed (retryable), the journal poisoned
    /// (permanent until a snapshot rebuilds the file), or the journal
    /// stopped.
    pub fn sync(&self, seq: u64) -> Result<(), SyncError> {
        self.journal.sync(seq)
    }

    /// The write-ahead journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The audit spill segment (attach as the audit log's sink).
    pub fn spill(&self) -> &Arc<AuditSpill> {
        &self.spill
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Configuration this storage was opened with.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Free bytes under the data directory, when the filesystem layer
    /// can tell ([`FaultFs`] reports its remaining injected budget;
    /// [`RealFs`] returns `None` and the server probes the OS itself).
    pub fn free_bytes(&self) -> Option<u64> {
        self.config.fs.free_bytes(&self.config.dir)
    }

    /// Current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The replication position `(epoch, durable event count)`.
    pub fn durable_position(&self) -> (u64, u64) {
        self.journal.durable_position()
    }

    /// Epoch-file position covering `seq` (see [`Journal::position_of`]).
    pub fn position_of(&self, seq: u64) -> u64 {
        self.journal.position_of(seq)
    }

    /// Read up to `max` durable events from epoch-file position
    /// `offset` — the primary side of a `replica.sync` pull.
    pub fn read_journal_from(&self, offset: u64, max: usize) -> std::io::Result<CursorRead> {
        self.journal.read_durable_from(offset, max)
    }

    /// Events journaled since the last snapshot.
    pub fn events_since_snapshot(&self) -> u64 {
        self.events_since_snapshot.load(Ordering::Relaxed)
    }

    /// True when the snapshot policy says it is time (interval elapsed
    /// with activity, or the event budget is exhausted). The service
    /// checks this from its housekeeping loop.
    pub fn should_snapshot(&self) -> bool {
        let events = self.events_since_snapshot();
        if events == 0 {
            return false;
        }
        if events >= self.config.snapshot_every_events {
            return true;
        }
        let last = *self
            .last_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        last.elapsed() >= self.config.snapshot_interval
    }

    /// Install `data` as the new snapshot and truncate the journal to
    /// its epoch. The caller must have quiesced journal appends (the
    /// service holds its storage gate in write mode) and `data.epoch`
    /// must be greater than `self.epoch()` (locally produced snapshots
    /// use `epoch() + 1`; a follower installing a primary's snapshot
    /// may jump several epochs at once).
    ///
    /// Ordering is crash-safe at every step: the snapshot is renamed
    /// into place *before* the journal is truncated, so a crash between
    /// the two leaves a stale-epoch journal that recovery ignores.
    ///
    /// This is also the only exit from a poisoned journal: `set_len(0)`
    /// plus a freshly written, fsynced header is a file whose entire
    /// contents are known good — unlike any retry against old bytes.
    pub fn install_snapshot(&self, data: &SnapshotData) -> std::io::Result<()> {
        debug_assert!(data.epoch > self.epoch());
        // Make the audit archive at least as fresh as the snapshot.
        self.spill.sync()?;
        snapshot::write_snapshot(self.config.fs.as_ref(), &self.config.dir, data)?;
        self.journal.truncate_to_epoch(data.epoch)?;
        self.epoch.store(data.epoch, Ordering::Release);
        self.events_since_snapshot.store(0, Ordering::Relaxed);
        *self
            .last_snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Instant::now();
        Ok(())
    }

    /// Verify checksums across the live directory — the `scrub`
    /// protocol op. Only the *durable* prefix of the journal and audit
    /// segment is read, so bytes the flusher is concurrently writing
    /// are never misdiagnosed as damage; the snapshot is immutable
    /// between installs and is read whole.
    pub fn scrub(&self) -> std::io::Result<ScrubReport> {
        scrub::scrub_with_limits(
            &self.config.dir,
            Some(self.journal.durable_len()),
            Some(self.spill.durable_len()),
        )
    }

    /// Simulate a kill-9 with a cold page cache: every file rolls back
    /// to its last fsync'd length and all writers go inert. The worst
    /// legal crash outcome, used by the recovery test harness.
    pub fn simulate_crash(&self) -> std::io::Result<()> {
        self.journal.simulate_crash()?;
        self.spill.simulate_crash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerfix_relation::Value;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cerfix-storage-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> StorageConfig {
        StorageConfig {
            snapshot_interval: Duration::from_secs(3600),
            snapshot_every_events: 1_000_000,
            ..StorageConfig::new(dir)
        }
    }

    fn ev(session: u64) -> JournalEvent {
        JournalEvent::SessionCreated {
            session,
            values: vec![Value::str("v")],
        }
    }

    #[test]
    fn open_append_reopen_replays_events() {
        let dir = tmp_dir("replay");
        {
            let (storage, recovered) = Storage::open(config(&dir)).unwrap();
            assert!(recovered.snapshot.is_none());
            assert!(recovered.events.is_empty());
            let seq = storage.append(&ev(1));
            storage.append(&ev(2));
            storage.sync(seq + 1).unwrap();
        }
        let (_, recovered) = Storage::open(config(&dir)).unwrap();
        assert_eq!(recovered.events, vec![ev(1), ev(2)]);
        assert_eq!(recovered.journal_torn_bytes, 0);
        assert_eq!(recovered.journal_corrupt_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_journal_and_epoch_guard_discards_stale_journal() {
        let dir = tmp_dir("epoch-guard");
        {
            let (storage, _) = Storage::open(config(&dir)).unwrap();
            let seq = storage.append(&ev(1));
            storage.sync(seq).unwrap();
            storage
                .install_snapshot(&SnapshotData {
                    epoch: 1,
                    fingerprint: 0,
                    rules_dsl: String::new(),
                    next_session_id: 2,
                    master_appended: vec![],
                    sessions: vec![],
                })
                .unwrap();
            assert_eq!(storage.epoch(), 1);
            assert_eq!(storage.events_since_snapshot(), 0);
            let seq = storage.append(&ev(2));
            storage.sync(seq).unwrap();
        }
        let (_, recovered) = Storage::open(config(&dir)).unwrap();
        assert_eq!(recovered.snapshot.as_ref().unwrap().epoch, 1);
        assert_eq!(recovered.events, vec![ev(2)], "pre-snapshot event gone");

        // Crash between snapshot rename and journal truncation: fake it
        // by writing a *newer* snapshot while the journal stays at the
        // old epoch. The journal must be ignored.
        write_snapshot(
            &RealFs,
            &dir,
            &SnapshotData {
                epoch: 9,
                fingerprint: 0,
                rules_dsl: String::new(),
                next_session_id: 10,
                master_appended: vec![],
                sessions: vec![],
            },
        )
        .unwrap();
        let (storage, recovered) = Storage::open(config(&dir)).unwrap();
        assert_eq!(recovered.snapshot.unwrap().epoch, 9);
        assert!(
            recovered.events.is_empty(),
            "stale-epoch journal not replayed"
        );
        assert_eq!(storage.epoch(), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn should_snapshot_respects_event_budget() {
        let dir = tmp_dir("policy");
        let mut cfg = config(&dir);
        cfg.snapshot_every_events = 3;
        let (storage, _) = Storage::open(cfg).unwrap();
        assert!(!storage.should_snapshot(), "no events yet");
        storage.append(&ev(1));
        assert!(!storage.should_snapshot(), "below budget, interval far");
        storage.append(&ev(2));
        storage.append(&ev(3));
        assert!(storage.should_snapshot(), "event budget reached");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_refuses_open_with_typed_error() {
        let dir = tmp_dir("corrupt-open");
        {
            let (storage, _) = Storage::open(config(&dir)).unwrap();
            let seq = storage.append(&ev(1));
            storage.sync(seq).unwrap();
            storage
                .install_snapshot(&SnapshotData {
                    epoch: 1,
                    fingerprint: 0,
                    rules_dsl: String::new(),
                    next_session_id: 2,
                    master_appended: vec![],
                    sessions: vec![],
                })
                .unwrap();
        }
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        match Storage::open(config(&dir)) {
            Err(StorageError::Corrupt { file, .. }) => {
                assert!(file.ends_with(SNAPSHOT_FILE));
            }
            other => panic!("expected typed corruption, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerant_open_cuts_corrupt_journal_suffix_and_reports_it() {
        let dir = tmp_dir("tolerant-open");
        {
            let (storage, _) = Storage::open(config(&dir)).unwrap();
            let last = (1..=4).fold(0, |_, i| storage.append(&ev(i)));
            storage.sync(last).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Storage::open(config(&dir)),
            Err(StorageError::Corrupt { .. })
        ));
        let mut cfg = config(&dir);
        cfg.scan_mode = ScanMode::Tolerant;
        let (storage, recovered) = Storage::open(cfg).unwrap();
        assert!(recovered.journal_corrupt_bytes > 0);
        assert!(recovered.events.len() < 4, "corrupt suffix dropped");
        for (i, event) in recovered.events.iter().enumerate() {
            assert_eq!(event, &ev(i as u64 + 1), "clean prefix preserved");
        }
        // The re-opened journal accepts appends after the cut.
        let seq = storage.append(&ev(9));
        storage.sync(seq).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
