//! # cerfix-bench — experiment harness
//!
//! Shared utilities for the `exp_*` binaries (one per table/figure of the
//! evaluation, see `EXPERIMENTS.md`) and the criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cerfix::{clean_stream, DataMonitor, OracleUser, StreamReport};
use cerfix_gen::{make_workload, NoiseSpec, Scenario, Workload};
use cerfix_relation::render_table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Run `f`, returning its result and wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Print a titled ASCII table (header + rows) to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let header: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    print!("{}", render_table(&header, rows));
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Deterministic RNG for an experiment, keyed by name so experiments do
/// not perturb each other when rearranged.
pub fn rng_for(experiment: &str) -> StdRng {
    let mut seed = 0xCE2F1Au64;
    for b in experiment.bytes() {
        seed = seed.wrapping_mul(31).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(seed)
}

/// Generate a dirty workload for a scenario.
pub fn workload_for(
    scenario: &Scenario,
    n_tuples: usize,
    noise_rate: f64,
    rng: &mut StdRng,
) -> Workload {
    make_workload(
        &scenario.universe,
        n_tuples,
        &NoiseSpec::with_rate(noise_rate),
        rng,
    )
}

/// Clean a workload through a monitor with oracle users (the demo
/// protocol: the user knows their own record and follows suggestions).
pub fn clean_with_oracle(monitor: &DataMonitor<'_>, workload: &Workload) -> StreamReport {
    let truths = workload.truth.clone();
    clean_stream(monitor, workload.dirty.iter().cloned(), move |idx, _| {
        Box::new(OracleUser::new(truths[idx].clone()))
    })
    .expect("consistent scenario rules never conflict at run time")
}

/// Scale factor from argv: `--scale=N` (default 1) shrinks or grows the
/// experiment sizes so the suite can run quickly in CI and at full size
/// for the recorded results.
pub fn scale_from_args() -> usize {
    std::env::args()
        .find_map(|a| a.strip_prefix("--scale=").and_then(|v| v.parse().ok()))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_and_formatting() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
        assert_eq!(pct(0.2), "20.0%");
    }

    #[test]
    fn rng_is_keyed() {
        use rand::Rng;
        let a: u64 = rng_for("exp1").gen();
        let b: u64 = rng_for("exp1").gen();
        let c: u64 = rng_for("exp2").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn oracle_cleaning_round_trips() {
        let mut rng = rng_for("lib-test");
        let scenario = cerfix_gen::uk::scenario(20, &mut rng);
        let master = scenario.master_data();
        let monitor = DataMonitor::new(&scenario.rules, &master);
        let workload = workload_for(&scenario, 10, 0.3, &mut rng);
        let report = clean_with_oracle(&monitor, &workload);
        assert_eq!(report.len(), 10);
        assert_eq!(report.complete_count(), 10);
        // Every cleaned tuple equals its truth.
        for (outcome, truth) in report.outcomes.iter().zip(workload.truth.iter()) {
            assert_eq!(&outcome.tuple, truth);
        }
    }
}
