//! Experiment F3 — the data-monitor walkthrough (paper Fig. 3a–c).
//!
//! Replays the interaction the screenshots show: the monitor suggests
//! {AC, phn, type, item} (yellow in Fig. 3a); the user validates them;
//! CerFix fixes FN ('M.'→'Mark' via φ4 and the second master tuple), LN
//! and city (green in Fig. 3b); the monitor then suggests zip; after the
//! second round every attribute is validated (Fig. 3c).

use cerfix::{DataMonitor, MasterData, SessionStatus};
use cerfix_bench::print_table;
use cerfix_gen::uk;
use cerfix_relation::{AttrId, AttrSet, Tuple, Value};

fn render_state(tuple: &Tuple, validated: &AttrSet, suggestion: &[AttrId]) -> Vec<String> {
    (0..tuple.arity())
        .map(|a| {
            let marker = if validated.contains(a) {
                "✓" // green in the demo UI
            } else if suggestion.contains(&a) {
                "?" // yellow (suggested)
            } else {
                " "
            };
            format!("{}{}", tuple.get(a), marker)
        })
        .collect()
}

fn main() {
    let input = uk::input_schema();
    let mut rng = cerfix_bench::rng_for("f3");
    let master = MasterData::new(uk::generate_master(2, &mut rng)); // the two paper tuples
    let rules = uk::rules();
    let monitor = DataMonitor::new(&rules, &master);

    // Fig. 3's entry: a mobile customer for Mark Smith, with the
    // abbreviated first name and several wrong fields.
    let dirty = Tuple::of_strings(
        input.clone(),
        [
            "M.",
            "Smith",
            "201",
            "075568485",
            "2",
            "1 Nowhere",
            "???",
            "XXX",
            "DVD",
        ],
    )
    .expect("entry tuple");
    let truth = Tuple::of_strings(
        input.clone(),
        [
            "Mark",
            "Smith",
            "020",
            "075568485",
            "2",
            "20 Baker St",
            "Ldn",
            "NW1 6XE",
            "DVD",
        ],
    )
    .expect("truth tuple");

    let header: Vec<&str> = input.attributes().iter().map(|a| a.name()).collect();

    let mut session = monitor.start(0, dirty);
    let mut round_rows: Vec<Vec<String>> = Vec::new();
    println!("== F3: data monitor walkthrough (paper Fig. 3) ==");
    println!("legend: ✓ validated (green), ? suggested (yellow)\n");

    loop {
        match monitor.status(&session) {
            SessionStatus::Complete => {
                round_rows.push(render_state(&session.tuple, &session.validated, &[]));
                break;
            }
            SessionStatus::Stuck { unvalidated } => {
                println!("stuck with unvalidated attrs {unvalidated:?}");
                break;
            }
            SessionStatus::AwaitingUser { suggestion } => {
                round_rows.push(render_state(
                    &session.tuple,
                    &session.validated,
                    &suggestion,
                ));
                let names: Vec<&str> = suggestion.iter().map(|&a| input.attr_name(a)).collect();
                println!(
                    "round {}: CerFix suggests validating {{{}}}",
                    session.rounds + 1,
                    names.join(", ")
                );
                // Oracle user validates the suggested attributes.
                let validations: Vec<(AttrId, Value)> = suggestion
                    .iter()
                    .map(|&a| (a, truth.get(a).clone()))
                    .collect();
                let report = monitor
                    .apply_validation(&mut session, &validations)
                    .expect("consistent rules");
                for fix in &report.fixes {
                    println!(
                        "  fixed {}: '{}' -> '{}' (rule {}, master row {})",
                        input.attr_name(fix.attr),
                        fix.old,
                        fix.new,
                        rules.get(fix.rule).map(|r| r.name()).unwrap_or("?"),
                        fix.master_row
                    );
                }
            }
        }
    }

    print_table("F3: tuple state per round", &header, &round_rows);
    println!(
        "\ncertain fix reached in {} rounds; user validated {} of {} attributes, CerFix {}.",
        session.rounds,
        session.user_validated.len(),
        input.arity(),
        session.auto_validated.len(),
    );
    assert_eq!(
        session.tuple, truth,
        "the certain fix equals the ground truth"
    );

    // Per-cell audit trail for FN, as Fig. 4 displays it.
    let fn_attr = input.attr_id("FN").expect("FN");
    let history = monitor.audit().cell_history(0, fn_attr);
    println!("\nFN audit trail (Fig. 4's per-cell view): {history:?}");
}
