//! Experiment T7 — rule discovery vs expert rules (extension).
//!
//! The demo "currently only supports manual specification of editing
//! rules" but notes discovery algorithms exist (paper §2/§3). This
//! experiment runs the `cerfix_rules::discover` pipeline on the UK master
//! data and compares three rule sets on the same dirty stream:
//!
//! * the paper's nine expert rules φ1–φ9;
//! * auto-discovered rules (single-LHS FDs mined from master data);
//! * the union of both.
//!
//! Shape: discovered rules recover the zip-keyed family (and more — with
//! unique zips, *every* shared attribute is functionally determined by
//! zip, so FN/LN become zip-fixable and type never gates anything),
//! lowering user effort below the expert set; they cannot use phone
//! matching (phn has no same-named master column). All sets keep
//! precision at 1.0 — discovered rules still go through consistency
//! checking and certain application.

use cerfix::{
    check_consistency, find_regions, ConsistencyOptions, DataMonitor, RegionFinderOptions,
};
use cerfix_bench::{clean_with_oracle, pct, print_table, rng_for, scale_from_args, workload_for};
use cerfix_gen::{evaluate_stream, uk};
use cerfix_relation::Tuple;
use cerfix_rules::{discover_rules, RuleSet};

fn main() {
    let scale = scale_from_args();
    let n_tuples = 400 * scale;

    let mut rng = rng_for("t7");
    let scenario = uk::scenario(1_000 * scale, &mut rng);
    let master = scenario.master_data();

    // Discover rules from the master data.
    let discovered = discover_rules(
        &scenario.input,
        &scenario.master_schema,
        &scenario.master,
        8, // require a non-trivial key domain
    )
    .expect("discovery succeeds");
    let mut discovered_set = RuleSet::new(scenario.input.clone(), scenario.master_schema.clone());
    for dr in &discovered {
        discovered_set
            .add(dr.rule.clone())
            .expect("unique auto names");
    }

    // Union set: experts + discovered.
    let mut union_set = RuleSet::new(scenario.input.clone(), scenario.master_schema.clone());
    for (_, r) in scenario.rules.iter() {
        union_set.add(r.clone()).unwrap();
    }
    for dr in &discovered {
        union_set.add(dr.rule.clone()).unwrap();
    }

    println!(
        "== T7: discovered rules ({} FDs compiled) ==",
        discovered.len()
    );
    for dr in discovered.iter().take(12) {
        println!(
            "  {} (support {}, {} keys)",
            cerfix_rules::render_er_dsl(&dr.rule, &scenario.input, &scenario.master_schema),
            dr.source.support,
            dr.source.distinct_keys
        );
    }
    if discovered.len() > 12 {
        println!("  … and {} more", discovered.len() - 12);
    }

    let mut rows = Vec::new();
    for (name, rules) in [
        ("expert (phi1-phi9)", &scenario.rules),
        ("discovered", &discovered_set),
        ("expert + discovered", &union_set),
    ] {
        let consistency = check_consistency(rules, &master, &ConsistencyOptions::entity_coherent());
        // Demo protocol: pre-computed certain regions seed suggestions
        // (this also neutralizes static tie-breaking between same-size
        // covers — regions are data-certified).
        let regions = find_regions(
            rules,
            &master,
            &scenario.universe,
            &RegionFinderOptions::default(),
        )
        .regions;
        let monitor = DataMonitor::new(rules, &master).with_regions(regions);
        let mut wl_rng = rng_for(&format!("t7-{name}"));
        let workload = workload_for(&scenario, n_tuples, 0.3, &mut wl_rng);
        let report = clean_with_oracle(&monitor, &workload);
        let repaired: Vec<Tuple> = report.outcomes.iter().map(|o| o.tuple.clone()).collect();
        let eval = evaluate_stream(&workload.dirty, &repaired, &workload.truth);
        rows.push(vec![
            name.into(),
            rules.len().to_string(),
            consistency.is_consistent().to_string(),
            format!(
                "{:.2}",
                report.total_user_validated() as f64 / report.len() as f64
            ),
            pct(report.user_fraction()),
            format!("{:.3}", eval.precision().unwrap_or(1.0)),
            format!("{:.3}", eval.recall().unwrap_or(0.0)),
            report.complete_count().to_string(),
        ]);
    }
    print_table(
        "T7: expert vs discovered rules (UK, noise 30%)",
        &[
            "rule set",
            "rules",
            "consistent",
            "user attrs/tuple",
            "user %",
            "precision",
            "recall",
            "complete",
        ],
        &rows,
    );
    println!(
        "\nshape checks: every arm keeps precision 1.000 (certain application\n\
         verifies against master data regardless of where rules came from);\n\
         discovery lowers user effort below the expert set on this master\n\
         (unique zips make all shared attributes zip-fixable) but cannot\n\
         exploit the phone columns — expert knowledge encodes the phn↔{{M,H}}phn\n\
         correspondence that name matching cannot see."
    );
}
