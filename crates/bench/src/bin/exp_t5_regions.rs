//! Experiment T5 — the region finder (paper §2: top-k certain regions,
//! "ranked ascendingly by the number of attributes").
//!
//! Lists the certified regions for each scenario and times the search as
//! the rule count grows. Shape: the UK scenario's minimal region is the
//! size-4 {zip, phn, type, item} under the mobile (type=2) tableau;
//! type=1 regions are size 6 (FN/LN become unfixable without the
//! mobile-phone rules); HOSP's minimal region is {provider, measure};
//! DBLP's is {key, kind}.

use cerfix::{find_regions, RegionFinderOptions};
use cerfix_bench::{fmt_duration, print_table, rng_for, scale_from_args, time};
use cerfix_gen::{dblp, hosp, uk, Scenario};

fn report(scenario: &Scenario, top_k: usize) -> (Vec<Vec<String>>, std::time::Duration) {
    let master = scenario.master_data();
    let options = RegionFinderOptions {
        top_k,
        ..Default::default()
    };
    let (result, d) = time(|| find_regions(&scenario.rules, &master, &scenario.universe, &options));
    let rows = result
        .regions
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                scenario.name.into(),
                (i + 1).to_string(),
                r.size().to_string(),
                r.render(&scenario.input),
            ]
        })
        .collect();
    (rows, d)
}

fn main() {
    let scale = scale_from_args();
    let mut rng = rng_for("t5");
    let scenarios = vec![
        uk::scenario(500 * scale, &mut rng),
        hosp::scenario(500 * scale, &mut rng),
        dblp::scenario(500 * scale, &mut rng),
    ];

    let mut all_rows = Vec::new();
    let mut timing_rows = Vec::new();
    for s in &scenarios {
        let (rows, d) = report(s, 6);
        all_rows.extend(rows);
        timing_rows.push(vec![
            s.name.into(),
            s.rules.len().to_string(),
            s.master.len().to_string(),
            s.universe.len().to_string(),
            fmt_duration(d),
        ]);
    }
    print_table(
        "T5a: top-k certain regions (ranked ascending by size)",
        &["scenario", "rank", "size", "region (Z, Tc)"],
        &all_rows,
    );
    print_table(
        "T5b: region search cost",
        &["scenario", "rules", "|Dm|", "|universe|", "time"],
        &timing_rows,
    );
    println!(
        "\nshape checks: UK's top region is size 4 ({{phn, type, zip, item}} with a\n\
         type='2' tableau row); regions covering type='1' entities include FN and\n\
         LN and have size 6; HOSP bottoms out at {{provider, measure}}, DBLP at\n\
         {{key, kind}} — certification against master data prunes closure-only\n\
         candidates whose keys are ambiguous."
    );
}
