//! Experiment T3 — data-monitor scalability in |Dm|.
//!
//! The demo pre-computes indexes so that fixing a tuple costs hash
//! lookups, not scans. This sweep grows the master relation and measures
//! per-tuple cleaning latency and throughput. Shape: indexed latency is
//! near-flat in |Dm| (hash lookups), so throughput is too; the scan
//! ablation in T6 shows the linear alternative.

use cerfix::{clean_stream_parallel, DataMonitor, OracleUser, UserAgent};
use cerfix_bench::{
    clean_with_oracle, fmt_duration, print_table, rng_for, scale_from_args, time, workload_for,
};
use cerfix_gen::uk;

fn main() {
    let scale = scale_from_args();
    let n_tuples = 300 * scale;
    let sizes = [1_000, 5_000, 20_000, 50_000, 100_000];

    let mut rows = Vec::new();
    for &n_master in &sizes {
        let mut rng = rng_for(&format!("t3-{n_master}"));
        let scenario = uk::scenario(n_master, &mut rng);
        let master = scenario.master_data();
        // Warm the per-rule indexes up front, as the demo pre-computes.
        let (_, d_warm) = time(|| {
            master.warm_indexes(scenario.rules.iter().map(|(_, r)| r));
        });
        let monitor = DataMonitor::new(&scenario.rules, &master);
        let workload = workload_for(&scenario, n_tuples, 0.3, &mut rng);
        let (report, d_clean) = time(|| clean_with_oracle(&monitor, &workload));
        let per_tuple = d_clean / n_tuples as u32;
        let throughput = n_tuples as f64 / d_clean.as_secs_f64();
        rows.push(vec![
            n_master.to_string(),
            n_tuples.to_string(),
            fmt_duration(d_warm),
            fmt_duration(d_clean),
            fmt_duration(per_tuple),
            format!("{throughput:.0}"),
            report.complete_count().to_string(),
        ]);
    }
    print_table(
        "T3a: monitor scalability vs master-data size (indexed, 1 thread)",
        &[
            "|Dm|",
            "tuples",
            "index build",
            "clean total",
            "per tuple",
            "tuples/s",
            "complete",
        ],
        &rows,
    );

    // Parallel arm: concurrent entry sessions over shared master data.
    let mut rng = rng_for("t3-parallel");
    let scenario = uk::scenario(20_000, &mut rng);
    let master = scenario.master_data();
    master.warm_indexes(scenario.rules.iter().map(|(_, r)| r));
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let workload = workload_for(&scenario, n_tuples * 4, 0.3, &mut rng);
    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let truths = workload.truth.clone();
        let (report, d) = time(|| {
            clean_stream_parallel(
                &monitor,
                workload.dirty.clone(),
                move |idx, _| -> Box<dyn UserAgent + Send> {
                    Box::new(OracleUser::new(truths[idx].clone()))
                },
                threads,
            )
            .expect("consistent rules")
        });
        rows.push(vec![
            threads.to_string(),
            fmt_duration(d),
            format!("{:.0}", report.len() as f64 / d.as_secs_f64()),
            report.complete_count().to_string(),
        ]);
    }
    print_table(
        "T3b: parallel entry sessions (|Dm| = 20k, shared indexes)",
        &["threads", "clean total", "tuples/s", "complete"],
        &rows,
    );
    println!(
        "\nshape checks: per-tuple latency stays near-flat as |Dm| grows 100x\n\
         (hash indexes make rule application O(1) in master size; only the\n\
         one-off index build grows linearly); throughput scales with worker\n\
         threads since sessions only share read-mostly state."
    );
}
