//! Experiment F4 — data auditing statistics (paper Fig. 4).
//!
//! Cleans dirty streams and prints the Fig. 4 statistics: per attribute,
//! the percentage of values validated by the user vs. fixed automatically
//! by CerFix. The paper reports *"in average, 20% of values are validated
//! by users while CerFix automatically fixes 80% of the data"*.
//!
//! The split is governed by rule coverage, not by noise: the user must
//! validate the attributes no rule can fix plus the evidence seeds. On
//! the HOSP-style scenario (the shape of the authors' experimental
//! datasets) that is exactly 2 of 10 attributes — the paper's 20%/80%.
//! The UK demo scenario's tiny 9-attribute schema has 3 inherently
//! user-only fields (phn, type, item), so its floor is higher (~50%);
//! both are reported, and `EXPERIMENTS.md` records the comparison.

use cerfix::{find_regions, AuditStats, DataMonitor, RegionFinderOptions};
use cerfix_bench::{clean_with_oracle, pct, print_table, rng_for, scale_from_args, workload_for};
use cerfix_gen::{hosp, uk, Scenario};

fn run(scenario: &Scenario, n_tuples: usize, noise: f64) -> (f64, f64, f64) {
    let master = scenario.master_data();
    // Pre-compute regions for initial suggestions, as the demo does.
    let regions = find_regions(
        &scenario.rules,
        &master,
        &scenario.universe,
        &RegionFinderOptions::default(),
    )
    .regions;
    let monitor = DataMonitor::new(&scenario.rules, &master).with_regions(regions);
    let mut rng = rng_for(&format!("f4-{}", scenario.name));
    let workload = workload_for(scenario, n_tuples, noise, &mut rng);
    let report = clean_with_oracle(&monitor, &workload);

    println!(
        "\n== F4: per-attribute audit statistics — {} (|Dm| = {}, {} tuples, noise {}) ==",
        scenario.name,
        scenario.master.len(),
        n_tuples,
        pct(noise)
    );
    let stats = AuditStats::from_log(monitor.audit());
    print!("{}", stats.render(&scenario.input));
    (
        report.user_fraction(),
        report.auto_fraction(),
        report.mean_rounds(),
    )
}

fn main() {
    let scale = scale_from_args();
    let n_tuples = 1_000 * scale;
    let noise = 0.3;

    let mut rng = rng_for("f4-setup");
    let uk_scenario = uk::scenario(1_000 * scale, &mut rng);
    let hosp_scenario = hosp::scenario(1_000 * scale, &mut rng);

    let (uk_user, uk_auto, uk_rounds) = run(&uk_scenario, n_tuples, noise);
    let (hosp_user, hosp_auto, hosp_rounds) = run(&hosp_scenario, n_tuples, noise);

    print_table(
        "F4: overall user/CerFix split (paper: ~20% user / ~80% CerFix)",
        &[
            "scenario",
            "arity",
            "user share",
            "cerfix share",
            "mean rounds",
        ],
        &[
            vec![
                "uk (demo example)".into(),
                uk_scenario.input.arity().to_string(),
                pct(uk_user),
                pct(uk_auto),
                format!("{uk_rounds:.2}"),
            ],
            vec![
                "hosp (study-style)".into(),
                hosp_scenario.input.arity().to_string(),
                pct(hosp_user),
                pct(hosp_auto),
                format!("{hosp_rounds:.2}"),
            ],
        ],
    );

    // Shape checks.
    assert!(
        (0.15..=0.30).contains(&hosp_user),
        "HOSP-style data must reproduce the paper's ~20% user share, got {}",
        pct(hosp_user)
    );
    assert!(
        uk_user < 0.65,
        "UK demo scenario: user validates ≲ 60% (3 of 9 attrs are inherently user-only), got {}",
        pct(uk_user)
    );
    println!(
        "\nshape checks passed: HOSP reproduces the paper's 20%/80% split \
         ({} user); the UK toy schema's floor is higher ({} user) because phn, \
         type and item have no fixing rules — coverage, not noise, sets the split.",
        pct(hosp_user),
        pct(uk_user)
    );
}
