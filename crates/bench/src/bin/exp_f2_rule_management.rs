//! Experiment F2 — rule management (paper Fig. 2).
//!
//! Reproduces what the screenshot displays: the nine editing rules
//! φ1–φ9 listed in the rule manager, the automatic consistency check
//! CerFix runs when rules change, and the import paths for rules
//! "discovered from cfds or mds".

use cerfix::{check_consistency, ConsistencyOptions, Explorer};
use cerfix_bench::{fmt_duration, print_table, time};
use cerfix_gen::uk;
use cerfix_rules::{
    derive_from_cfd, derive_from_md, parse_rules, render_er_dsl, AttrCorrespondence, RuleDecl,
};

fn main() {
    let input = uk::input_schema();
    let master_schema = uk::master_schema();
    let mut rng = cerfix_bench::rng_for("f2");
    let master = cerfix::MasterData::new(uk::generate_master(1_000, &mut rng));

    // --- The Fig. 2 rule listing -----------------------------------------
    let mut explorer = Explorer::new(
        cerfix_rules::RuleSet::new(input.clone(), master_schema.clone()),
        master,
    );
    let added = explorer
        .add_rules_dsl(uk::UK_RULES_DSL)
        .expect("paper rules parse");
    println!("== F2: rule manager listing (paper Fig. 2, {added} rules) ==");
    print!("{}", explorer.render_rules());

    // --- Automatic consistency check -------------------------------------
    let (entity, d_entity) = time(|| {
        check_consistency(
            explorer.rules(),
            explorer.master(),
            &ConsistencyOptions::entity_coherent(),
        )
    });
    let (strict, d_strict) = time(|| {
        check_consistency(
            explorer.rules(),
            explorer.master(),
            &ConsistencyOptions::default(),
        )
    });
    print_table(
        "F2: consistency check (|Dm| = 1000)",
        &[
            "mode",
            "consistent",
            "conflicts",
            "ambiguities",
            "key pairs",
            "time",
        ],
        &[
            vec![
                "entity-coherent".into(),
                entity.is_consistent().to_string(),
                entity.conflicts.len().to_string(),
                entity.ambiguities.len().to_string(),
                entity.key_pairs_checked.to_string(),
                fmt_duration(d_entity),
            ],
            vec![
                "strict".into(),
                strict.is_consistent().to_string(),
                strict.conflicts.len().to_string(),
                strict.ambiguities.len().to_string(),
                strict.key_pairs_checked.to_string(),
                fmt_duration(d_strict),
            ],
        ],
    );
    println!(
        "\nThe demo's rule set is certain-fix safe in its operating regime \
         (entity-coherent); strict mode also considers inputs mixing evidence \
         from different customers, where e.g. phi2 (zip->str) and phi6 \
         ((AC,phn)->str) may disagree."
    );

    // --- Rule import from CFDs and MDs ------------------------------------
    let cfd_text = "cfd psi: AC -> city | '020' -> 'Ldn' ; '131' -> 'Edi'";
    let md_text = "md m1: phn==Mphn identify FN<=>FN, LN<=>LN";
    let decls = parse_rules(&format!("{cfd_text}\n{md_text}"), &input, &master_schema)
        .expect("import text parses");
    let corr = AttrCorrespondence::by_name(&input, &master_schema);
    let mut rows = Vec::new();
    for decl in &decls {
        match decl {
            RuleDecl::Cfd(cfd) => {
                let derived = derive_from_cfd(cfd, &input, &master_schema, &corr)
                    .expect("correspondence covers AC/city");
                for rule in derived {
                    rows.push(vec![
                        format!("cfd {}", cfd.name()),
                        render_er_dsl(&rule, &input, &master_schema),
                    ]);
                }
            }
            RuleDecl::Md(md) => {
                let rule = derive_from_md(md, &input, &master_schema).expect("exact MD");
                rows.push(vec![
                    format!("md {}", md.name()),
                    render_er_dsl(&rule, &input, &master_schema),
                ]);
            }
            RuleDecl::Er(_) => {}
        }
    }
    print_table(
        "F2: rules imported from CFDs / MDs",
        &["source", "derived editing rule"],
        &rows,
    );
}
