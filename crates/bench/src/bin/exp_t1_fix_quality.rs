//! Experiment T1 — certain fixes vs heuristic repair (paper §1's claim).
//!
//! The paper motivates CerFix by the failure mode of heuristic,
//! constraint-based repair: on Example 1's tuple such methods "may opt to
//! change t[city] to Ldn; this does not fix the erroneous t[AC] and
//! worse, messes up the correct attribute t[city]". This experiment
//! quantifies that claim: over noisy UK and HOSP streams, it scores
//!
//! * **CerFix** (monitor + oracle user following suggestions), and
//! * **heuristic** cost-based CFD repair (Bohannon-style greedy over
//!   CFDs mined from the same master data)
//!
//! by cell precision (changed cells that are now correct — certain fixes
//! guarantee 1.0), recall (erroneous cells corrected) and the number of
//! previously-correct cells each method *broke*.

use cerfix::DataMonitor;
use cerfix_baseline::{active_domains, mine_cfd, HeuristicRepair};
use cerfix_bench::{clean_with_oracle, print_table, rng_for, scale_from_args, workload_for};
use cerfix_gen::{evaluate_stream, hosp, uk, Scenario};
use cerfix_relation::Tuple;

fn heuristic_for(scenario: &Scenario) -> HeuristicRepair {
    // Mine ψ-style constant CFDs from the master data for the column
    // pairs the scenario's rules relate.
    let pairs: &[(&str, &str)] = match scenario.name {
        "uk" => &[
            ("AC", "city"),
            ("zip", "city"),
            ("zip", "AC"),
            ("zip", "str"),
        ],
        "hosp" => &[
            ("zip", "city"),
            ("zip", "state"),
            ("measure", "mname"),
            ("measure", "condition"),
            ("provider", "hospital"),
        ],
        _ => &[],
    };
    let mut cfds = Vec::new();
    for (i, (lhs, rhs)) in pairs.iter().enumerate() {
        let cfd = mine_cfd(
            format!("mined{i}"),
            &scenario.input,
            &scenario.master,
            lhs,
            rhs,
            50_000,
        )
        .expect("columns exist in both schemas");
        cfds.push(cfd);
    }
    let domains = active_domains(&scenario.input, &scenario.master);
    HeuristicRepair::new(cfds, domains)
}

fn run_scenario(scenario: &Scenario, noise_rates: &[f64], n_tuples: usize) -> Vec<Vec<String>> {
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let heuristic = heuristic_for(scenario);
    let mut rows = Vec::new();
    for &noise in noise_rates {
        let mut rng = rng_for(&format!("t1-{}-{noise}", scenario.name));
        let workload = workload_for(scenario, n_tuples, noise, &mut rng);

        // CerFix arm: the whole interactive system (user validations +
        // rule fixes) is scored, with the user's effort reported in its
        // own column so the comparison stays honest — the heuristic takes
        // zero user input but pays for it in precision.
        let report = clean_with_oracle(&monitor, &workload);
        let cerfix_tuples: Vec<Tuple> = report.outcomes.iter().map(|o| o.tuple.clone()).collect();
        let eval_cerfix = evaluate_stream(&workload.dirty, &cerfix_tuples, &workload.truth);

        // Heuristic arm.
        let outs = heuristic.repair_stream(&workload.dirty);
        let repaired: Vec<Tuple> = outs.iter().map(|o| o.tuple.clone()).collect();
        let eval_heur = evaluate_stream(&workload.dirty, &repaired, &workload.truth);

        for (method, eval, effort) in [
            (
                "CerFix",
                eval_cerfix,
                format!(
                    "{:.2}",
                    report.total_user_validated() as f64 / report.len() as f64
                ),
            ),
            ("heuristic-CFD", eval_heur, "0.00".into()),
        ] {
            rows.push(vec![
                scenario.name.into(),
                format!("{:.0}%", noise * 100.0),
                method.into(),
                format!("{:.3}", eval.precision().unwrap_or(1.0)),
                format!("{:.3}", eval.recall().unwrap_or(0.0)),
                format!("{:.3}", eval.f1().unwrap_or(0.0)),
                eval.broke_correct.to_string(),
                eval.cells_changed.to_string(),
                effort,
            ]);
        }
    }
    rows
}

fn main() {
    let scale = scale_from_args();
    let n_tuples = 500 * scale;
    let noise_rates = [0.1, 0.2, 0.3, 0.4, 0.5];

    let mut rng = rng_for("t1-setup");
    let scenarios = vec![
        uk::scenario(1_000 * scale, &mut rng),
        hosp::scenario(1_000 * scale, &mut rng),
    ];

    let mut rows = Vec::new();
    for scenario in &scenarios {
        rows.extend(run_scenario(scenario, &noise_rates, n_tuples));
    }
    print_table(
        "T1: fix quality — certain fixes vs heuristic repair",
        &[
            "scenario",
            "noise",
            "method",
            "precision",
            "recall",
            "F1",
            "broke-correct",
            "cells-changed",
            "user attrs/tuple",
        ],
        &rows,
    );
    println!(
        "\nshape checks: CerFix precision is 1.000 at every noise level (fixes are\n\
         certain); the heuristic's precision is below 1 and it breaks correct cells,\n\
         increasingly with noise — the paper's §1 motivating claim."
    );
}
