//! Experiment T6 — ablations of the reproduction's design choices
//! (DESIGN.md §4).
//!
//! * **T6a — indexing:** hash-indexed master lookups vs full scans, per
//!   tuple, across |Dm|. Crossover is immediate; scans scale linearly.
//! * **T6b — suggestion strategy:** the monitor's minimal suggestions vs
//!   a naive "validate everything" user and a reluctant one-attribute-
//!   per-round user. Minimal suggestions dominate on user effort while
//!   keeping rounds low.

use cerfix::{clean_stream, CappedUser, DataMonitor, OracleUser, PreferringUser};
use cerfix_bench::{
    clean_with_oracle, fmt_duration, pct, print_table, rng_for, scale_from_args, time, workload_for,
};
use cerfix_gen::uk;

fn main() {
    let scale = scale_from_args();

    // --- T6a: index vs scan ----------------------------------------------
    let n_tuples = 100 * scale;
    let mut rows = Vec::new();
    for &n_master in &[1_000usize, 5_000, 20_000] {
        let mut rng = rng_for(&format!("t6a-{n_master}"));
        let scenario = uk::scenario(n_master, &mut rng);
        let workload = workload_for(&scenario, n_tuples, 0.3, &mut rng);

        let indexed = scenario.master_data();
        // Warm the indexes so the ablation isolates per-lookup cost (the
        // one-off build cost is measured separately in T3a).
        indexed.warm_indexes(scenario.rules.iter().map(|(_, r)| r));
        let monitor = DataMonitor::new(&scenario.rules, &indexed);
        let (_, d_indexed) = time(|| clean_with_oracle(&monitor, &workload));

        let scan = scenario.master_data_unindexed();
        let monitor_scan = DataMonitor::new(&scenario.rules, &scan);
        let (_, d_scan) = time(|| clean_with_oracle(&monitor_scan, &workload));

        rows.push(vec![
            n_master.to_string(),
            fmt_duration(d_indexed / n_tuples as u32),
            fmt_duration(d_scan / n_tuples as u32),
            format!("{:.1}x", d_scan.as_secs_f64() / d_indexed.as_secs_f64()),
        ]);
    }
    print_table(
        "T6a: master lookup ablation (per-tuple clean latency)",
        &["|Dm|", "indexed", "scan", "scan/indexed"],
        &rows,
    );

    // --- T6b: suggestion strategies ----------------------------------------
    let mut rng = rng_for("t6b");
    let scenario = uk::scenario(2_000 * scale, &mut rng);
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let workload = workload_for(&scenario, 200 * scale, 0.3, &mut rng);
    let truths = workload.truth.clone();
    let arity = scenario.input.arity();

    // Strategy 1: follow minimal suggestions (the paper's design).
    let minimal = clean_with_oracle(&monitor, &workload);

    // Strategy 2: validate everything up front (no suggestions used).
    let all_attrs: Vec<usize> = (0..arity).collect();
    let truths2 = truths.clone();
    let validate_all = clean_stream(&monitor, workload.dirty.iter().cloned(), move |idx, _| {
        Box::new(PreferringUser::new(truths2[idx].clone(), all_attrs.clone()))
    })
    .expect("clean stream");

    // Strategy 3: reluctant user, one suggested attribute per round.
    let truths3 = truths.clone();
    let one_per_round = clean_stream(&monitor, workload.dirty.iter().cloned(), move |idx, _| {
        Box::new(CappedUser::new(truths3[idx].clone(), 1))
    })
    .expect("clean stream");

    // Strategy 4 (sanity): oracle again but ignoring regions is the same
    // code path here; include raw OracleUser numbers for symmetry.
    let truths4 = truths;
    let oracle_again = clean_stream(&monitor, workload.dirty.iter().cloned(), move |idx, _| {
        Box::new(OracleUser::new(truths4[idx].clone()))
    })
    .expect("clean stream");

    let row = |name: &str, r: &cerfix::StreamReport| {
        let n = r.len() as f64;
        vec![
            name.to_string(),
            format!("{:.2}", r.total_user_validated() as f64 / n),
            pct(r.user_fraction()),
            format!("{:.2}", r.mean_rounds()),
            r.complete_count().to_string(),
        ]
    };
    print_table(
        "T6b: suggestion-strategy ablation (UK, noise 30%)",
        &[
            "strategy",
            "user attrs/tuple",
            "user share",
            "rounds",
            "complete",
        ],
        &[
            row("minimal suggestions", &minimal),
            row("validate-all upfront", &validate_all),
            row("one attr per round", &one_per_round),
            row("oracle (repeat)", &oracle_again),
        ],
    );
    println!(
        "\nshape checks: scans are strictly slower and scale with |Dm| (T6a);\n\
         minimal suggestions need ~{:.0}% user effort of validate-all at the same\n\
         completion rate, at a modest cost in rounds vs validating everything\n\
         in one round (T6b).",
        100.0 * minimal.total_user_validated() as f64
            / validate_all.total_user_validated().max(1) as f64
    );
}
