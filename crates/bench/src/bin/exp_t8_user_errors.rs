//! Experiment T8 — sensitivity to user validation errors (extension).
//!
//! "Certain" fixes are conditional on correct validations (paper §1:
//! attributes must be "assured correct"). This experiment sweeps a
//! fallible user's per-attribute error rate and measures how far the
//! cleaned stream drifts from the truth.
//!
//! Shape: cell accuracy degrades roughly linearly in the user error rate,
//! and *faster* than the error rate alone — one wrong evidence cell can
//! mislead every rule keyed on it (error amplification through the
//! correcting process). At rate 0 the guarantee is exact.

use cerfix::{clean_stream, DataMonitor};
use cerfix_bench::{pct, print_table, rng_for, scale_from_args, workload_for};
use cerfix_gen::{uk, FallibleUser};
use rand::Rng;

fn main() {
    let scale = scale_from_args();
    let n_tuples = 300 * scale;

    let mut rng = rng_for("t8");
    let scenario = uk::scenario(1_000 * scale, &mut rng);
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let arity = scenario.input.arity();

    let mut rows = Vec::new();
    for &error_rate in &[0.0, 0.02, 0.05, 0.1, 0.2] {
        let mut wl_rng = rng_for(&format!("t8-{error_rate}"));
        let workload = workload_for(&scenario, n_tuples, 0.3, &mut wl_rng);
        let truths = workload.truth.clone();
        let seeds: Vec<u64> = (0..n_tuples).map(|_| wl_rng.gen()).collect();
        let report = clean_stream(&monitor, workload.dirty.iter().cloned(), move |idx, _| {
            Box::new(FallibleUser::new(
                truths[idx].clone(),
                error_rate,
                seeds[idx],
            ))
        })
        .expect("entity-consistent rules never conflict on typo'd evidence keys");

        // Cell accuracy of the final stream vs truth.
        let mut wrong_cells = 0usize;
        let mut total_cells = 0usize;
        let mut perfect_tuples = 0usize;
        for (outcome, truth) in report.outcomes.iter().zip(workload.truth.iter()) {
            let diff = outcome.tuple.diff_count(truth);
            wrong_cells += diff;
            total_cells += arity;
            if diff == 0 {
                perfect_tuples += 1;
            }
        }
        rows.push(vec![
            pct(error_rate),
            pct(wrong_cells as f64 / total_cells as f64),
            pct(perfect_tuples as f64 / n_tuples as f64),
            format!("{:.2}", report.mean_rounds()),
            report.complete_count().to_string(),
        ]);
    }
    print_table(
        "T8: output quality vs user validation error rate (UK, noise 30%)",
        &[
            "user error rate",
            "wrong cells",
            "perfect tuples",
            "rounds",
            "complete",
        ],
        &rows,
    );
    println!(
        "\nshape checks: at error rate 0 the output is exactly the truth (the\n\
         certain-fix guarantee); wrong cells grow super-linearly relative to\n\
         the per-attribute error rate because mis-validated *evidence* stalls\n\
         or misleads every rule keyed on it — quantifying how much of the\n\
         guarantee rests on the 'assured correct' precondition."
    );
}
