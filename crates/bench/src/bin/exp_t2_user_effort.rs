//! Experiment T2 — user effort (paper §2/§3: the monitor "minimizes
//! users' effort by identifying a minimal number of attributes for users
//! to validate").
//!
//! Sweeps the noise rate and reports, per scenario: attributes the user
//! validated per tuple, attributes CerFix validated automatically, the
//! user/CerFix split, and interaction rounds. The paper's headline number
//! (20% user / 80% CerFix) should hold across noise rates — user effort
//! is governed by the rule structure (which attributes can seed the
//! chase), not by how dirty the values are, because the oracle user
//! supplies correct values either way.

use cerfix::{find_regions, DataMonitor, RegionFinderOptions};
use cerfix_bench::{clean_with_oracle, pct, print_table, rng_for, scale_from_args, workload_for};
use cerfix_gen::{dblp, hosp, uk, Scenario};

fn run(scenario: &Scenario, noise_rates: &[f64], n_tuples: usize) -> Vec<Vec<String>> {
    let master = scenario.master_data();
    // The demo's protocol: certain regions are pre-computed and used as
    // initial suggestions.
    let regions = find_regions(
        &scenario.rules,
        &master,
        &scenario.universe,
        &RegionFinderOptions::default(),
    )
    .regions;
    let monitor = DataMonitor::new(&scenario.rules, &master).with_regions(regions);
    let mut rows = Vec::new();
    for &noise in noise_rates {
        let mut rng = rng_for(&format!("t2-{}-{noise}", scenario.name));
        let workload = workload_for(scenario, n_tuples, noise, &mut rng);
        let report = clean_with_oracle(&monitor, &workload);
        let n = report.len() as f64;
        rows.push(vec![
            scenario.name.into(),
            format!("{:.0}%", noise * 100.0),
            format!("{}", scenario.input.arity()),
            format!("{:.2}", report.total_user_validated() as f64 / n),
            format!("{:.2}", report.total_auto_validated() as f64 / n),
            pct(report.user_fraction()),
            pct(report.auto_fraction()),
            format!("{:.2}", report.mean_rounds()),
            report.complete_count().to_string(),
        ]);
    }
    rows
}

fn main() {
    let scale = scale_from_args();
    let n_tuples = 400 * scale;
    let noise_rates = [0.1, 0.3, 0.5];

    let mut rng = rng_for("t2-setup");
    let scenarios = vec![
        uk::scenario(1_000 * scale, &mut rng),
        hosp::scenario(1_000 * scale, &mut rng),
        dblp::scenario(1_000 * scale, &mut rng),
    ];
    let mut rows = Vec::new();
    for s in &scenarios {
        rows.extend(run(s, &noise_rates, n_tuples));
    }
    print_table(
        "T2: user effort per tuple",
        &[
            "scenario",
            "noise",
            "arity",
            "user attrs",
            "auto attrs",
            "user %",
            "cerfix %",
            "rounds",
            "complete",
        ],
        &rows,
    );
    println!(
        "\nshape checks: the user validates a fixed small core per scenario,\n\
         independent of noise rate — the split is set by rule coverage. UK:\n\
         mobile entities need the size-4 region, home-phone entities size 6\n\
         (FN/LN unfixable), averaging ~55%; HOSP: 2 of 10 = 20%, exactly the\n\
         paper's reported average; DBLP: 2 of 7 ≈ 29%."
    );
}
