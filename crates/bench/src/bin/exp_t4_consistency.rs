//! Experiment T4 — consistency-check scalability.
//!
//! The rule engine re-checks consistency whenever rules change (paper
//! §3). This sweep measures the check across the number of rules and the
//! master size, in both quantification modes. Shape: cost grows with the
//! number of *interacting* rule pairs and with |Dm| (key-table
//! construction is linear; pair joins depend on shared-key structure),
//! and stays interactive at demo scales.

use cerfix::{check_consistency, ConsistencyOptions, MasterData};
use cerfix_bench::{fmt_duration, print_table, rng_for, scale_from_args, time};
use cerfix_gen::uk;
use cerfix_relation::Value;
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};

/// Extend the nine paper rules with synthetic variants (pattern-gated
/// copies targeting the same attributes) to sweep the rule count.
fn rules_with_extras(n_extra: usize) -> RuleSet {
    let mut rules = uk::rules();
    let input = rules.input_schema().clone();
    let master = rules.master_schema().clone();
    let item = input.attr_id("item").expect("item");
    for i in 0..n_extra {
        // Each extra rule: zip → city gated on a distinct item constant,
        // so it interacts with φ3/φ7/φ9 in the pair analysis.
        let rule = EditingRule::new(
            format!("extra{i}"),
            &input,
            &master,
            vec![(
                input.attr_id("zip").unwrap(),
                master.attr_id("zip").unwrap(),
            )],
            vec![(
                input.attr_id("city").unwrap(),
                master.attr_id("city").unwrap(),
            )],
            PatternTuple::empty().with_eq(item, Value::str(format!("ITEM{i}"))),
        )
        .expect("valid synthetic rule");
        rules.add(rule).expect("unique name");
    }
    rules
}

fn main() {
    let scale = scale_from_args();

    // Sweep 1: number of rules at fixed |Dm|.
    let mut rng = rng_for("t4-rules");
    let master = MasterData::new(uk::generate_master(5_000 * scale, &mut rng));
    let mut rows = Vec::new();
    for &extra in &[0usize, 8, 16, 32, 64] {
        let rules = rules_with_extras(extra);
        let (entity, d_entity) =
            time(|| check_consistency(&rules, &master, &ConsistencyOptions::entity_coherent()));
        let (strict, d_strict) =
            time(|| check_consistency(&rules, &master, &ConsistencyOptions::default()));
        rows.push(vec![
            rules.len().to_string(),
            entity.pairs_checked.to_string(),
            fmt_duration(d_entity),
            entity.is_consistent().to_string(),
            fmt_duration(d_strict),
            strict.conflicts.len().to_string(),
        ]);
    }
    print_table(
        "T4a: consistency check vs rule count (|Dm| = 5000)",
        &[
            "rules",
            "pairs",
            "entity time",
            "entity consistent",
            "strict time",
            "strict conflicts",
        ],
        &rows,
    );

    // Sweep 2: master size at the paper's nine rules.
    let rules = uk::rules();
    let mut rows = Vec::new();
    for &n in &[1_000usize, 5_000, 20_000, 50_000] {
        let mut rng = rng_for(&format!("t4-dm-{n}"));
        let master = MasterData::new(uk::generate_master(n * scale, &mut rng));
        let (entity, d_entity) =
            time(|| check_consistency(&rules, &master, &ConsistencyOptions::entity_coherent()));
        let (_, d_strict) =
            time(|| check_consistency(&rules, &master, &ConsistencyOptions::default()));
        rows.push(vec![
            (n * scale).to_string(),
            entity.key_pairs_checked.to_string(),
            fmt_duration(d_entity),
            fmt_duration(d_strict),
        ]);
    }
    print_table(
        "T4b: consistency check vs master size (9 paper rules)",
        &["|Dm|", "entity key-pairs", "entity time", "strict time"],
        &rows,
    );
    println!(
        "\nshape checks: time grows with interacting rule pairs (T4a) and with\n\
         |Dm| (T4b); both modes remain interactive (well under a second at the\n\
         demo's scale), which is what lets the Web UI re-check on every edit."
    );
}
