//! Criterion bench backing experiment T4: consistency checking across
//! master sizes, in both quantification modes.

use cerfix::{check_consistency, ConsistencyOptions, MasterData};
use cerfix_bench::rng_for;
use cerfix_gen::uk;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_consistency(c: &mut Criterion) {
    let rules = uk::rules();
    let mut group = c.benchmark_group("consistency_check");
    for &n_master in &[1_000usize, 10_000] {
        let mut rng = rng_for(&format!("bench-consistency-{n_master}"));
        let master = MasterData::new(uk::generate_master(n_master, &mut rng));
        group.bench_with_input(
            BenchmarkId::new("entity_coherent", n_master),
            &n_master,
            |b, _| {
                b.iter(|| {
                    check_consistency(&rules, &master, &ConsistencyOptions::entity_coherent())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("strict", n_master), &n_master, |b, _| {
            b.iter(|| check_consistency(&rules, &master, &ConsistencyOptions::default()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_consistency
}
criterion_main!(benches);
