//! Criterion micro-benches for the rule engine: certain lookups against
//! the master index and full correcting-process fixpoints.

use cerfix::{run_fixpoint, MasterData};
use cerfix_bench::rng_for;
use cerfix_gen::uk;
use cerfix_relation::AttrSet;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_certain_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("certain_lookup");
    for &n_master in &[1_000usize, 100_000] {
        let mut rng = rng_for(&format!("bench-lookup-{n_master}"));
        let relation = uk::generate_master(n_master, &mut rng);
        let master = MasterData::new(relation);
        let rules = uk::rules();
        let (_, phi1) = rules.get_by_name("phi1").expect("phi1");
        master.warm_indexes([phi1]);
        let universe = uk::truth_universe(master.relation());
        group.bench_with_input(BenchmarkId::from_parameter(n_master), &n_master, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let t = &universe[i % universe.len()];
                i += 1;
                master.certain_lookup(phi1, t)
            });
        });
    }
    group.finish();
}

fn bench_fixpoint(c: &mut Criterion) {
    let mut rng = rng_for("bench-fixpoint");
    let scenario = uk::scenario(10_000, &mut rng);
    let master = scenario.master_data();
    master.warm_indexes(scenario.rules.iter().map(|(_, r)| r));
    let input = scenario.input.clone();
    let seed: AttrSet = ["zip", "phn", "type", "item"]
        .iter()
        .map(|n| input.attr_id(n).expect("attr"))
        .collect();
    c.bench_function("fixpoint_from_size4_region", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let truth = &scenario.universe[(i * 2 + 1) % scenario.universe.len()]; // type=2
            i += 1;
            let mut t = cerfix::region::masked_input(truth, &seed);
            let mut validated = seed.clone();
            run_fixpoint(&scenario.rules, &master, &mut t, &mut validated).expect("consistent")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_certain_lookup, bench_fixpoint
}
criterion_main!(benches);
