//! Criterion bench for the heuristic-repair baseline (experiment T1's
//! comparison arm): per-tuple greedy CFD repair.

use cerfix_baseline::{active_domains, mine_cfd, HeuristicRepair};
use cerfix_bench::{rng_for, workload_for};
use cerfix_gen::uk;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_heuristic_repair(c: &mut Criterion) {
    let mut rng = rng_for("bench-baseline");
    let scenario = uk::scenario(1_000, &mut rng);
    let cfds = [("AC", "city"), ("zip", "city"), ("zip", "AC")]
        .iter()
        .enumerate()
        .map(|(i, (l, r))| {
            mine_cfd(
                format!("m{i}"),
                &scenario.input,
                &scenario.master,
                l,
                r,
                10_000,
            )
            .expect("columns exist")
        })
        .collect();
    let repair = HeuristicRepair::new(cfds, active_domains(&scenario.input, &scenario.master));
    let workload = workload_for(&scenario, 64, 0.3, &mut rng);
    c.bench_function("heuristic_repair_per_tuple", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let t = &workload.dirty[i % workload.dirty.len()];
            i += 1;
            repair.repair(t)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_heuristic_repair
}
criterion_main!(benches);
