//! Serving-path benchmark: the epoll readiness loop vs the
//! thread-per-connection front end, plus the zero-allocation wire
//! codec's counters.
//!
//! Three jobs in one harness (same shape as `bench_fixpoint`):
//!
//! 1. **Allocation probe** — a counting global allocator measures
//!    allocations per request through the full
//!    `handle_line_into` parse → execute → render path on a warmed
//!    in-process service **with the structured diagnostic log enabled**
//!    (default ring size, at least one event recorded). The hot
//!    `session.get` path must be exactly zero steady-state allocations;
//!    `session.fix` / `session.validate` carry tight constant bounds
//!    (the correcting-process key buffer and the validated value's
//!    `Arc<str>`). These are deterministic — CI fails on any regression
//!    regardless of machine speed.
//! 2. **Pipelined throughput** — M connections each write windows of
//!    requests before reading a response (validate/fix/get mix, plus a
//!    batch-`clean` arm through the reactor's worker-pool dispatch),
//!    against both front ends. Requests/sec lands in
//!    `BENCH_server.json`; response counts and service request counters
//!    are asserted exactly.
//! 3. **Closed-loop latency** — W=1 round trips, p50/p99 per front end.

use cerfix_relation::{RelationBuilder, Schema, Value};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use cerfix_server::{
    CleaningService, Frontend, LocalClient, Request, RequestScratch, Server, ServerHandle,
    ServiceConfig, StorageConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

// ---------------------------------------------------------------------
// Counting allocator: the "allocs per request" probe.
// ---------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// The only unsafe in the benches: forwarding to the system allocator
// with a counter bump. `unsafe impl` is required by the trait.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn fast_mode() -> bool {
    std::env::var_os("CERFIX_BENCH_FAST").is_some()
}

// ---------------------------------------------------------------------
// Fixture: a key→value lookup service. Per-op service work is a couple
// of index probes, so the serving path dominates — the thing this
// bench measures.
// ---------------------------------------------------------------------

fn kv_parts(rows: usize) -> (Arc<cerfix::MasterData>, Arc<RuleSet>) {
    let input = Schema::of_strings("in", ["key", "val", "note"]).unwrap();
    let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
    let mut builder = RelationBuilder::new(ms.clone());
    for i in 0..rows {
        builder = builder.row_strs([format!("k{i}"), format!("v{i}")]);
    }
    let master = cerfix::MasterData::new(builder.build().unwrap());
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    rules
        .add(
            EditingRule::new(
                "kv",
                &input,
                &ms,
                vec![(0, 0)],
                vec![(1, 1)],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
    (Arc::new(master), Arc::new(rules))
}

fn kv_service_cfg(rows: usize, trace_buffer: usize) -> CleaningService {
    let (master, rules) = kv_parts(rows);
    CleaningService::new(
        master,
        rules,
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(2, usize::from),
            precompute_regions: false,
            trace_buffer,
            ..ServiceConfig::default()
        },
    )
}

/// The measurement default: tracing ON (the ring at its default size),
/// so every alloc guard and throughput arm below covers the traced
/// configuration operators actually run.
fn kv_service(n: usize) -> CleaningService {
    kv_service_cfg(n, ServiceConfig::default().trace_buffer)
}

// ---------------------------------------------------------------------
// 1. Allocation probe (in-process, warmed, deterministic).
// ---------------------------------------------------------------------

struct AllocReport {
    get: u64,
    fix: u64,
    validate: u64,
}

fn alloc_probe() -> AllocReport {
    let service = kv_service(64);
    // The structured diagnostic log runs at its default ring size and
    // has recorded at least one event before the measurement window:
    // the zero-alloc guarantee below holds WITH logging enabled, not
    // against a stripped configuration.
    let set = service.handle_line(r#"{"op":"config.set","key":"slow_ms","value":500}"#);
    assert!(
        set.contains("\"ok\":true"),
        "config.set primes the diag log: {set}"
    );
    let log = service.handle_line(r#"{"op":"log.read","limit":1}"#);
    assert!(
        log.contains("\"enabled\":true"),
        "diag ring live during the alloc probe: {log}"
    );
    let mut out = String::new();
    let mut scratch = RequestScratch::default();
    // One session, driven to completion: the steady-state shape.
    service.handle_line(r#"{"op":"session.create","tuple":["k3","WRONG","n"]}"#);
    let done = service.handle_line(
        r#"{"op":"session.validate","session":1,"validations":{"key":"k3","note":"n"}}"#,
    );
    assert!(done.contains("\"complete\""), "fixture session completes");

    const WARM: u64 = 256;
    const MEASURE: u64 = 4096;
    // A handful of one-time lazy growths elsewhere in the process may
    // land inside the window; steady-state regressions cost ≥ MEASURE.
    const STRAY_SLACK: u64 = 16;
    let mut measure = |line: &str| -> u64 {
        for _ in 0..WARM {
            out.clear();
            service.handle_line_into(line, &mut out, &mut scratch);
        }
        let before = allocs();
        for _ in 0..MEASURE {
            out.clear();
            service.handle_line_into(line, &mut out, &mut scratch);
        }
        let spent = allocs() - before;
        assert!(out.contains("\"ok\":true"), "probe op must succeed: {out}");
        spent
    };

    let get_total = measure(r#"{"op":"session.get","session":1,"id":9}"#);
    let fix_total = measure(r#"{"op":"session.fix","session":1}"#);
    let validate_total =
        measure(r#"{"op":"session.validate","session":1,"validations":{"key":"k3"}}"#);
    let per = |total: u64| (total as f64 / MEASURE as f64).round() as u64;
    let (get, fix, validate) = (per(get_total), per(fix_total), per(validate_total));

    // The deterministic guards CI enforces: the warmed parse/render
    // path allocates nothing for `session.get`; fix/validate are
    // bounded by the correcting process's key buffer and the validated
    // value's `Arc<str>`.
    assert!(
        get_total <= STRAY_SLACK,
        "session.get allocated {get_total}× over {MEASURE} warmed requests (must be 0 steady-state)"
    );
    assert!(
        fix_total <= 2 * MEASURE + STRAY_SLACK,
        "session.fix regressed to {fix_total} allocs over {MEASURE} requests"
    );
    assert!(
        validate_total <= 4 * MEASURE + STRAY_SLACK,
        "session.validate regressed to {validate_total} allocs over {MEASURE} requests"
    );

    // Request counters are exact (another machine-independent guard).
    // 2 diag-priming requests + 2 session setup requests + the
    // get/fix/validate triple per iteration.
    let expected = 4 + 3 * (WARM + MEASURE);
    let requests = service.metrics().requests;
    assert_eq!(requests, expected, "request counter drifted");

    AllocReport { get, fix, validate }
}

// ---------------------------------------------------------------------
// 2 + 3. Wire throughput / latency through real sockets.
// ---------------------------------------------------------------------

/// The serving-path variants under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    /// The pre-reactor baseline (see [`BaselineServer`]).
    Seed,
    /// This PR's thread-per-connection front end (in-place line
    /// splitting, zero-alloc hot path, prompt shutdown).
    Threads,
    /// The epoll readiness loop.
    Epoll,
}

impl Arm {
    fn name(&self) -> &'static str {
        match self {
            Arm::Seed => "threads_seed_baseline",
            Arm::Threads => "threads",
            Arm::Epoll => "epoll",
        }
    }
}

enum RunningServer {
    Managed(ServerHandle),
    Baseline(BaselineServer),
}

impl RunningServer {
    fn spawn(arm: Arm) -> RunningServer {
        match arm {
            Arm::Seed => RunningServer::Baseline(BaselineServer::spawn()),
            Arm::Threads => RunningServer::Managed(spawn_server(Frontend::Threads).0),
            Arm::Epoll => RunningServer::Managed(spawn_server(Frontend::Epoll).0),
        }
    }

    fn addr(&self) -> std::net::SocketAddr {
        match self {
            RunningServer::Managed(handle) => handle.addr(),
            RunningServer::Baseline(server) => server.addr,
        }
    }

    fn service(&self) -> CleaningService {
        match self {
            RunningServer::Managed(handle) => handle.service().clone(),
            RunningServer::Baseline(server) => server.service.clone(),
        }
    }

    fn shutdown(self) {
        match self {
            RunningServer::Managed(handle) => handle.shutdown().expect("shutdown"),
            RunningServer::Baseline(server) => server.shutdown(),
        }
    }
}

fn spawn_server(frontend: Frontend) -> (ServerHandle, CleaningService) {
    let service = kv_service(512);
    let handle =
        Server::spawn_with("127.0.0.1:0", service.clone(), frontend).expect("bind ephemeral");
    (handle, service)
}

// ---------------------------------------------------------------------
// Seed baseline: the pre-reactor serving path, replicated verbatim as
// an ablation arm. One thread per connection parked on a 200 ms read
// timeout, a 25 ms sleep-poll accept loop, `drain(..).collect()` per
// line, tree parse + tree render + a fresh `String` per response, one
// write per response. This is what "thread-per-connection baseline"
// means in BENCH_server.json.
// ---------------------------------------------------------------------

struct BaselineServer {
    addr: std::net::SocketAddr,
    service: CleaningService,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl BaselineServer {
    fn spawn() -> BaselineServer {
        use std::sync::atomic::AtomicBool;
        let service = kv_service(512);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let accept_service = service.clone();
        let thread = std::thread::spawn(move || {
            listener.set_nonblocking(true).unwrap();
            let live = Arc::new(AtomicBool::new(true));
            let mut conns = Vec::new();
            while !accept_service.shutdown_requested() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let service = accept_service.clone();
                        let live = Arc::clone(&live);
                        conns.push(std::thread::spawn(move || {
                            baseline_connection(stream, &service, &live)
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(25));
                    }
                    Err(_) => break,
                }
            }
            live.store(false, Ordering::Release);
            for conn in conns {
                let _ = conn.join();
            }
        });
        BaselineServer {
            addr,
            service,
            thread: Some(thread),
        }
    }

    fn shutdown(mut self) {
        self.service
            .handle(&cerfix_server::Request::parse_line(r#"{"op":"shutdown"}"#).unwrap());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn baseline_connection(
    mut stream: TcpStream,
    service: &CleaningService,
    live: &std::sync::atomic::AtomicBool,
) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    while live.load(Ordering::Acquire) {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
                    let Ok(line) = std::str::from_utf8(&line_bytes) else {
                        continue;
                    };
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    // The seed wire path: tree parse, typed dispatch,
                    // tree render into a fresh String.
                    let response = match cerfix_server::Request::parse_line(trimmed) {
                        Ok(request) => service.handle(&request),
                        Err(_) => continue,
                    };
                    let mut rendered = response.render();
                    rendered.push('\n');
                    if writer.write_all(rendered.as_bytes()).is_err() {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

/// Read raw bytes until `lines` newlines were seen. The bench client
/// must be as cheap as possible — on a small box it shares cores with
/// the server, and per-line `String` reads would measure the client,
/// not the front end.
fn read_lines_raw(stream: &mut TcpStream, buf: &mut [u8], mut lines: usize) {
    while lines > 0 {
        let n = stream.read(buf).expect("read responses");
        assert!(n > 0, "server hung up");
        lines = lines.saturating_sub(buf[..n].iter().filter(|&&b| b == b'\n').count());
    }
}

/// One multiplexed bench connection: a pre-rendered window burst, the
/// write cursor into the current round, and how many responses remain.
struct MuxConn {
    stream: TcpStream,
    burst: Vec<u8>,
    write_pos: usize,
    rounds_left: usize,
    outstanding: usize,
}

/// Aggregate pipelined requests/sec over `conns` concurrent
/// connections, driven by ONE nonblocking client loop.
///
/// One client thread multiplexes every connection (round-robin write /
/// drain sweeps over nonblocking sockets). A thread-per-connection
/// bench client would oversubscribe the box and measure its own
/// scheduler churn; a single multiplexing driver applies the same
/// pipelining pressure to both front ends and leaves the server
/// architecture as the only variable.
fn pipelined_throughput(arm: Arm, conns: usize, window: usize, rounds: usize) -> f64 {
    pipelined_throughput_on(RunningServer::spawn(arm), conns, window, rounds)
}

/// The same measurement over an already-spawned server (how the
/// tracing-overhead arm runs a non-default service configuration).
fn pipelined_throughput_on(
    server: RunningServer,
    conns: usize,
    window: usize,
    rounds: usize,
) -> f64 {
    let service = server.service();
    let addr = server.addr();
    let mut muxed: Vec<MuxConn> = (0..conns)
        .map(|conn_idx| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).unwrap();
            // Dedicated session per connection, created while the
            // socket is still blocking.
            let key = format!("k{}", conn_idx % 512);
            stream
                .write_all(
                    format!("{{\"op\":\"session.create\",\"tuple\":[\"{key}\",\"WRONG\",\"n\"]}}\n")
                        .as_bytes(),
                )
                .unwrap();
            let mut line = String::new();
            BufReader::new(stream.try_clone().unwrap())
                .read_line(&mut line)
                .expect("create response");
            let session: u64 = line
                .split("\"session\":")
                .nth(1)
                .and_then(|rest| rest.split([',', '}']).next())
                .and_then(|s| s.parse().ok())
                .expect("session id");
            // validate / fix / get mix, pipelined.
            let mut burst = String::new();
            for i in 0..window {
                match i % 3 {
                    0 => burst.push_str(&format!(
                        "{{\"op\":\"session.validate\",\"session\":{session},\"validations\":{{\"key\":\"{key}\"}},\"id\":{i}}}\n"
                    )),
                    1 => burst.push_str(&format!(
                        "{{\"op\":\"session.fix\",\"session\":{session},\"id\":{i}}}\n"
                    )),
                    _ => burst.push_str(&format!(
                        "{{\"op\":\"session.get\",\"session\":{session},\"id\":{i}}}\n"
                    )),
                }
            }
            stream.set_nonblocking(true).unwrap();
            MuxConn {
                stream,
                burst: burst.into_bytes(),
                write_pos: 0,
                rounds_left: rounds - 1,
                outstanding: window,
            }
        })
        .collect();

    let started = Instant::now();
    let mut buf = [0u8; 64 * 1024];
    let mut active = conns;
    while active > 0 {
        let mut progress = false;
        for conn in &mut muxed {
            if conn.outstanding == 0 && conn.write_pos == conn.burst.len() {
                continue; // finished
            }
            // Write the rest of the current burst.
            while conn.write_pos < conn.burst.len() {
                match conn.stream.write(&conn.burst[conn.write_pos..]) {
                    Ok(n) => {
                        conn.write_pos += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("bench client write: {e}"),
                }
            }
            // Drain responses.
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => panic!("server hung up"),
                    Ok(n) => {
                        conn.outstanding -= buf[..n].iter().filter(|&&b| b == b'\n').count();
                        progress = true;
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => panic!("bench client read: {e}"),
                }
            }
            if conn.outstanding == 0 && conn.write_pos == conn.burst.len() {
                if conn.rounds_left > 0 {
                    conn.rounds_left -= 1;
                    conn.write_pos = 0;
                    conn.outstanding = window;
                } else {
                    active -= 1;
                }
            }
        }
        // Hand the core to the server between sweeps.
        std::thread::yield_now();
        if !progress {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
    let elapsed = started.elapsed();
    // The timed window covers the pipelined traffic; session creation
    // happened before the clock started.
    let timed = conns * window * rounds;
    // Exact-count guard: every request got exactly one response line and
    // the server agrees on how many were made.
    assert_eq!(service.metrics().requests, (timed + conns) as u64);
    assert_eq!(service.metrics().errors, 0);
    drop(muxed);
    server.shutdown();
    timed as f64 / elapsed.as_secs_f64()
}

/// Batch-`clean` throughput: pipelined heavy ops through the reactor's
/// worker-pool dispatch (tuples/sec).
fn clean_throughput(arm: Arm, conns: usize, batches: usize, batch: usize) -> f64 {
    let server = RunningServer::spawn(arm);
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(conns + 1));
    let mut joins = Vec::new();
    for conn_idx in 0..conns {
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).unwrap();
            let mut tuples = String::new();
            for i in 0..batch {
                if i > 0 {
                    tuples.push(',');
                }
                tuples.push_str(&format!(
                    "[\"k{}\",\"x\",\"n\"]",
                    (conn_idx * batch + i) % 512
                ));
            }
            let line = format!(
                "{{\"op\":\"clean\",\"tuples\":[{tuples}],\"trust\":[\"key\",\"note\"]}}\n"
            );
            barrier.wait();
            let mut buf = [0u8; 64 * 1024];
            for _ in 0..batches {
                stream.write_all(line.as_bytes()).expect("write clean");
                read_lines_raw(&mut stream, &mut buf, 1);
            }
        }));
    }
    let started = Instant::now();
    barrier.wait();
    for join in joins {
        join.join().expect("client");
    }
    let elapsed = started.elapsed();
    server.shutdown();
    (conns * batches * batch) as f64 / elapsed.as_secs_f64()
}

/// Closed-loop (window = 1) latency distribution, microseconds.
fn closed_loop_latency(arm: Arm, conns: usize, per_conn: usize) -> (f64, f64) {
    let server = RunningServer::spawn(arm);
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(conns + 1));
    let mut joins = Vec::new();
    for conn_idx in 0..conns {
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            writer
                .write_all(
                    format!(
                        "{{\"op\":\"session.create\",\"tuple\":[\"k{conn_idx}\",\"WRONG\",\"n\"]}}\n"
                    )
                    .as_bytes(),
                )
                .unwrap();
            reader.read_line(&mut line).expect("create");
            let session: u64 = line
                .split("\"session\":")
                .nth(1)
                .and_then(|rest| rest.split([',', '}']).next())
                .and_then(|s| s.parse().ok())
                .expect("session id");
            let request = format!("{{\"op\":\"session.get\",\"session\":{session}}}\n");
            barrier.wait();
            let mut rtts = Vec::with_capacity(per_conn);
            for _ in 0..per_conn {
                let started = Instant::now();
                writer.write_all(request.as_bytes()).expect("write");
                line.clear();
                reader.read_line(&mut line).expect("read");
                rtts.push(started.elapsed().as_nanos() as u64);
            }
            rtts
        }));
    }
    barrier.wait();
    let mut rtts: Vec<u64> = joins
        .into_iter()
        .flat_map(|j| j.join().expect("client"))
        .collect();
    server.shutdown();
    rtts.sort_unstable();
    let pct = |p: f64| rtts[((rtts.len() - 1) as f64 * p) as usize] as f64 / 1000.0;
    (pct(0.50), pct(0.99))
}

// ---------------------------------------------------------------------
// 4. Commit durability: local-fsync vs quorum-ack commit latency.
// ---------------------------------------------------------------------

/// Per-commit latency (p50, p99, µs) of create → validate → commit
/// sessions, timing only the commit — the op that pays the durability
/// cost (journal fsync, plus the follower ack round trip under quorum).
fn commit_latency(service: &CleaningService, iters: usize) -> (f64, f64) {
    let mut client = LocalClient::in_process(service);
    let mut lat: Vec<u64> = Vec::with_capacity(iters);
    for i in 0..iters {
        let k = format!("k{}", i % 512);
        let view = client
            .create_session(vec![Value::str(&k), Value::str("WRONG"), Value::str("n")])
            .expect("create");
        client
            .validate(
                view.session,
                vec![
                    ("key".into(), Value::str(&k)),
                    ("note".into(), Value::str("n")),
                ],
            )
            .expect("validate");
        let start = Instant::now();
        client.commit(view.session).expect("commit");
        lat.push(start.elapsed().as_nanos() as u64);
    }
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize] as f64 / 1000.0;
    (pct(0.50), pct(0.99))
}

/// The two durability modes, measured back to back: `local-fsync`
/// (commit acks after the journal group fsync) and `quorum-ack`
/// (cluster of 2: commit also waits for a journal-tailing follower to
/// pull, apply and fsync the events, acked via its sync cursor).
fn commit_durability_probe(iters: usize) -> ((f64, f64), (f64, f64)) {
    let tmp = std::env::temp_dir().join(format!("cerfix-bench-quorum-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let (master, rules) = kv_parts(512);

    let local = CleaningService::with_storage(
        Arc::clone(&master),
        Arc::clone(&rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
        StorageConfig::new(tmp.join("local")),
    )
    .expect("open local-fsync arm");
    let local_lat = commit_latency(&local, iters);
    drop(local);

    let primary = CleaningService::with_storage(
        Arc::clone(&master),
        Arc::clone(&rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            cluster_size: 2,
            ack_timeout: std::time::Duration::from_secs(10),
            advertise: Some("bench-primary".into()),
            ..ServiceConfig::default()
        },
        StorageConfig::new(tmp.join("primary")),
    )
    .expect("open quorum primary arm");
    let handle = Server::spawn_with("127.0.0.1:0", primary.clone(), Frontend::Threads)
        .expect("bind quorum primary");
    let follower = CleaningService::with_storage(
        master,
        rules,
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            replicate_from: Some(handle.addr().to_string()),
            advertise: Some("bench-follower".into()),
            ..ServiceConfig::default()
        },
        StorageConfig::new(tmp.join("follower")),
    )
    .expect("open quorum follower arm");
    let quorum_lat = commit_latency(&primary, iters);

    follower.handle(&Request::Shutdown); // stops the tail thread
    let _ = handle.shutdown();
    std::thread::sleep(std::time::Duration::from_millis(50));
    drop(follower);
    let _ = std::fs::remove_dir_all(&tmp);
    (local_lat, quorum_lat)
}

// ---------------------------------------------------------------------
// Harness + BENCH_server.json.
// ---------------------------------------------------------------------

struct ThroughputCell {
    arm: &'static str,
    conns: usize,
    reqs_per_sec: f64,
    clean_tuples_per_sec: f64,
}

const ARMS: [Arm; 3] = [Arm::Seed, Arm::Threads, Arm::Epoll];

fn bench_wire_suite(_c: &mut Criterion) {
    println!("\n== serving path: epoll reactor vs thread-per-connection ==");
    let report = alloc_probe();
    println!(
        "allocs/request (warmed, memory mode): session.get {}  session.fix {}  session.validate {}",
        report.get, report.fix, report.validate
    );

    let (window, rounds, conn_set): (usize, usize, &[usize]) = if fast_mode() {
        (64, 4, &[8, 64])
    } else {
        (64, 12, &[8, 64, 256])
    };
    let clean_batches = if fast_mode() { 4 } else { 12 };

    let mut cells: Vec<ThroughputCell> = Vec::new();
    for &conns in conn_set {
        for arm in ARMS {
            let reqs = pipelined_throughput(arm, conns, window, rounds);
            let clean = clean_throughput(arm, conns.min(32), clean_batches, 16);
            println!(
                "{:>21}, {conns:>4} conns: {:>9.0} pipelined req/s, {:>9.0} clean tuples/s",
                arm.name(),
                reqs,
                clean
            );
            cells.push(ThroughputCell {
                arm: arm.name(),
                conns,
                reqs_per_sec: reqs,
                clean_tuples_per_sec: clean,
            });
        }
    }
    let speedup_at = |conns: usize, baseline: &str| -> Option<f64> {
        let get = |arm: &str| {
            cells
                .iter()
                .find(|c| c.arm == arm && c.conns == conns)
                .map(|c| c.reqs_per_sec)
        };
        Some(get("epoll")? / get(baseline)?)
    };
    // Headline at the acceptance point (64 connections). Note the 256-
    // connection rows in the JSON: the seed baseline *recovers* there
    // (its per-response Nagle stalls overlap across more connections)
    // while the reactor stays flat.
    let headline_conns = 64;
    let vs_seed = speedup_at(headline_conns, "threads_seed_baseline").unwrap_or(1.0);
    let vs_threads = speedup_at(headline_conns, "threads").unwrap_or(1.0);
    println!(
        "epoll speedup at {headline_conns} conns: {vs_seed:.2}x vs seed baseline, {vs_threads:.2}x vs improved threads"
    );

    // Tracing overhead: the epoll front end with its default trace
    // ring (what every arm above ran with) vs tracing disabled.
    // Recorded into BENCH_server.json, not asserted — the budget is
    // <2% and single-run jitter on shared hosts exceeds that.
    let overhead_conns = 8;
    let traced = pipelined_throughput(Arm::Epoll, overhead_conns, window, rounds);
    let untraced = {
        let service = kv_service_cfg(512, 0);
        let handle =
            Server::spawn_with("127.0.0.1:0", service, Frontend::Epoll).expect("bind ephemeral");
        pipelined_throughput_on(
            RunningServer::Managed(handle),
            overhead_conns,
            window,
            rounds,
        )
    };
    let overhead_pct = (1.0 - traced / untraced) * 100.0;
    println!(
        "tracing overhead (epoll, {overhead_conns} conns): {traced:.0} req/s traced vs {untraced:.0} req/s untraced → {overhead_pct:+.2}% (budget < 2%)"
    );

    let latency_conns = 8;
    let per_conn = if fast_mode() { 200 } else { 1000 };
    let (s_p50, s_p99) = closed_loop_latency(Arm::Seed, latency_conns, per_conn);
    let (t_p50, t_p99) = closed_loop_latency(Arm::Threads, latency_conns, per_conn);
    let (e_p50, e_p99) = closed_loop_latency(Arm::Epoll, latency_conns, per_conn);
    println!(
        "closed-loop latency (8 conns): seed p50 {s_p50:.0}µs p99 {s_p99:.0}µs | threads p50 {t_p50:.0}µs p99 {t_p99:.0}µs | epoll p50 {e_p50:.0}µs p99 {e_p99:.0}µs"
    );

    let dur_iters = if fast_mode() { 120 } else { 400 };
    let (local_lat, quorum_lat) = commit_durability_probe(dur_iters);
    println!(
        "commit latency ({dur_iters} commits): local-fsync p50 {:.0}µs p99 {:.0}µs | quorum-ack(2) p50 {:.0}µs p99 {:.0}µs",
        local_lat.0, local_lat.1, quorum_lat.0, quorum_lat.1
    );

    write_json(
        &cells,
        headline_conns,
        vs_seed,
        vs_threads,
        [
            ("threads_seed_baseline", s_p50, s_p99),
            ("threads", t_p50, t_p99),
            ("epoll", e_p50, e_p99),
        ],
        &report,
        (traced, untraced, overhead_pct),
        (dur_iters, local_lat, quorum_lat),
    );
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    cells: &[ThroughputCell],
    headline_conns: usize,
    vs_seed: f64,
    vs_threads: f64,
    latency: [(&str, f64, f64); 3],
    alloc: &AllocReport,
    tracing: (f64, f64, f64),
    durability: (usize, (f64, f64), (f64, f64)),
) {
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"arm\": \"{}\", \"connections\": {}, \"pipelined_reqs_per_sec\": {:.0}, \"clean_tuples_per_sec\": {:.0}}}",
            c.arm, c.conns, c.reqs_per_sec, c.clean_tuples_per_sec
        ));
    }
    let mut lat = String::new();
    for (i, (arm, p50, p99)) in latency.iter().enumerate() {
        if i > 0 {
            lat.push_str(",\n");
        }
        lat.push_str(&format!(
            "    \"{arm}\": {{\"p50\": {p50:.1}, \"p99\": {p99:.1}}}"
        ));
    }
    let cores = std::thread::available_parallelism().map_or(0, usize::from);
    let json = format!(
        "{{\n  \"bench\": \"wire\",\n  \"mode\": \"{mode}\",\n  \"environment\": {{\"cores\": {cores}, \"note\": \"single-core hosts serialize service CPU, bench client and front end on one core; the reactor's pool dispatch and wakeup amortization widen these gaps with core count\"}},\n  \"arms\": [\"threads_seed_baseline\", \"threads\", \"epoll\"],\n  \"pipelined\": [\n{rows}\n  ],\n  \"pipelined_speedup_at_{headline_conns}_conns\": {{\"epoll_vs_seed_baseline\": {vs_seed:.2}, \"epoll_vs_threads\": {vs_threads:.2}}},\n  \"closed_loop_latency_us\": {{\n{lat}\n  }},\n  \"allocs_per_request_warmed\": {{\"session.get\": {ag}, \"session.fix\": {af}, \"session.validate\": {av}}},\n  \"tracing_overhead\": {{\"traced_reqs_per_sec\": {traced:.0}, \"untraced_reqs_per_sec\": {untraced:.0}, \"overhead_pct\": {opct:.2}, \"budget_pct\": 2.0}},\n  \"commit_durability_latency_us\": {{\"commits\": {dcommits}, \"local_fsync\": {{\"p50\": {dlp50:.1}, \"p99\": {dlp99:.1}}}, \"quorum_ack_2_replicas\": {{\"p50\": {dqp50:.1}, \"p99\": {dqp99:.1}}}}}\n}}\n",
        mode = if fast_mode() { "smoke" } else { "full" },
        ag = alloc.get,
        af = alloc.fix,
        av = alloc.validate,
        traced = tracing.0,
        untraced = tracing.1,
        opct = tracing.2,
        dcommits = durability.0,
        dlp50 = durability.1 .0,
        dlp99 = durability.1 .1,
        dqp50 = durability.2 .0,
        dqp99 = durability.2 .1,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, json).expect("write BENCH_server.json at repo root");
    println!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_wire_suite
}
criterion_main!(benches);
