//! Pass-based vs delta-driven fixpoint across rule-set and master sizes,
//! plus a `certify_region` micro-bench.
//!
//! Three jobs in one harness:
//!
//! 1. **Timing matrix** — both engines at 9 (UK) / 100 / 500 rules and
//!    master sizes 1k / 10k / 100k (the 100k arm is skipped under
//!    `CERFIX_BENCH_FAST=1`). Results land in `BENCH_fixpoint.json` at
//!    the repo root so the perf trajectory is recorded per commit.
//! 2. **Deterministic stats guard** — a hand-built, RNG-free chain
//!    fixture with exact checked-in [`EngineStats`] expectations. Counts
//!    cannot flake on machine speed: if the delta engine starts doing
//!    more work, this panics and CI's bench-smoke step fails.
//! 3. **`certify_region` micro-bench** — the region finder's data-phase
//!    unit cost (one plan, universe × 1 candidate).

use cerfix::{
    certify_region, run_fixpoint, run_fixpoint_delta, CompiledRules, EngineStats, MasterData,
};
use cerfix_bench::rng_for;
use cerfix_gen::uk;
use cerfix_relation::{AttrSet, RelationBuilder, Schema, SchemaRef, Tuple};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn fast_mode() -> bool {
    std::env::var_os("CERFIX_BENCH_FAST").is_some()
}

/// Mean ns/iter of `f` over a wall-clock budget (min 3 iterations).
fn mean_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget || iters < 3 {
        f();
        iters += 1;
        if iters >= 1_000_000 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Synthetic chain scenario, fully deterministic (no RNG): `n_attrs`
/// attributes `a0..`, rules covering the chain edges `a_i → a_{i+1}` in
/// **reverse** edge order (worst case for the pass-based engine: seeding
/// `a0` forces one pass per chain stage), repeated round-robin up to
/// `n_rules`. Master rows are per-entity unique, so every key resolves
/// to exactly one row and the whole chain fires.
struct Chain {
    input: SchemaRef,
    rules: RuleSet,
    master: MasterData,
    truths: Vec<Tuple>,
}

fn chain_scenario(n_attrs: usize, n_rules: usize, n_master: usize) -> Chain {
    let names: Vec<String> = (0..n_attrs).map(|i| format!("a{i}")).collect();
    let input = Schema::of_strings("chain_in", names.iter().map(String::as_str)).unwrap();
    let ms = Schema::of_strings("chain_m", names.iter().map(String::as_str)).unwrap();
    let n_edges = n_attrs - 1;
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    for k in 0..n_rules {
        let edge = (n_edges - 1) - (k % n_edges); // reverse order, repeated
        rules
            .add(
                EditingRule::new(
                    format!("r{k}"),
                    &input,
                    &ms,
                    vec![(edge, edge)],
                    vec![(edge + 1, edge + 1)],
                    PatternTuple::empty(),
                )
                .unwrap(),
            )
            .unwrap();
    }
    let mut builder = RelationBuilder::new(ms.clone());
    let mut truths = Vec::with_capacity(n_master);
    for e in 0..n_master {
        let row: Vec<String> = (0..n_attrs).map(|j| format!("{j}x{e}")).collect();
        builder = builder.row_strs(row.iter().map(String::as_str));
        truths.push(Tuple::of_strings(input.clone(), row).unwrap());
    }
    let master = MasterData::new(builder.build().unwrap());
    Chain {
        input,
        rules,
        master,
        truths,
    }
}

/// One timing cell: both engines, same inputs, warmed master.
struct Cell {
    rules: usize,
    master: usize,
    pass_ns: f64,
    delta_ns: f64,
}

fn time_engines(
    rules: &RuleSet,
    master: &MasterData,
    truths: &[Tuple],
    seed: &AttrSet,
    budget: Duration,
) -> (f64, f64) {
    let plan = CompiledRules::compile(rules, master); // warms indexes too
    let masked: Vec<Tuple> = truths
        .iter()
        .map(|t| cerfix::region::masked_input(t, seed))
        .collect();
    let mut i = 0usize;
    let pass_ns = mean_ns(budget, || {
        let mut t = masked[i % masked.len()].clone();
        i += 1;
        let mut v = seed.clone();
        run_fixpoint(rules, master, &mut t, &mut v).expect("consistent");
    });
    let mut j = 0usize;
    let delta_ns = mean_ns(budget, || {
        let mut t = masked[j % masked.len()].clone();
        j += 1;
        let mut v = seed.clone();
        run_fixpoint_delta(&plan, master, &mut t, &mut v).expect("consistent");
    });
    (pass_ns, delta_ns)
}

fn timing_matrix(budget: Duration) -> Vec<Cell> {
    let master_sizes: &[usize] = if fast_mode() {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut cells = Vec::new();
    // 9 rules: the paper's UK scenario.
    for &n_master in master_sizes {
        let mut rng = rng_for(&format!("fixpoint-uk-{n_master}"));
        let scenario = uk::scenario(n_master, &mut rng);
        let master = scenario.master_data();
        let seed: AttrSet = ["zip", "phn", "type", "item"]
            .iter()
            .map(|n| scenario.input.attr_id(n).expect("uk attr"))
            .collect();
        // type=2 truths so the mobile rules fire.
        let truths: Vec<Tuple> = scenario
            .universe
            .iter()
            .skip(1)
            .step_by(2)
            .take(512)
            .cloned()
            .collect();
        let (pass_ns, delta_ns) = time_engines(&scenario.rules, &master, &truths, &seed, budget);
        cells.push(Cell {
            rules: 9,
            master: n_master,
            pass_ns,
            delta_ns,
        });
    }
    // 100 / 500 rules: mined-scale synthetic chains.
    for &n_rules in &[100usize, 500] {
        for &n_master in master_sizes {
            let chain = chain_scenario(24, n_rules, n_master);
            let seed: AttrSet = [chain.input.attr_id("a0").expect("a0")].into();
            let truths: Vec<Tuple> = chain.truths.iter().take(512).cloned().collect();
            let (pass_ns, delta_ns) =
                time_engines(&chain.rules, &chain.master, &truths, &seed, budget);
            cells.push(Cell {
                rules: n_rules,
                master: n_master,
                pass_ns,
                delta_ns,
            });
        }
    }
    cells
}

/// Checked-in expectations for the deterministic guard fixture (chain of
/// 10 attributes, 30 rules in reverse edge order, 100 master rows, 50
/// fixpoints seeded with `{a0}`). These are exact counts, independent of
/// machine and of the random generators — if an engine change shifts
/// them, re-derive by running this bench and update BOTH the numbers and
/// the reasoning:
///
/// * delta: the full chain validates, so every rule becomes eligible
///   exactly once and is attempted exactly once ⇒ 30 attempts/tuple.
/// * pass-based: the 30 rules are 3 interleaved reverse-ordered copies
///   of the 9 chain edges, so each pass advances 3 chain stages (one per
///   copy); 9 edges ⇒ 3 productive passes + 1 quiescent ⇒ 4 passes × 30
///   rules = 120 attempts/tuple.
const GUARD_TUPLES: usize = 50;
const EXPECTED_PASS_ATTEMPTS: usize = 120 * GUARD_TUPLES;
const EXPECTED_DELTA_ATTEMPTS: usize = 30 * GUARD_TUPLES;

fn stats_guard() -> (EngineStats, EngineStats) {
    let chain = chain_scenario(10, 30, 100);
    let plan = CompiledRules::compile(&chain.rules, &chain.master);
    let seed: AttrSet = [chain.input.attr_id("a0").expect("a0")].into();
    let mut pass = EngineStats::default();
    let mut delta = EngineStats::default();
    for truth in chain.truths.iter().take(GUARD_TUPLES) {
        let masked = cerfix::region::masked_input(truth, &seed);
        let mut t1 = masked.clone();
        let mut v1 = seed.clone();
        pass += run_fixpoint(&chain.rules, &chain.master, &mut t1, &mut v1)
            .expect("chain consistent")
            .stats;
        let mut t2 = masked;
        let mut v2 = seed.clone();
        delta += run_fixpoint_delta(&plan, &chain.master, &mut t2, &mut v2)
            .expect("chain consistent")
            .stats;
    }
    assert_eq!(
        pass.rule_attempts, EXPECTED_PASS_ATTEMPTS,
        "pass-based attempts regressed vs checked-in expectation"
    );
    assert_eq!(
        delta.rule_attempts, EXPECTED_DELTA_ATTEMPTS,
        "delta attempts regressed vs checked-in expectation"
    );
    assert!(
        delta.rule_attempts < pass.rule_attempts,
        "delta must do strictly less work"
    );
    assert!(delta.master_lookups <= pass.master_lookups);
    assert_eq!(
        delta.index_probes, delta.master_lookups,
        "warmed path: every delta lookup is a lock-free index probe"
    );
    (pass, delta)
}

/// `certify_region` unit cost: the UK paper region against the truth
/// universe, one compiled plan (the region finder's data-phase shape).
fn certify_bench(budget: Duration) -> (f64, usize) {
    let mut rng = rng_for("fixpoint-certify");
    let scenario = uk::scenario(1_000, &mut rng);
    let master = scenario.master_data();
    let plan = CompiledRules::compile(&scenario.rules, &master);
    let t = |n: &str| scenario.input.attr_id(n).expect("uk attr");
    let attrs: AttrSet = [t("zip"), t("phn"), t("type"), t("item")].into();
    let pattern = PatternTuple::empty().with_eq(t("type"), cerfix_relation::Value::str("2"));
    let mut checked = 0usize;
    let ns = mean_ns(budget, || {
        let res = certify_region(&plan, &master, &attrs, &pattern, &scenario.universe);
        assert!(res.certified);
        checked = res.checked;
    });
    (ns, checked)
}

fn write_json(
    cells: &[Cell],
    certify_ns: f64,
    certify_checked: usize,
    guard: (EngineStats, EngineStats),
) {
    let (pass, delta) = guard;
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"rules\": {}, \"master\": {}, \"pass_ns\": {:.0}, \"delta_ns\": {:.0}, \"speedup\": {:.2}}}",
            c.rules,
            c.master,
            c.pass_ns,
            c.delta_ns,
            c.pass_ns / c.delta_ns
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"fixpoint\",\n  \"mode\": \"{mode}\",\n  \"engines\": [\"pass_based\", \"delta\"],\n  \"results\": [\n{rows}\n  ],\n  \"certify_region\": {{\"ns_per_call\": {certify_ns:.0}, \"universe_checked\": {certify_checked}}},\n  \"stats_guard\": {{\n    \"tuples\": {tuples},\n    \"pass_attempts\": {pa}, \"delta_attempts\": {da},\n    \"pass_lookups\": {pl}, \"delta_lookups\": {dl}\n  }}\n}}\n",
        mode = if fast_mode() { "smoke" } else { "full" },
        tuples = GUARD_TUPLES,
        pa = pass.rule_attempts,
        da = delta.rule_attempts,
        pl = pass.master_lookups,
        dl = delta.master_lookups,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fixpoint.json");
    std::fs::write(path, json).expect("write BENCH_fixpoint.json at repo root");
    println!("wrote {path}");
}

fn bench_fixpoint_suite(_c: &mut Criterion) {
    let budget = if fast_mode() {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(300)
    };
    println!("\n== fixpoint engines: pass-based vs delta ==");
    let cells = timing_matrix(budget);
    for c in &cells {
        println!(
            "rules={:<4} master={:<7} pass {:>12.0}ns  delta {:>12.0}ns  speedup {:>6.2}x",
            c.rules,
            c.master,
            c.pass_ns,
            c.delta_ns,
            c.pass_ns / c.delta_ns
        );
    }
    let guard = stats_guard();
    println!(
        "stats guard: pass attempts {} / delta attempts {} (expected {} / {})",
        guard.0.rule_attempts,
        guard.1.rule_attempts,
        EXPECTED_PASS_ATTEMPTS,
        EXPECTED_DELTA_ATTEMPTS
    );
    let (certify_ns, certify_checked) = certify_bench(budget);
    println!(
        "certify_region (uk, |universe|={certify_checked} in scope): {:.2}ms/call",
        certify_ns / 1e6
    );
    write_json(&cells, certify_ns, certify_checked, guard);
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_fixpoint_suite
}
criterion_main!(benches);
