//! Criterion bench backing experiment T5: the region finder across
//! scenarios (context enumeration + cover search + data certification).

use cerfix::{find_regions, RegionFinderOptions};
use cerfix_bench::rng_for;
use cerfix_gen::{dblp, hosp, uk};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_region_finder(c: &mut Criterion) {
    let mut rng = rng_for("bench-regions");
    let scenarios = [
        uk::scenario(200, &mut rng),
        hosp::scenario(200, &mut rng),
        dblp::scenario(200, &mut rng),
    ];
    let options = RegionFinderOptions::default();
    let mut group = c.benchmark_group("region_finder");
    for scenario in &scenarios {
        let master = scenario.master_data();
        group.bench_function(scenario.name, |b| {
            b.iter(|| find_regions(&scenario.rules, &master, &scenario.universe, &options))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_region_finder
}
criterion_main!(benches);
