//! Region finder benchmark (experiment T5, extended): cold
//! sequential-vs-parallel search and master-append delta
//! re-certification, against the pre-lattice from-scratch baseline.
//!
//! Three jobs in one harness:
//!
//! 1. **Timing matrix** — four arms per fixture: the from-scratch
//!    sequential oracle (`find_regions_from_scratch`, the pre-lattice
//!    data phase), the incremental search at 1 thread, the incremental
//!    search at all cores, and a master-append `recheck_regions` patch.
//!    Fixtures: the paper's UK scenario (9 rules) and mesh scenarios at
//!    100 / 500 rules. Results land in `BENCH_regions.json` at the repo
//!    root so the perf trajectory is recorded per commit.
//! 2. **Deterministic work guard** — exact probe/fixpoint counts on the
//!    mesh fixture: the incremental path must certify with zero
//!    fixpoints (the universe is master-derived), every arm must agree
//!    on the regions, and the delta recheck must probe ≥ 10× less than
//!    a full re-search. Counts, not wall-clock: cannot flake on machine
//!    speed, and CI's bench-smoke step fails on regression.
//! 3. **Region equality** — every arm's regions are asserted equal, so
//!    the bench doubles as an end-to-end equivalence check at scale.

use cerfix::{
    find_regions_from_scratch, recheck_regions, search_regions, MasterData, RegionFinderOptions,
    RegionSearch, RegionSearchResult,
};
use cerfix_bench::rng_for;
use cerfix_gen::uk;
use cerfix_relation::{RelationBuilder, Schema, SchemaRef, Tuple, Value};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn fast_mode() -> bool {
    std::env::var_os("CERFIX_BENCH_FAST").is_some()
}

/// Mean ns/iter of `f` over a wall-clock budget (min 2 iterations).
fn mean_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget || iters < 2 {
        f();
        iters += 1;
        if iters >= 100_000 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A deterministic "mesh" scenario built to stress the region search:
/// one gate attribute (4 contexts), two islands of 3 cyclically-fixable
/// key attributes each, and payload attributes split between the
/// islands — so every context enumerates 9 minimal covers (one key per
/// island) and the data phase certifies `contexts × 9` candidates
/// against a universe of one truth per master row. Master keys are
/// per-entity unique: every candidate certifies, nothing is poisoned.
struct Mesh {
    rules: RuleSet,
    master: MasterData,
    universe: Vec<Tuple>,
    input: SchemaRef,
}

fn mesh_scenario(n_rules: usize, n_master: usize) -> Mesh {
    const KEYS: usize = 3; // per island
    const PAYLOADS: usize = 6; // per island
    let mut names: Vec<String> = vec!["g".into()];
    for island in ["a", "b"] {
        for k in 0..KEYS {
            names.push(format!("{island}k{k}"));
        }
        for p in 0..PAYLOADS {
            names.push(format!("{island}p{p}"));
        }
    }
    let input = Schema::of_strings("mesh_in", names.iter().map(String::as_str)).unwrap();
    let ms = Schema::of_strings("mesh_m", names.iter().map(String::as_str)).unwrap();
    let id = |n: &str| input.attr_id(n).unwrap();

    let mut rules = RuleSet::new(input.clone(), ms.clone());
    let mut add = |name: String, lhs: &str, rhs: &str, pattern: PatternTuple| {
        rules
            .add(
                EditingRule::new(
                    name,
                    &input,
                    &ms,
                    vec![(id(lhs), id(lhs))],
                    vec![(id(rhs), id(rhs))],
                    pattern,
                )
                .unwrap(),
            )
            .unwrap();
    };
    // Island key cycles: any one key recovers its island's other keys.
    let mut n = 0usize;
    for island in ["a", "b"] {
        for k in 0..KEYS {
            add(
                format!("cyc_{island}{k}"),
                &format!("{island}k{k}"),
                &format!("{island}k{}", (k + 1) % KEYS),
                PatternTuple::empty(),
            );
            n += 1;
        }
    }
    // Payload rules up to n_rules: key → payload, three of four gated.
    let mut r = 0usize;
    while n < n_rules {
        let island = ["a", "b"][r % 2];
        let key = format!("{island}k{}", (r / 2) % KEYS);
        let payload = format!("{island}p{}", (r / 4) % PAYLOADS);
        let pattern = match r % 4 {
            3 => PatternTuple::empty(),
            v => PatternTuple::empty().with_eq(id("g"), Value::str(format!("v{v}"))),
        };
        add(format!("pay{r}"), &key, &payload, pattern);
        n += 1;
        r += 1;
    }

    let mut builder = RelationBuilder::new(ms.clone());
    let mut universe = Vec::with_capacity(n_master);
    for e in 0..n_master {
        let row: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                if i == 0 {
                    format!("v{}", e % 4) // gate value ⇒ 4 contexts
                } else {
                    format!("{name}~{e}")
                }
            })
            .collect();
        builder = builder.row_strs(row.iter().map(String::as_str));
        universe.push(Tuple::of_strings(input.clone(), row).unwrap());
    }
    let master = MasterData::new(builder.build().unwrap());
    Mesh {
        rules,
        master,
        universe,
        input,
    }
}

fn options(threads: usize) -> RegionFinderOptions {
    RegionFinderOptions {
        top_k: 64,
        threads,
        ..Default::default()
    }
}

/// One fixture's measurements across the four arms.
struct Row {
    name: String,
    rules: usize,
    master: usize,
    contexts: usize,
    candidates: usize,
    baseline_ns: f64,
    baseline_fixpoints: usize,
    seq_ns: f64,
    par_ns: f64,
    par_threads: usize,
    probes: usize,
    fixpoints: usize,
    delta_ns: f64,
    delta_probes: usize,
    full_probes: usize,
}

/// Total certification work of a search: per-truth rule profiles (the
/// master-lookup pass), lattice closure probes, and fallback fixpoints.
fn probes_of(result: &RegionSearchResult) -> usize {
    result.stats.truth_profiles + result.stats.closure_probes + result.stats.engine.fixpoint_runs
}

fn assert_same_regions(a: &RegionSearchResult, b: &RegionSearchResult, what: &str) {
    assert_eq!(a.regions, b.regions, "{what}: arms disagree on regions");
}

/// Append one fresh entity to a copy of the fixture and return the
/// patched search plus the full re-search (for the delta guard).
#[allow(clippy::too_many_arguments)]
fn delta_arm(
    rules: &RuleSet,
    master: &MasterData,
    universe: &[Tuple],
    prior: &RegionSearch,
    new_master_row: &[String],
    new_truth_row: &[String],
    input: &SchemaRef,
    budget: Duration,
) -> (f64, RegionSearch, RegionSearch) {
    let ms = master.schema().clone();
    let row = Tuple::of_strings(ms, new_master_row.iter().map(String::as_str)).unwrap();
    let (appended, _) = master.append_copy(vec![row]).unwrap();
    let mut extended = universe.to_vec();
    extended
        .push(Tuple::of_strings(input.clone(), new_truth_row.iter().map(String::as_str)).unwrap());
    let ns = mean_ns(budget, || {
        let _ = recheck_regions(rules, &appended, &extended, prior, &options(1));
    });
    let patched = recheck_regions(rules, &appended, &extended, prior, &options(1));
    let full = search_regions(rules, &appended, &extended, &options(1));
    assert_same_regions(&full.result, &patched.result, "delta");
    (ns, patched, full)
}

#[allow(clippy::too_many_arguments)]
fn measure(
    name: &str,
    rules: &RuleSet,
    master: &MasterData,
    universe: &[Tuple],
    new_master_row: Vec<String>,
    new_truth_row: Vec<String>,
    input: &SchemaRef,
    budget: Duration,
) -> Row {
    let threads = std::thread::available_parallelism().map_or(4, usize::from);
    let baseline = find_regions_from_scratch(rules, master, universe, &options(1));
    let baseline_ns = mean_ns(budget, || {
        let _ = find_regions_from_scratch(rules, master, universe, &options(1));
    });
    let seq = search_regions(rules, master, universe, &options(1));
    assert_same_regions(&baseline, &seq.result, name);
    let seq_ns = mean_ns(budget, || {
        let _ = search_regions(rules, master, universe, &options(1));
    });
    let par = search_regions(rules, master, universe, &options(threads));
    assert_same_regions(&baseline, &par.result, name);
    let par_ns = mean_ns(budget, || {
        let _ = search_regions(rules, master, universe, &options(threads));
    });
    let (delta_ns, patched, full) = delta_arm(
        rules,
        master,
        universe,
        &seq,
        &new_master_row,
        &new_truth_row,
        input,
        budget,
    );
    Row {
        name: name.to_string(),
        rules: rules.len(),
        master: master.len(),
        contexts: seq.result.stats.contexts,
        candidates: seq.result.stats.candidates,
        baseline_ns,
        baseline_fixpoints: baseline.stats.engine.fixpoint_runs,
        seq_ns,
        par_ns,
        par_threads: threads,
        probes: probes_of(&seq.result),
        fixpoints: seq.result.stats.engine.fixpoint_runs,
        delta_ns,
        delta_probes: probes_of(&patched.result),
        full_probes: probes_of(&full.result),
    }
}

/// The deterministic guard: exact work-shape invariants on the mesh
/// fixture, independent of machine speed. A regression here fails CI.
fn stats_guard(rows: &[Row]) {
    for row in rows {
        assert!(
            row.baseline_fixpoints > row.master,
            "{}: baseline must run universe × candidates fixpoints, got {}",
            row.name,
            row.baseline_fixpoints
        );
        assert!(
            row.fixpoints < row.baseline_fixpoints,
            "{}: incremental must run strictly fewer fixpoints ({} vs {})",
            row.name,
            row.fixpoints,
            row.baseline_fixpoints
        );
        assert!(
            row.full_probes >= 10 * row.delta_probes.max(1),
            "{}: delta recheck must probe ≥10× less than a full re-search \
             ({} vs {})",
            row.name,
            row.delta_probes,
            row.full_probes
        );
    }
    // Mesh universes are master-derived: nothing is poisoned, every
    // probe is a memoized closure — zero fixpoints.
    for row in rows.iter().filter(|r| r.name.starts_with("mesh")) {
        assert_eq!(
            row.fixpoints, 0,
            "{}: mesh certification must be fixpoint-free",
            row.name
        );
        assert_eq!(row.contexts, 4, "{}: 3 gate values + else", row.name);
        assert_eq!(
            row.candidates, 36,
            "{}: 4 contexts × 9 island-key covers",
            row.name
        );
    }
}

fn write_json(rows: &[Row]) {
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "    {{\"fixture\": \"{}\", \"rules\": {}, \"master\": {}, \
             \"contexts\": {}, \"candidates\": {}, \
             \"baseline_seq_ns\": {:.0}, \"baseline_fixpoints\": {}, \
             \"incremental_seq_ns\": {:.0}, \"incremental_par_ns\": {:.0}, \
             \"par_threads\": {}, \"probes\": {}, \"fixpoints\": {}, \
             \"speedup_seq\": {:.2}, \"speedup_par\": {:.2}, \
             \"delta_recheck_ns\": {:.0}, \"delta_probes\": {}, \
             \"full_probes\": {}, \"delta_probe_ratio\": {:.1}}}",
            r.name,
            r.rules,
            r.master,
            r.contexts,
            r.candidates,
            r.baseline_ns,
            r.baseline_fixpoints,
            r.seq_ns,
            r.par_ns,
            r.par_threads,
            r.probes,
            r.fixpoints,
            r.baseline_ns / r.seq_ns,
            r.baseline_ns / r.par_ns,
            r.delta_ns,
            r.delta_probes,
            r.full_probes,
            r.full_probes as f64 / r.delta_probes.max(1) as f64,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"regions\",\n  \"mode\": \"{mode}\",\n  \
         \"arms\": [\"baseline_seq (from-scratch)\", \"incremental_seq\", \
         \"incremental_par\", \"delta_recheck\"],\n  \"results\": [\n{body}\n  ]\n}}\n",
        mode = if fast_mode() { "smoke" } else { "full" },
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regions.json");
    std::fs::write(path, json).expect("write BENCH_regions.json at repo root");
    println!("wrote {path}");
}

fn bench_regions_suite(_c: &mut Criterion) {
    let budget = if fast_mode() {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(600)
    };
    let n_master = if fast_mode() { 300 } else { 1200 };
    println!("\n== region finder: incremental/parallel vs from-scratch ==");

    let mut rows = Vec::new();

    // The paper's UK scenario (9 rules).
    let mut rng = rng_for("bench-regions-uk");
    let scenario = uk::scenario(if fast_mode() { 60 } else { 200 }, &mut rng);
    let uk_master = scenario.master_data();
    let uk_new_row: Vec<String> = [
        "Zoe",
        "Quinn",
        "0161",
        "5550001",
        "077999888",
        "9 Void St",
        "Mcr",
        "M1 1AA",
        "01/01/90",
        "F",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    // The UK universe lives in the input shape; the appended entity's
    // truth is its home-phone (type=1) interpretation.
    let uk_truth: Vec<String> = [
        "Zoe",
        "Quinn",
        "0161",
        "5550001",
        "1",
        "9 Void St",
        "Mcr",
        "M1 1AA",
        "CD",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    rows.push(measure(
        "uk",
        &scenario.rules,
        &uk_master,
        &scenario.universe,
        uk_new_row,
        uk_truth,
        &scenario.input,
        budget,
    ));

    // Mesh scenarios: the mined-rules scale.
    for n_rules in [100usize, 500] {
        let mesh = mesh_scenario(n_rules, n_master);
        let new_entity: Vec<String> = {
            let e = n_master + 1;
            let mut row: Vec<String> = Vec::new();
            for (i, attr) in mesh.master.schema().attributes().iter().enumerate() {
                row.push(if i == 0 {
                    format!("v{}", e % 4)
                } else {
                    format!("{}~{e}", attr.name())
                });
            }
            row
        };
        rows.push(measure(
            &format!("mesh{n_rules}"),
            &mesh.rules,
            &mesh.master,
            &mesh.universe,
            new_entity.clone(),
            new_entity,
            &mesh.input,
            budget,
        ));
    }

    for r in &rows {
        println!(
            "{:<8} rules={:<4} master={:<5} cand={:<3} baseline {:>12.0}ns  \
             seq {:>11.0}ns ({:>5.1}x)  par {:>11.0}ns ({:>5.1}x, {} threads)  \
             delta {:>9.0}ns (probes {} vs {})",
            r.name,
            r.rules,
            r.master,
            r.candidates,
            r.baseline_ns,
            r.seq_ns,
            r.baseline_ns / r.seq_ns,
            r.par_ns,
            r.baseline_ns / r.par_ns,
            r.par_threads,
            r.delta_ns,
            r.delta_probes,
            r.full_probes,
        );
    }
    stats_guard(&rows);
    write_json(&rows);
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_regions_suite
}
criterion_main!(benches);
