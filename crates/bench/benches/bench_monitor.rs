//! Criterion bench backing experiment T3: per-tuple monitor latency as
//! the master relation grows. With warmed hash indexes the curve should
//! be near-flat in |Dm|.

use cerfix::{DataMonitor, OracleUser};
use cerfix_bench::{rng_for, workload_for};
use cerfix_gen::uk;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_monitor_clean(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_clean_per_tuple");
    for &n_master in &[1_000usize, 10_000, 50_000] {
        let mut rng = rng_for(&format!("bench-monitor-{n_master}"));
        let scenario = uk::scenario(n_master, &mut rng);
        let master = scenario.master_data();
        master.warm_indexes(scenario.rules.iter().map(|(_, r)| r));
        let monitor = DataMonitor::new(&scenario.rules, &master);
        let workload = workload_for(&scenario, 64, 0.3, &mut rng);

        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n_master), &n_master, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let idx = i % workload.dirty.len();
                i += 1;
                let mut user = OracleUser::new(workload.truth[idx].clone());
                monitor
                    .clean(idx, workload.dirty[idx].clone(), &mut user)
                    .expect("consistent rules")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_monitor_clean
}
criterion_main!(benches);
