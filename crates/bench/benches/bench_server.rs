//! Service throughput: batched `clean` requests through the
//! `cerfix-server` worker pool at 1 vs N workers.
//!
//! Goes through the full wire path (request JSON → service → pool →
//! response JSON) via the in-process client, so the number includes
//! protocol overhead but not socket I/O — the same shape a TCP client
//! sees on loopback minus kernel round-trips. The interesting read-out
//! is the 1-vs-N scaling of elem/s.

use cerfix_bench::{rng_for, workload_for};
use cerfix_gen::uk;
use cerfix_relation::Value;
use cerfix_server::{CleaningService, LocalClient, Request, ServiceConfig, StorageConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

const BATCH: usize = 128;

fn bench_server_batch_clean(c: &mut Criterion) {
    let mut rng = rng_for("bench-server");
    let scenario = uk::scenario(5_000, &mut rng);
    let workload = workload_for(&scenario, BATCH, 0.3, &mut rng);
    let schema = scenario.input.clone();
    let trusted: Vec<usize> = ["phn", "type", "zip"]
        .iter()
        .map(|n| schema.attr_id(n).unwrap())
        .collect();
    // Entry-form shape: trusted columns carry true values, rest dirty.
    let tuples: Vec<Vec<Value>> = workload
        .dirty
        .iter()
        .zip(&workload.truth)
        .map(|(dirty, truth)| {
            let mut entered = dirty.clone();
            for &a in &trusted {
                entered.set(a, truth.get(a).clone()).unwrap();
            }
            entered.values().to_vec()
        })
        .collect();
    let request = Request::Clean {
        tuples,
        trust: ["phn", "type", "zip"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };

    // At least 2 so the N-arm exercises real pool fan-out even on a
    // single-core box (where the read-out is pool overhead, not speedup).
    let n_workers = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(2);
    let mut group = c.benchmark_group("server_batch_clean");
    group.throughput(Throughput::Elements(BATCH as u64));
    for workers in [1usize, n_workers] {
        let service = CleaningService::new(
            Arc::new(scenario.master_data()),
            Arc::new(scenario.rules.clone()),
            ServiceConfig {
                workers,
                precompute_regions: false,
                ..ServiceConfig::default()
            },
        );
        let mut client = LocalClient::in_process(&service);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| client.request(&request).expect("clean batch"));
        });
    }
    group.finish();
}

fn bench_server_session_round_trip(c: &mut Criterion) {
    let mut rng = rng_for("bench-server-session");
    let scenario = uk::scenario(5_000, &mut rng);
    let workload = workload_for(&scenario, 256, 0.3, &mut rng);
    let schema = scenario.input.clone();
    let service = CleaningService::new(
        Arc::new(scenario.master_data()),
        Arc::new(scenario.rules.clone()),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
    );
    let mut client = LocalClient::in_process(&service);

    // One full interactive session per iteration: create → oracle-follow
    // suggestions → commit. The per-session latency a clerk's form sees.
    let mut group = c.benchmark_group("server_session_lifecycle");
    group.throughput(Throughput::Elements(1));
    group.bench_function("oracle_session", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let idx = i % workload.len();
            i += 1;
            let truth = &workload.truth[idx];
            let mut view = client
                .create_session(workload.dirty[idx].values().to_vec())
                .expect("create");
            let mut guard = 0;
            while view.status == "awaiting_user" {
                guard += 1;
                assert!(guard <= 64, "runaway session");
                let validations: Vec<(String, Value)> = view
                    .suggestion
                    .iter()
                    .map(|name| {
                        let attr = schema.attr_id(name).expect("known attr");
                        (name.clone(), truth.get(attr).clone())
                    })
                    .collect();
                view = client
                    .validate(view.session, validations)
                    .expect("validate");
            }
            client.commit(view.session).expect("commit")
        });
    });
    group.finish();
}

/// Durability overhead: the same full interactive session (create →
/// oracle-follow → commit) against an in-memory service, a journaled
/// one (commit = local group fsync) and a replicated one (commit =
/// local fsync + a quorum ack from a journal-tailing follower). The
/// journaled arm pays per-op event encoding plus one group-fsync wait
/// at commit; the quorum-ack arm adds the follower's poll + fsync +
/// ack round trip — the numbers this bench tracks are those deltas.
fn bench_server_session_durability(c: &mut Criterion) {
    use cerfix_server::{Frontend, Request, Server};

    let mut rng = rng_for("bench-server-durability");
    let scenario = uk::scenario(5_000, &mut rng);
    let workload = workload_for(&scenario, 256, 0.3, &mut rng);
    let schema = scenario.input.clone();
    let data_dir =
        std::env::temp_dir().join(format!("cerfix-bench-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    let mut group = c.benchmark_group("server_session_durability");
    group.throughput(Throughput::Elements(1));
    for mode in ["memory", "journaled", "quorum-ack"] {
        let config = ServiceConfig {
            workers: 2,
            precompute_regions: false,
            ..ServiceConfig::default()
        };
        let master = Arc::new(scenario.master_data());
        let rules = Arc::new(scenario.rules.clone());
        // The quorum arm's follower + TCP server, kept alive for the arm.
        let mut rig = None;
        let service = match mode {
            "memory" => CleaningService::new(master, rules, config),
            "journaled" => {
                CleaningService::with_storage(master, rules, config, StorageConfig::new(&data_dir))
                    .expect("open bench data dir")
            }
            _ => {
                let primary = CleaningService::with_storage(
                    Arc::clone(&master),
                    Arc::clone(&rules),
                    ServiceConfig {
                        cluster_size: 2,
                        ack_timeout: std::time::Duration::from_secs(10),
                        advertise: Some("bench-primary".into()),
                        ..config
                    },
                    StorageConfig::new(data_dir.join("primary")),
                )
                .expect("open bench primary dir");
                let handle = Server::spawn_with("127.0.0.1:0", primary.clone(), Frontend::Threads)
                    .expect("bind bench primary");
                let follower = CleaningService::with_storage(
                    master,
                    rules,
                    ServiceConfig {
                        replicate_from: Some(handle.addr().to_string()),
                        advertise: Some("bench-follower".into()),
                        workers: 2,
                        precompute_regions: false,
                        ..ServiceConfig::default()
                    },
                    StorageConfig::new(data_dir.join("follower")),
                )
                .expect("open bench follower dir");
                rig = Some((follower, handle));
                primary
            }
        };
        let mut client = LocalClient::in_process(&service);
        group.bench_function(BenchmarkId::new("oracle_session", mode), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let idx = i % workload.len();
                i += 1;
                let truth = &workload.truth[idx];
                let mut view = client
                    .create_session(workload.dirty[idx].values().to_vec())
                    .expect("create");
                let mut guard = 0;
                while view.status == "awaiting_user" {
                    guard += 1;
                    assert!(guard <= 64, "runaway session");
                    let validations: Vec<(String, Value)> = view
                        .suggestion
                        .iter()
                        .map(|name| {
                            let attr = schema.attr_id(name).expect("known attr");
                            (name.clone(), truth.get(attr).clone())
                        })
                        .collect();
                    view = client
                        .validate(view.session, validations)
                        .expect("validate");
                }
                client.commit(view.session).expect("commit")
            });
        });
        if let Some((follower, handle)) = rig.take() {
            follower.handle(&Request::Shutdown); // stops the tail thread
            let _ = handle.shutdown();
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&data_dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_server_batch_clean, bench_server_session_round_trip, bench_server_session_durability
}
criterion_main!(benches);
