//! Scan predicates: per-attribute comparisons against constants.
//!
//! These power `Relation::scan` and the unindexed fallback paths of the
//! master data manager. The richer *pattern* language of editing rules
//! (constants, negations, wildcards over pattern tuples) lives in
//! `cerfix-rules`; predicates here are deliberately minimal.

use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators for scan predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equal (null never compares equal to anything, including null).
    Eq,
    /// Not equal (null never satisfies `Ne` either: unknown ≠ known is unknown).
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    /// Evaluate `left op right` with three-valued-logic nulls collapsed to
    /// false (a scan never returns rows on the strength of missing data).
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        if left.is_null() || right.is_null() {
            return false;
        }
        match self {
            CompareOp::Eq => left == right,
            CompareOp::Ne => left != right,
            CompareOp::Lt => left < right,
            CompareOp::Le => left <= right,
            CompareOp::Gt => left > right,
            CompareOp::Ge => left >= right,
        }
    }

    /// Symbol used in rendered predicates.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// A predicate `tuple[attr] op constant`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    attr: AttrId,
    op: CompareOp,
    constant: Value,
}

impl Predicate {
    /// Build a predicate over attribute `attr`.
    pub fn new(attr: AttrId, op: CompareOp, constant: Value) -> Predicate {
        Predicate { attr, op, constant }
    }

    /// Shorthand for an equality predicate.
    pub fn eq(attr: AttrId, constant: Value) -> Predicate {
        Predicate::new(attr, CompareOp::Eq, constant)
    }

    /// The attribute tested.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The comparison operator.
    pub fn op(&self) -> CompareOp {
        self.op
    }

    /// The constant compared against.
    pub fn constant(&self) -> &Value {
        &self.constant
    }

    /// Evaluate the predicate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        self.op.eval(tuple.get(self.attr), &self.constant)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} {}", self.attr, self.op.symbol(), self.constant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Schema;

    fn tuple(age: i64) -> Tuple {
        let s = Schema::new("p", [("age", DataType::Int)]).unwrap();
        Tuple::new(s, vec![Value::int(age)]).unwrap()
    }

    #[test]
    fn all_operators() {
        let t = tuple(30);
        let c = Value::int(30);
        assert!(Predicate::new(0, CompareOp::Eq, c.clone()).eval(&t));
        assert!(!Predicate::new(0, CompareOp::Ne, c.clone()).eval(&t));
        assert!(Predicate::new(0, CompareOp::Le, c.clone()).eval(&t));
        assert!(Predicate::new(0, CompareOp::Ge, c).eval(&t));
        assert!(Predicate::new(0, CompareOp::Lt, Value::int(31)).eval(&t));
        assert!(Predicate::new(0, CompareOp::Gt, Value::int(29)).eval(&t));
        assert!(!Predicate::new(0, CompareOp::Lt, Value::int(30)).eval(&t));
    }

    #[test]
    fn null_satisfies_no_operator() {
        let s = Schema::new("p", [("age", DataType::Int)]).unwrap();
        let t = Tuple::all_null(s);
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            assert!(!Predicate::new(0, op, Value::int(1)).eval(&t), "{op:?}");
            assert!(
                !Predicate::new(0, op, Value::Null).eval(&t),
                "{op:?} vs null"
            );
        }
    }

    #[test]
    fn eq_shorthand() {
        let p = Predicate::eq(0, Value::int(30));
        assert_eq!(p.op(), CompareOp::Eq);
        assert!(p.eval(&tuple(30)));
        assert!(!p.eval(&tuple(31)));
    }

    #[test]
    fn accessors_and_display() {
        let p = Predicate::new(2, CompareOp::Ne, Value::str("0800"));
        assert_eq!(p.attr(), 2);
        assert_eq!(p.constant(), &Value::str("0800"));
        assert_eq!(p.to_string(), "#2 != 0800");
    }

    #[test]
    fn string_ordering_comparisons() {
        let s = Schema::of_strings("r", ["name"]).unwrap();
        let t = Tuple::of_strings(s, ["Brady"]).unwrap();
        assert!(Predicate::new(0, CompareOp::Lt, Value::str("Smith")).eval(&t));
        assert!(Predicate::new(0, CompareOp::Gt, Value::str("Adams")).eval(&t));
    }
}
