//! Minimal CSV reader/writer for relations.
//!
//! Replaces the demo system's JDBC data connection: scenario data and
//! experiment outputs round-trip through CSV files. Supports RFC-4180-style
//! quoting (`"` delimiter, doubled quotes inside quoted fields, embedded
//! commas and newlines), headers, and typed parsing against a schema.

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::SchemaRef;
use crate::tuple::Tuple;
use crate::value::Value;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parse one CSV record from `input` starting at byte `pos`.
///
/// Returns the fields and the position just past the record's terminating
/// newline (or end of input), or `None` at end of input.
fn parse_record(input: &str, pos: &mut usize, line: &mut usize) -> Option<Vec<String>> {
    let bytes = input.as_bytes();
    if *pos >= bytes.len() {
        return None;
    }
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut i = *pos;
    loop {
        if i >= bytes.len() {
            fields.push(std::mem::take(&mut field));
            *pos = i;
            break;
        }
        let c = bytes[i];
        if in_quotes {
            match c {
                b'"' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                        field.push('"');
                        i += 2;
                    } else {
                        in_quotes = false;
                        i += 1;
                    }
                }
                _ => {
                    // Preserve multi-byte characters: copy the full char.
                    let ch_len = utf8_len(c);
                    field.push_str(&input[i..i + ch_len]);
                    if c == b'\n' {
                        *line += 1;
                    }
                    i += ch_len;
                }
            }
        } else {
            match c {
                b'"' if field.is_empty() => {
                    in_quotes = true;
                    i += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                b'\r' => {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
                        i += 1;
                    }
                    fields.push(std::mem::take(&mut field));
                    *line += 1;
                    *pos = i + 1;
                    return Some(fields);
                }
                b'\n' => {
                    fields.push(std::mem::take(&mut field));
                    *line += 1;
                    *pos = i + 1;
                    return Some(fields);
                }
                _ => {
                    let ch_len = utf8_len(c);
                    field.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
    }
    Some(fields)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Quote a field if it contains a comma, quote, or newline.
fn quote_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let escaped = field.replace('"', "\"\"");
        format!("\"{escaped}\"")
    } else {
        field.to_string()
    }
}

/// Read a relation from CSV text. The first record must be a header whose
/// column names match the schema's attribute names in order.
pub fn read_relation_str(schema: SchemaRef, text: &str) -> Result<Relation> {
    let mut pos = 0usize;
    let mut line = 1usize;
    let header = parse_record(text, &mut pos, &mut line).ok_or(RelationError::Csv {
        line: 1,
        message: "empty input, expected header".into(),
    })?;
    let expected: Vec<&str> = schema.attributes().iter().map(|a| a.name()).collect();
    if header != expected {
        return Err(RelationError::Csv {
            line: 1,
            message: format!("header {header:?} does not match schema attributes {expected:?}"),
        });
    }
    let mut rel = Relation::empty(schema.clone());
    loop {
        let record_line = line;
        let Some(fields) = parse_record(text, &mut pos, &mut line) else {
            break;
        };
        // Skip a trailing blank line.
        if fields.len() == 1 && fields[0].is_empty() && pos >= text.len() {
            break;
        }
        if fields.len() != schema.arity() {
            return Err(RelationError::Csv {
                line: record_line,
                message: format!("expected {} fields, got {}", schema.arity(), fields.len()),
            });
        }
        let values: Vec<Value> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| Value::parse_as(f, schema.attributes()[i].data_type()))
            .collect::<Result<_>>()?;
        rel.push(Tuple::new(schema.clone(), values)?)?;
    }
    Ok(rel)
}

/// Read a relation from a CSV file (buffered).
pub fn read_relation_file(schema: SchemaRef, path: impl AsRef<Path>) -> Result<Relation> {
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    read_relation_str(schema, &text)
}

/// Serialize a relation to CSV text with a header row.
pub fn write_relation_str(relation: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = relation
        .schema()
        .attributes()
        .iter()
        .map(|a| quote_field(a.name()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for (_, tuple) in relation.iter() {
        let fields: Vec<String> = tuple
            .values()
            .iter()
            .map(|v| quote_field(&v.render()))
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Write a relation to a CSV file (buffered, explicit flush).
pub fn write_relation_file(relation: &Relation, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(write_relation_str(relation).as_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Read CSV lines from any reader, yielding raw string records (no header
/// handling). Exposed for tooling that wants to inspect files before a
/// schema is known.
pub fn read_raw_records(reader: impl Read) -> Result<Vec<Vec<String>>> {
    let mut buf = String::new();
    let mut r = BufReader::new(reader);
    r.read_to_string(&mut buf)?;
    let mut pos = 0;
    let mut line = 1;
    let mut records = Vec::new();
    while let Some(rec) = parse_record(&buf, &mut pos, &mut line) {
        if rec.len() == 1 && rec[0].is_empty() && pos >= buf.len() {
            break;
        }
        records.push(rec);
    }
    Ok(records)
}

/// Infer an all-string schema named `name` from a CSV header line and load
/// the body. Convenience for exploratory tooling.
pub fn read_untyped_str(name: &str, text: &str) -> Result<Relation> {
    let mut pos = 0;
    let mut line = 1;
    let header = parse_record(text, &mut pos, &mut line).ok_or(RelationError::Csv {
        line: 1,
        message: "empty input, expected header".into(),
    })?;
    let schema = crate::schema::Schema::of_strings(name, header)?;
    read_relation_str(schema, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Schema;

    fn schema() -> SchemaRef {
        Schema::new("p", [("name", DataType::String), ("age", DataType::Int)]).unwrap()
    }

    #[test]
    fn simple_round_trip() {
        let s = schema();
        let rel = Relation::from_tuples(
            s.clone(),
            [
                Tuple::new(s.clone(), vec![Value::str("Bob"), Value::int(30)]).unwrap(),
                Tuple::new(s.clone(), vec![Value::str("Ann"), Value::Null]).unwrap(),
            ],
        )
        .unwrap();
        let text = write_relation_str(&rel);
        assert_eq!(text, "name,age\nBob,30\nAnn,\n");
        let back = read_relation_str(s, &text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.row(0).unwrap().get(1), &Value::int(30));
        assert!(back.row(1).unwrap().get(1).is_null());
    }

    #[test]
    fn quoting_commas_quotes_newlines() {
        let s = Schema::of_strings("r", ["a"]).unwrap();
        let tricky = "He said \"hi\", then\nleft";
        let rel =
            Relation::from_tuples(s.clone(), [Tuple::of_strings(s.clone(), [tricky]).unwrap()])
                .unwrap();
        let text = write_relation_str(&rel);
        let back = read_relation_str(s, &text).unwrap();
        assert_eq!(back.row(0).unwrap().get(0), &Value::str(tricky));
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let s = schema();
        let err = read_relation_str(s, "name,years\nBob,30\n").unwrap_err();
        assert!(matches!(err, RelationError::Csv { line: 1, .. }));
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let s = schema();
        let err = read_relation_str(s, "name,age\nBob,30\nAnn\n").unwrap_err();
        match err {
            RelationError::Csv { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("expected 2"));
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn type_errors_surface() {
        let s = schema();
        let err = read_relation_str(s, "name,age\nBob,old\n").unwrap_err();
        assert!(matches!(err, RelationError::ParseValue { .. }));
    }

    #[test]
    fn crlf_line_endings() {
        let s = schema();
        let rel = read_relation_str(s, "name,age\r\nBob,30\r\nAnn,41\r\n").unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(1).unwrap().get(0), &Value::str("Ann"));
    }

    #[test]
    fn missing_trailing_newline() {
        let s = schema();
        let rel = read_relation_str(s, "name,age\nBob,30").unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn empty_input_is_error() {
        let s = schema();
        assert!(read_relation_str(s, "").is_err());
    }

    #[test]
    fn untyped_read_infers_string_schema() {
        let rel = read_untyped_str("t", "a,b\n1,x\n2,y\n").unwrap();
        assert_eq!(rel.schema().arity(), 2);
        assert_eq!(rel.row(0).unwrap().get(0), &Value::str("1"));
    }

    #[test]
    fn file_round_trip() {
        let s = schema();
        let rel = Relation::from_tuples(
            s.clone(),
            [Tuple::new(s.clone(), vec![Value::str("Bob"), Value::int(30)]).unwrap()],
        )
        .unwrap();
        let dir = std::env::temp_dir().join("cerfix_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("people.csv");
        write_relation_file(&rel, &path).unwrap();
        let back = read_relation_file(s, &path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn raw_records() {
        let recs = read_raw_records("a,b\n1,\"x,y\"\n".as_bytes()).unwrap();
        assert_eq!(
            recs,
            vec![
                vec!["a".to_string(), "b".into()],
                vec!["1".into(), "x,y".into()]
            ]
        );
    }

    #[test]
    fn unicode_fields_survive() {
        let s = Schema::of_strings("r", ["a"]).unwrap();
        let rel = Relation::from_tuples(
            s.clone(),
            [Tuple::of_strings(s.clone(), ["Šuai-馬"]).unwrap()],
        )
        .unwrap();
        let back = read_relation_str(s, &write_relation_str(&rel)).unwrap();
        assert_eq!(back.row(0).unwrap().get(0), &Value::str("Šuai-馬"));
    }
}
