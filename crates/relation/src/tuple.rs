//! Tuples: schema-bound value vectors.

use crate::error::{RelationError, Result};
use crate::schema::{AttrId, SchemaRef};
use crate::value::Value;
use std::fmt;

/// A tuple bound to a shared schema.
///
/// The value vector always has exactly `schema.arity()` entries and each
/// value conforms to its attribute's declared type (enforced at
/// construction and on every [`Tuple::set`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    schema: SchemaRef,
    values: Box<[Value]>,
}

impl Tuple {
    /// Build a tuple, validating arity and per-attribute types.
    pub fn new(schema: SchemaRef, values: impl Into<Vec<Value>>) -> Result<Tuple> {
        let values: Vec<Value> = values.into();
        if values.len() != schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: schema.arity(),
                actual: values.len(),
            });
        }
        for (id, v) in values.iter().enumerate() {
            let attr = &schema.attributes()[id];
            if !v.conforms_to(attr.data_type()) {
                return Err(RelationError::TypeMismatch {
                    attribute: attr.name().into(),
                    expected: attr.data_type().name(),
                    actual: format!("{v:?}"),
                });
            }
        }
        Ok(Tuple {
            schema,
            values: values.into_boxed_slice(),
        })
    }

    /// Build a tuple of string values (the common case for scenario data).
    pub fn of_strings(
        schema: SchemaRef,
        values: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> Result<Tuple> {
        let values: Vec<Value> = values.into_iter().map(|s| Value::str(s.as_ref())).collect();
        Tuple::new(schema, values)
    }

    /// Build a tuple with every cell null — the shape of a form before the
    /// user enters anything.
    pub fn all_null(schema: SchemaRef) -> Tuple {
        let values = vec![Value::Null; schema.arity()].into_boxed_slice();
        Tuple { schema, values }
    }

    /// The tuple's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of cells (= schema arity).
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at `id`. Panics if out of range; ids come from this
    /// tuple's schema.
    pub fn get(&self, id: AttrId) -> &Value {
        &self.values[id]
    }

    /// The value of the attribute named `name`.
    pub fn get_by_name(&self, name: &str) -> Result<&Value> {
        Ok(self.get(self.schema.require_attr(name)?))
    }

    /// Overwrite the cell at `id`, validating the type.
    pub fn set(&mut self, id: AttrId, value: Value) -> Result<()> {
        let attr = self
            .schema
            .attribute(id)
            .ok_or(RelationError::AttributeOutOfRange {
                id,
                arity: self.schema.arity(),
            })?;
        if !value.conforms_to(attr.data_type()) {
            return Err(RelationError::TypeMismatch {
                attribute: attr.name().into(),
                expected: attr.data_type().name(),
                actual: format!("{value:?}"),
            });
        }
        self.values[id] = value;
        Ok(())
    }

    /// Overwrite the cell of the attribute named `name`.
    pub fn set_by_name(&mut self, name: &str, value: Value) -> Result<()> {
        let id = self.schema.require_attr(name)?;
        self.set(id, value)
    }

    /// All values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Project the tuple onto `attrs`, cloning the selected values in the
    /// given order. Used to form index keys and rule-match keys.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|&a| self.values[a].clone()).collect()
    }

    /// True iff `self[attrs] = other[other_attrs]` position-wise under
    /// *matching* semantics (nulls never match). This is the cross-schema
    /// comparison at the heart of editing rules: `t[X] = s[Xm]`.
    pub fn matches_on(&self, attrs: &[AttrId], other: &Tuple, other_attrs: &[AttrId]) -> bool {
        debug_assert_eq!(attrs.len(), other_attrs.len());
        attrs
            .iter()
            .zip(other_attrs.iter())
            .all(|(&a, &b)| self.values[a].matches(&other.values[b]))
    }

    /// Count of cells where `self` and `other` (same schema) differ.
    pub fn diff_count(&self, other: &Tuple) -> usize {
        debug_assert_eq!(self.arity(), other.arity());
        self.values
            .iter()
            .zip(other.values.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Ids of cells where `self` and `other` (same schema) differ.
    pub fn diff_attrs(&self, other: &Tuple) -> Vec<AttrId> {
        self.values
            .iter()
            .zip(other.values.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}={}", self.schema.attr_name(i), v)?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Schema;

    fn schema() -> SchemaRef {
        Schema::new(
            "person",
            [
                ("name", DataType::String),
                ("age", DataType::Int),
                ("uk", DataType::Bool),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_arity() {
        let s = schema();
        let err = Tuple::new(s, vec![Value::str("Bob")]).unwrap_err();
        assert!(matches!(
            err,
            RelationError::ArityMismatch {
                expected: 3,
                actual: 1
            }
        ));
    }

    #[test]
    fn construction_validates_types() {
        let s = schema();
        let err = Tuple::new(
            s,
            vec![Value::str("Bob"), Value::str("young"), Value::bool(true)],
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn nulls_conform_anywhere() {
        let s = schema();
        let t = Tuple::new(s, vec![Value::Null, Value::Null, Value::Null]).unwrap();
        assert!(t.get(0).is_null());
    }

    #[test]
    fn get_set_round_trip() {
        let s = schema();
        let mut t = Tuple::new(
            s,
            vec![Value::str("Bob"), Value::int(30), Value::bool(true)],
        )
        .unwrap();
        assert_eq!(t.get_by_name("age").unwrap(), &Value::int(30));
        t.set_by_name("age", Value::int(31)).unwrap();
        assert_eq!(t.get(1), &Value::int(31));
        assert!(
            t.set(1, Value::str("x")).is_err(),
            "type still enforced on set"
        );
        assert!(t.set(99, Value::Null).is_err(), "range enforced on set");
    }

    #[test]
    fn projection_in_order() {
        let s = schema();
        let t = Tuple::new(
            s,
            vec![Value::str("Bob"), Value::int(30), Value::bool(true)],
        )
        .unwrap();
        assert_eq!(
            t.project(&[2, 0]),
            vec![Value::bool(true), Value::str("Bob")]
        );
    }

    #[test]
    fn matches_on_cross_schema() {
        let input = Schema::of_strings("in", ["zip", "city"]).unwrap();
        let master = Schema::of_strings("m", ["mzip", "mcity", "extra"]).unwrap();
        let t = Tuple::of_strings(input, ["EH8 4AH", "Edi"]).unwrap();
        let s = Tuple::of_strings(master, ["EH8 4AH", "Edi", "x"]).unwrap();
        assert!(t.matches_on(&[0], &s, &[0]));
        assert!(t.matches_on(&[0, 1], &s, &[0, 1]));
        assert!(!t.matches_on(&[1], &s, &[0]));
    }

    #[test]
    fn null_never_matches() {
        let sc = Schema::of_strings("r", ["a"]).unwrap();
        let t = Tuple::all_null(sc.clone());
        let s = Tuple::all_null(sc);
        assert!(!t.matches_on(&[0], &s, &[0]));
    }

    #[test]
    fn diff_counts() {
        let sc = Schema::of_strings("r", ["a", "b", "c"]).unwrap();
        let t1 = Tuple::of_strings(sc.clone(), ["1", "2", "3"]).unwrap();
        let t2 = Tuple::of_strings(sc, ["1", "x", "y"]).unwrap();
        assert_eq!(t1.diff_count(&t2), 2);
        assert_eq!(t1.diff_attrs(&t2), vec![1, 2]);
        assert_eq!(t1.diff_count(&t1.clone()), 0);
    }

    #[test]
    fn display_is_readable() {
        let s = schema();
        let t = Tuple::new(s, vec![Value::str("Bob"), Value::int(30), Value::Null]).unwrap();
        assert_eq!(t.to_string(), "(name=Bob, age=30, uk=∅)");
    }

    #[test]
    fn all_null_shape() {
        let t = Tuple::all_null(schema());
        assert_eq!(t.arity(), 3);
        assert!(t.values().iter().all(Value::is_null));
    }
}
