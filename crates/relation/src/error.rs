//! Error types for the relational substrate.

use std::fmt;

/// Errors raised by schema construction, tuple validation, indexing and I/O.
#[derive(Debug)]
pub enum RelationError {
    /// An attribute name was referenced that does not exist in the schema.
    UnknownAttribute {
        /// The missing attribute name.
        name: String,
        /// The schema in which it was looked up.
        schema: String,
    },
    /// An attribute id was out of range for the schema.
    AttributeOutOfRange {
        /// The offending index.
        id: usize,
        /// Number of attributes in the schema.
        arity: usize,
    },
    /// Two attributes with the same name were added to one schema.
    DuplicateAttribute {
        /// The duplicated name.
        name: String,
    },
    /// A tuple had the wrong number of values for its schema.
    ArityMismatch {
        /// Expected arity (schema width).
        expected: usize,
        /// Actual number of values supplied.
        actual: usize,
    },
    /// A value did not conform to the declared attribute type.
    TypeMismatch {
        /// Attribute the value was destined for.
        attribute: String,
        /// Declared type name.
        expected: &'static str,
        /// Actual value rendered for diagnostics.
        actual: String,
    },
    /// A tuple from a different schema was inserted into a relation.
    SchemaMismatch {
        /// Schema of the relation.
        expected: String,
        /// Schema of the tuple.
        actual: String,
    },
    /// A textual value could not be parsed as the declared type.
    ParseValue {
        /// Raw text that failed to parse.
        text: String,
        /// Target type name.
        target: &'static str,
    },
    /// CSV input was structurally malformed.
    Csv {
        /// 1-based line number, when known.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// An empty schema (zero attributes) was requested where not allowed.
    EmptySchema,
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownAttribute { name, schema } => {
                write!(f, "unknown attribute `{name}` in schema `{schema}`")
            }
            RelationError::AttributeOutOfRange { id, arity } => {
                write!(
                    f,
                    "attribute id {id} out of range for schema of arity {arity}"
                )
            }
            RelationError::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute `{name}` in schema")
            }
            RelationError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "tuple arity mismatch: schema expects {expected} values, got {actual}"
                )
            }
            RelationError::TypeMismatch {
                attribute,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "type mismatch for attribute `{attribute}`: expected {expected}, got {actual}"
                )
            }
            RelationError::SchemaMismatch { expected, actual } => {
                write!(
                    f,
                    "schema mismatch: relation has `{expected}`, tuple has `{actual}`"
                )
            }
            RelationError::ParseValue { text, target } => {
                write!(f, "cannot parse `{text}` as {target}")
            }
            RelationError::Csv { line, message } => {
                write!(f, "csv error at line {line}: {message}")
            }
            RelationError::Io(e) => write!(f, "io error: {e}"),
            RelationError::EmptySchema => write!(f, "schema must have at least one attribute"),
        }
    }
}

impl std::error::Error for RelationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelationError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RelationError {
    fn from(e: std::io::Error) -> Self {
        RelationError::Io(e)
    }
}

/// Convenient result alias for the relational substrate.
pub type Result<T> = std::result::Result<T, RelationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_attribute() {
        let e = RelationError::UnknownAttribute {
            name: "zip".into(),
            schema: "master".into(),
        };
        assert_eq!(e.to_string(), "unknown attribute `zip` in schema `master`");
    }

    #[test]
    fn display_arity_mismatch() {
        let e = RelationError::ArityMismatch {
            expected: 9,
            actual: 7,
        };
        assert!(e.to_string().contains("expects 9"));
        assert!(e.to_string().contains("got 7"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = RelationError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn display_parse_value() {
        let e = RelationError::ParseValue {
            text: "abc".into(),
            target: "int",
        };
        assert_eq!(e.to_string(), "cannot parse `abc` as int");
    }
}
