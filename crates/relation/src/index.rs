//! Multi-attribute hash indexes over relations.
//!
//! The master data manager builds one index per distinct editing-rule LHS
//! (`Xm` attribute list) so that the correcting process answers
//! "which master tuples have `s[Xm] = t[X]`?" in O(1) expected time instead
//! of scanning `Dm`. Experiment `T6` ablates exactly this structure.

use crate::relation::{Relation, RowId};
use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A hash index on a fixed attribute list of one relation.
///
/// Keys containing nulls are *not* indexed: a null master cell can never be
/// matched by rule semantics (nulls match nothing), so omitting them keeps
/// lookups and rule semantics aligned.
#[derive(Debug, Clone)]
pub struct HashIndex {
    attrs: Vec<AttrId>,
    map: HashMap<Box<[Value]>, Vec<RowId>>,
}

impl HashIndex {
    /// Build an index over `attrs` for every current row of `relation`.
    pub fn build(relation: &Relation, attrs: impl Into<Vec<AttrId>>) -> HashIndex {
        let attrs: Vec<AttrId> = attrs.into();
        let mut map: HashMap<Box<[Value]>, Vec<RowId>> = HashMap::new();
        for (row_id, tuple) in relation.iter() {
            let key = tuple.project(&attrs);
            if key.iter().any(Value::is_null) {
                continue;
            }
            map.entry(key.into_boxed_slice()).or_default().push(row_id);
        }
        HashIndex { attrs, map }
    }

    /// The indexed attribute list (in key order).
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Row ids whose projection equals `key`, in insertion order. Keys with
    /// nulls return the empty slice (consistent with match semantics).
    pub fn lookup(&self, key: &[Value]) -> &[RowId] {
        if key.iter().any(Value::is_null) {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Convenience: look up using the projection of `tuple` onto
    /// `probe_attrs` (attribute ids in the *probing* tuple's schema).
    pub fn lookup_tuple(&self, tuple: &Tuple, probe_attrs: &[AttrId]) -> &[RowId] {
        debug_assert_eq!(probe_attrs.len(), self.attrs.len());
        let key = tuple.project(probe_attrs);
        self.lookup(&key)
    }

    /// Register one additional row (used when master data grows).
    pub fn insert_row(&mut self, row_id: RowId, tuple: &Tuple) {
        let key = tuple.project(&self.attrs);
        if key.iter().any(Value::is_null) {
            return;
        }
        self.map
            .entry(key.into_boxed_slice())
            .or_default()
            .push(row_id);
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total number of postings.
    pub fn postings(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn master() -> Relation {
        let schema = Schema::of_strings("m", ["zip", "AC", "city"]).unwrap();
        let rows = [
            ("EH8 4AH", "131", "Edi"),
            ("SW1A 1AA", "020", "Ldn"),
            ("EH8 4AH", "131", "Edi"), // duplicate key
        ];
        Relation::from_tuples(
            schema.clone(),
            rows.iter()
                .map(|(z, a, c)| Tuple::of_strings(schema.clone(), [*z, *a, *c]).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn single_attr_lookup() {
        let rel = master();
        let idx = HashIndex::build(&rel, vec![0]);
        assert_eq!(idx.lookup(&[Value::str("EH8 4AH")]), &[0, 2]);
        assert_eq!(idx.lookup(&[Value::str("SW1A 1AA")]), &[1]);
        assert!(idx.lookup(&[Value::str("nowhere")]).is_empty());
    }

    #[test]
    fn multi_attr_lookup() {
        let rel = master();
        let idx = HashIndex::build(&rel, vec![1, 0]); // (AC, zip)
        assert_eq!(
            idx.lookup(&[Value::str("131"), Value::str("EH8 4AH")]),
            &[0, 2]
        );
        assert!(idx
            .lookup(&[Value::str("131"), Value::str("SW1A 1AA")])
            .is_empty());
        assert_eq!(idx.attrs(), &[1, 0]);
    }

    #[test]
    fn null_keys_not_indexed_and_not_matched() {
        let schema = Schema::of_strings("m", ["zip"]).unwrap();
        let mut rel = Relation::empty(schema.clone());
        rel.push(Tuple::all_null(schema.clone())).unwrap();
        rel.push(Tuple::of_strings(schema, ["EH8"]).unwrap())
            .unwrap();
        let idx = HashIndex::build(&rel, vec![0]);
        assert_eq!(idx.distinct_keys(), 1);
        assert!(idx.lookup(&[Value::Null]).is_empty());
    }

    #[test]
    fn lookup_tuple_cross_schema() {
        let rel = master();
        let idx = HashIndex::build(&rel, vec![0]); // master zip
        let input = Schema::of_strings("t", ["name", "postcode"]).unwrap();
        let t = Tuple::of_strings(input, ["Bob", "EH8 4AH"]).unwrap();
        assert_eq!(idx.lookup_tuple(&t, &[1]), &[0, 2]);
    }

    #[test]
    fn insert_row_extends_index() {
        let rel = master();
        let mut idx = HashIndex::build(&rel, vec![0]);
        let schema = rel.schema().clone();
        let t = Tuple::of_strings(schema, ["G12 8QQ", "141", "Gla"]).unwrap();
        idx.insert_row(3, &t);
        assert_eq!(idx.lookup(&[Value::str("G12 8QQ")]), &[3]);
        assert_eq!(idx.postings(), 4);
    }

    #[test]
    fn stats() {
        let rel = master();
        let idx = HashIndex::build(&rel, vec![0]);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.postings(), 3);
    }
}
