//! Relation schemas: named, typed attribute lists with O(1) name lookup.

use crate::datatype::DataType;
use crate::error::{RelationError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within its schema. Attribute ids are dense
/// (0..arity) and stable for the lifetime of the schema, so rule structures
/// store `AttrId` rather than names on hot paths.
pub type AttrId = usize;

/// One attribute: a name and a declared type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    dtype: DataType,
}

impl Attribute {
    /// Create an attribute.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Attribute {
        Attribute {
            name: name.into(),
            dtype,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's declared type.
    pub fn data_type(&self) -> DataType {
        self.dtype
    }
}

/// An immutable relation schema.
///
/// Schemas are shared via [`SchemaRef`] (`Arc<Schema>`): every tuple holds a
/// reference to its schema, and input/master schemas differ in CerFix (the
/// paper's running example has a 9-attribute input schema and a 10-attribute
/// master schema), so identity comparisons between schemas matter and are
/// exposed via [`Schema::same_as`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    attrs: Vec<Attribute>,
    #[serde(skip)]
    by_name: HashMap<String, AttrId>,
}

/// Shared handle to a schema.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// Errors on duplicate attribute names or an empty attribute list.
    pub fn new(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = (impl Into<String>, DataType)>,
    ) -> Result<SchemaRef> {
        let name = name.into();
        let attrs: Vec<Attribute> = attrs
            .into_iter()
            .map(|(n, t)| Attribute::new(n.into(), t))
            .collect();
        if attrs.is_empty() {
            return Err(RelationError::EmptySchema);
        }
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (id, attr) in attrs.iter().enumerate() {
            if by_name.insert(attr.name.clone(), id).is_some() {
                return Err(RelationError::DuplicateAttribute {
                    name: attr.name.clone(),
                });
            }
        }
        Ok(Arc::new(Schema {
            name,
            attrs,
            by_name,
        }))
    }

    /// Build a schema where every attribute has type [`DataType::String`].
    /// Master data in the paper is predominantly textual; this is the common
    /// constructor for scenario schemas.
    pub fn of_strings(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<SchemaRef> {
        Schema::new(name, attrs.into_iter().map(|a| (a, DataType::String)))
    }

    /// The schema's name (e.g. `"customer"` or `"master"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The attribute at `id`, if in range.
    pub fn attribute(&self, id: AttrId) -> Option<&Attribute> {
        self.attrs.get(id)
    }

    /// The id of the attribute named `name`.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Like [`Schema::attr_id`] but returns a descriptive error.
    pub fn require_attr(&self, name: &str) -> Result<AttrId> {
        self.attr_id(name)
            .ok_or_else(|| RelationError::UnknownAttribute {
                name: name.into(),
                schema: self.name.clone(),
            })
    }

    /// Resolve a list of attribute names to ids, failing on the first
    /// unknown name.
    pub fn resolve_all(&self, names: &[&str]) -> Result<Vec<AttrId>> {
        names.iter().map(|n| self.require_attr(n)).collect()
    }

    /// Name of the attribute at `id` (panics if out of range — ids are only
    /// produced by this schema's lookups).
    pub fn attr_name(&self, id: AttrId) -> &str {
        self.attrs[id].name()
    }

    /// Iterator over `(AttrId, &Attribute)`.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs.iter().enumerate()
    }

    /// All attribute ids, `0..arity`.
    pub fn all_attr_ids(&self) -> impl Iterator<Item = AttrId> + 'static {
        0..self.arity()
    }

    /// True iff `self` and `other` are the same schema object (pointer
    /// identity on the shared allocation).
    pub fn same_as(self: &Arc<Self>, other: &Arc<Self>) -> bool {
        Arc::ptr_eq(self, other)
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Schema) -> bool {
        self.name == other.name && self.attrs == other.attrs
    }
}

impl Eq for Schema {}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", a.name(), a.data_type())?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer() -> SchemaRef {
        Schema::of_strings(
            "customer",
            [
                "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = customer();
        assert_eq!(s.arity(), 9);
        assert_eq!(s.attr_id("zip"), Some(7));
        assert_eq!(s.attr_name(7), "zip");
        assert_eq!(s.attr_id("ZIP"), None, "names are case-sensitive");
        assert!(s.attribute(9).is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::of_strings("r", ["a", "b", "a"]).unwrap_err();
        assert!(matches!(err, RelationError::DuplicateAttribute { .. }));
    }

    #[test]
    fn empty_schema_rejected() {
        let err = Schema::of_strings("r", Vec::<String>::new()).unwrap_err();
        assert!(matches!(err, RelationError::EmptySchema));
    }

    #[test]
    fn require_attr_error_mentions_schema() {
        let s = customer();
        let err = s.require_attr("DoB").unwrap_err();
        assert!(err.to_string().contains("customer"));
    }

    #[test]
    fn resolve_all_preserves_order() {
        let s = customer();
        let ids = s.resolve_all(&["zip", "AC", "city"]).unwrap();
        assert_eq!(ids, vec![7, 2, 6]);
        assert!(s.resolve_all(&["zip", "nope"]).is_err());
    }

    #[test]
    fn typed_schema() {
        let s = Schema::new(
            "person",
            [
                ("name", DataType::String),
                ("age", DataType::Int),
                ("height", DataType::Float),
            ],
        )
        .unwrap();
        assert_eq!(s.attribute(1).unwrap().data_type(), DataType::Int);
        assert_eq!(
            s.to_string(),
            "person(name: string, age: int, height: float)"
        );
    }

    #[test]
    fn same_as_is_pointer_identity() {
        let a = customer();
        let b = customer();
        assert!(a.same_as(&a.clone()));
        assert!(
            !a.same_as(&b),
            "structurally equal but distinct allocations"
        );
        assert_eq!(*a, *b, "structural equality still holds");
    }

    #[test]
    fn iter_yields_all() {
        let s = customer();
        let names: Vec<&str> = s.iter().map(|(_, a)| a.name()).collect();
        assert_eq!(names[0], "FN");
        assert_eq!(names.len(), 9);
        assert_eq!(s.all_attr_ids().count(), 9);
    }
}
