//! In-memory relations: ordered collections of same-schema tuples.

use crate::error::{RelationError, Result};
use crate::predicate::Predicate;
use crate::schema::SchemaRef;
use crate::tuple::Tuple;
use std::fmt;

/// Identifier of a row within a relation. Rows are append-only, so `RowId`s
/// are stable; audit records and index postings refer to rows by id.
pub type RowId = usize;

/// An in-memory relation (row store).
///
/// This substrate replaces the JDBC-connected DBMS of the demo system. The
/// data monitor only needs append, point access by [`RowId`], scans and
/// (via [`HashIndex`](crate::index::HashIndex)) equality lookups, so the
/// representation is a plain vector of tuples.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: SchemaRef,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation over `schema`.
    pub fn empty(schema: SchemaRef) -> Relation {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Create a relation from tuples, validating every tuple's schema.
    pub fn from_tuples(
        schema: SchemaRef,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Relation> {
        let mut rel = Relation::empty(schema);
        for t in tuples {
            rel.push(t)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a tuple, returning its new [`RowId`]. The tuple must be bound
    /// to the *same* schema object as the relation.
    pub fn push(&mut self, tuple: Tuple) -> Result<RowId> {
        if !self.schema.same_as(tuple.schema()) {
            return Err(RelationError::SchemaMismatch {
                expected: self.schema.name().into(),
                actual: tuple.schema().name().into(),
            });
        }
        let id = self.rows.len();
        self.rows.push(tuple);
        Ok(id)
    }

    /// The row at `id`, if present.
    pub fn row(&self, id: RowId) -> Option<&Tuple> {
        self.rows.get(id)
    }

    /// Mutable access to the row at `id`, if present.
    pub fn row_mut(&mut self, id: RowId) -> Option<&mut Tuple> {
        self.rows.get_mut(id)
    }

    /// Iterator over `(RowId, &Tuple)`.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Tuple)> {
        self.rows.iter().enumerate()
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Full scan returning the ids of rows satisfying every predicate.
    pub fn scan(&self, predicates: &[Predicate]) -> Vec<RowId> {
        self.iter()
            .filter(|(_, t)| predicates.iter().all(|p| p.eval(t)))
            .map(|(id, _)| id)
            .collect()
    }

    /// Reserve capacity for `additional` more rows (bulk loads).
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} rows]", self.schema, self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};
    use crate::schema::Schema;
    use crate::value::Value;

    fn sample() -> Relation {
        let schema = Schema::of_strings("city_codes", ["AC", "city"]).unwrap();
        let rows = [("020", "Ldn"), ("131", "Edi"), ("161", "Mcr")];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|(ac, c)| Tuple::of_strings(schema.clone(), [*ac, *c]).unwrap())
            .collect();
        Relation::from_tuples(schema, tuples).unwrap()
    }

    #[test]
    fn push_and_access() {
        let rel = sample();
        assert_eq!(rel.len(), 3);
        assert!(!rel.is_empty());
        assert_eq!(
            rel.row(1).unwrap().get_by_name("city").unwrap(),
            &Value::str("Edi")
        );
        assert!(rel.row(3).is_none());
    }

    #[test]
    fn rejects_foreign_schema() {
        let mut rel = sample();
        let other = Schema::of_strings("city_codes", ["AC", "city"]).unwrap();
        let t = Tuple::of_strings(other, ["0131", "Edi"]).unwrap();
        // Structurally identical but a different schema object: rejected, so
        // AttrIds can never dangle across relations.
        assert!(matches!(
            rel.push(t),
            Err(RelationError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn scan_with_predicates() {
        let rel = sample();
        let ac = rel.schema().attr_id("AC").unwrap();
        let hits = rel.scan(&[Predicate::new(ac, CompareOp::Eq, Value::str("131"))]);
        assert_eq!(hits, vec![1]);
        let all = rel.scan(&[]);
        assert_eq!(all, vec![0, 1, 2]);
        let none = rel.scan(&[Predicate::new(ac, CompareOp::Eq, Value::str("999"))]);
        assert!(none.is_empty());
    }

    #[test]
    fn row_ids_stable_across_pushes() {
        let mut rel = sample();
        let schema = rel.schema().clone();
        let id = rel
            .push(Tuple::of_strings(schema, ["0141", "Gla"]).unwrap())
            .unwrap();
        assert_eq!(id, 3);
        assert_eq!(
            rel.row(0).unwrap().get_by_name("AC").unwrap(),
            &Value::str("020")
        );
    }

    #[test]
    fn row_mut_allows_in_place_fix() {
        let mut rel = sample();
        rel.row_mut(0)
            .unwrap()
            .set_by_name("city", Value::str("London"))
            .unwrap();
        assert_eq!(
            rel.row(0).unwrap().get_by_name("city").unwrap(),
            &Value::str("London")
        );
    }

    #[test]
    fn display_mentions_row_count() {
        let rel = sample();
        assert!(rel.to_string().contains("3 rows"));
    }
}
