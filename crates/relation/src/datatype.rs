//! Attribute data types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of an attribute in a [`Schema`](crate::Schema).
///
/// CerFix operates over business-entity data (names, phone numbers, zip
/// codes, ages); four scalar types cover every schema in the paper and the
/// derived workloads. Values of every type may additionally be null (missing)
/// — nullness is a property of [`Value`](crate::Value), not of the type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// UTF-8 text. The dominant type in master data.
    String,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float, compared by total order.
    Float,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Stable lowercase name used in schema serialization and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            DataType::String => "string",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Bool => "bool",
        }
    }

    /// Parse a type name as produced by [`DataType::name`].
    pub fn parse(text: &str) -> Option<DataType> {
        match text {
            "string" | "str" | "text" => Some(DataType::String),
            "int" | "integer" | "i64" => Some(DataType::Int),
            "float" | "double" | "f64" => Some(DataType::Float),
            "bool" | "boolean" => Some(DataType::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for dt in [
            DataType::String,
            DataType::Int,
            DataType::Float,
            DataType::Bool,
        ] {
            assert_eq!(DataType::parse(dt.name()), Some(dt));
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(DataType::parse("text"), Some(DataType::String));
        assert_eq!(DataType::parse("integer"), Some(DataType::Int));
        assert_eq!(DataType::parse("double"), Some(DataType::Float));
        assert_eq!(DataType::parse("boolean"), Some(DataType::Bool));
        assert_eq!(DataType::parse("blob"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DataType::Int.to_string(), "int");
    }
}
