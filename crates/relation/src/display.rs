//! ASCII table rendering for relations and tuples.
//!
//! The demo system's Web interface (Figs. 2–4) displays master data, input
//! tuples and audit summaries as tables; the examples and experiment
//! binaries render the same views textually with this module.

use crate::relation::Relation;
use crate::schema::SchemaRef;
use crate::tuple::Tuple;

/// Render a full relation as an ASCII table (header + separator + rows).
pub fn render_relation(relation: &Relation) -> String {
    let header: Vec<String> = relation
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let rows: Vec<Vec<String>> = relation
        .iter()
        .map(|(_, t)| t.values().iter().map(|v| v.to_string()).collect())
        .collect();
    render_table(&header, &rows)
}

/// Render at most `limit` rows of a relation, with an ellipsis line when
/// truncated.
pub fn render_relation_head(relation: &Relation, limit: usize) -> String {
    let header: Vec<String> = relation
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let mut rows: Vec<Vec<String>> = relation
        .iter()
        .take(limit)
        .map(|(_, t)| t.values().iter().map(|v| v.to_string()).collect())
        .collect();
    let truncated = relation.len() > limit;
    if truncated {
        rows.push(vec!["…".to_string(); header.len()]);
    }
    render_table(&header, &rows)
}

/// Render a set of same-schema tuples as a table.
pub fn render_tuples(schema: &SchemaRef, tuples: &[&Tuple]) -> String {
    let header: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let rows: Vec<Vec<String>> = tuples
        .iter()
        .map(|t| t.values().iter().map(|v| v.to_string()).collect())
        .collect();
    render_table(&header, &rows)
}

/// Render an arbitrary header + row matrix as an aligned ASCII table.
///
/// Column widths are computed over header and body; cells are left-aligned
/// and padded with spaces; the separator uses `-` under each column.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| display_width(h)).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(display_width(cell));
        }
    }
    let mut out = String::new();
    push_row(&mut out, header, &widths);
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    push_row(&mut out, &sep, &widths);
    for row in rows {
        push_row(&mut out, row, &widths);
    }
    out
}

fn push_row(out: &mut String, cells: &[String], widths: &[usize]) {
    for (i, w) in widths.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        let cell = cells.get(i).map(String::as_str).unwrap_or("");
        out.push_str(cell);
        let pad = w.saturating_sub(display_width(cell));
        out.extend(std::iter::repeat_n(' ', pad));
    }
    // Trim trailing spaces for clean diffs.
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

/// Character count as a display-width proxy (monospace assumption; the
/// null marker `∅` and generated data are effectively single-width).
fn display_width(s: &str) -> usize {
    s.chars().count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn renders_aligned_table() {
        let schema = Schema::of_strings("m", ["AC", "city"]).unwrap();
        let rel = Relation::from_tuples(
            schema.clone(),
            [
                Tuple::of_strings(schema.clone(), ["020", "Ldn"]).unwrap(),
                Tuple::of_strings(schema.clone(), ["131", "Edinburgh"]).unwrap(),
            ],
        )
        .unwrap();
        let out = render_relation(&rel);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "AC   city");
        assert_eq!(lines[1], "---  ---------");
        assert_eq!(lines[2], "020  Ldn");
        assert_eq!(lines[3], "131  Edinburgh");
    }

    #[test]
    fn head_truncates_with_ellipsis() {
        let schema = Schema::of_strings("m", ["a"]).unwrap();
        let rel = Relation::from_tuples(
            schema.clone(),
            (0..5).map(|i| Tuple::of_strings(schema.clone(), [format!("{i}")]).unwrap()),
        )
        .unwrap();
        let out = render_relation_head(&rel, 2);
        assert!(out.contains('…'));
        assert_eq!(out.lines().count(), 2 + 2 + 1); // header, sep, 2 rows, ellipsis
        let full = render_relation_head(&rel, 10);
        assert!(!full.contains('…'));
    }

    #[test]
    fn render_tuples_subset() {
        let schema = Schema::of_strings("m", ["x", "y"]).unwrap();
        let t1 = Tuple::of_strings(schema.clone(), ["1", "2"]).unwrap();
        let out = render_tuples(&schema, &[&t1]);
        assert!(out.starts_with("x  y\n"));
        assert!(out.contains("1  2"));
    }

    #[test]
    fn handles_ragged_rows_defensively() {
        let out = render_table(
            &["a".to_string(), "b".to_string()],
            &[vec!["1".to_string()]], // short row
        );
        assert!(out.lines().count() == 3);
    }

    #[test]
    fn null_cells_render_as_marker() {
        let schema = Schema::of_strings("m", ["a"]).unwrap();
        let rel = Relation::from_tuples(schema.clone(), [Tuple::all_null(schema.clone())]).unwrap();
        assert!(render_relation(&rel).contains('∅'));
    }
}
