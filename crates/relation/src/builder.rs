//! Fluent builders for schemas and relations.
//!
//! Scenario code constructs many small schemas and literal relations (the
//! paper's master/customer examples, test fixtures); the builders keep that
//! construction readable while funnelling through the same validation as
//! the core constructors.

use crate::datatype::DataType;
use crate::error::Result;
use crate::relation::Relation;
use crate::schema::{Schema, SchemaRef};
use crate::tuple::Tuple;
use crate::value::Value;

/// Incremental schema construction.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    name: String,
    attrs: Vec<(String, DataType)>,
}

impl SchemaBuilder {
    /// Start a schema named `name`.
    pub fn new(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// Add an attribute with an explicit type.
    pub fn attr(mut self, name: impl Into<String>, dtype: DataType) -> SchemaBuilder {
        self.attrs.push((name.into(), dtype));
        self
    }

    /// Add a string attribute (the dominant case).
    pub fn string(self, name: impl Into<String>) -> SchemaBuilder {
        self.attr(name, DataType::String)
    }

    /// Add an integer attribute.
    pub fn int(self, name: impl Into<String>) -> SchemaBuilder {
        self.attr(name, DataType::Int)
    }

    /// Add several string attributes at once.
    pub fn strings(mut self, names: impl IntoIterator<Item = impl Into<String>>) -> SchemaBuilder {
        for n in names {
            self.attrs.push((n.into(), DataType::String));
        }
        self
    }

    /// Finalize into a shared schema.
    pub fn build(self) -> Result<SchemaRef> {
        Schema::new(self.name, self.attrs)
    }
}

/// Incremental relation construction with row-literal ergonomics.
#[derive(Debug)]
pub struct RelationBuilder {
    schema: SchemaRef,
    relation: Relation,
    error: Option<crate::RelationError>,
}

impl RelationBuilder {
    /// Start building a relation over `schema`.
    pub fn new(schema: SchemaRef) -> RelationBuilder {
        RelationBuilder {
            relation: Relation::empty(schema.clone()),
            schema,
            error: None,
        }
    }

    /// Append a row of [`Value`]s. Errors are deferred to [`build`].
    ///
    /// [`build`]: RelationBuilder::build
    pub fn row(mut self, values: impl Into<Vec<Value>>) -> RelationBuilder {
        if self.error.is_some() {
            return self;
        }
        match Tuple::new(self.schema.clone(), values).and_then(|t| self.relation.push(t)) {
            Ok(_) => {}
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Append a row of string cells.
    pub fn row_strs(
        mut self,
        values: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> RelationBuilder {
        if self.error.is_some() {
            return self;
        }
        match Tuple::of_strings(self.schema.clone(), values).and_then(|t| self.relation.push(t)) {
            Ok(_) => {}
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Finish, surfacing the first deferred error if any row was invalid.
    pub fn build(self) -> Result<Relation> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.relation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_builder_mixed_types() {
        let s = SchemaBuilder::new("person")
            .string("name")
            .int("age")
            .attr("height", DataType::Float)
            .build()
            .unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attribute(1).unwrap().data_type(), DataType::Int);
    }

    #[test]
    fn schema_builder_strings_bulk() {
        let s = SchemaBuilder::new("m")
            .strings(["a", "b"])
            .string("c")
            .build()
            .unwrap();
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn schema_builder_detects_duplicates_at_build() {
        assert!(SchemaBuilder::new("m")
            .string("a")
            .string("a")
            .build()
            .is_err());
    }

    #[test]
    fn relation_builder_rows() {
        let s = SchemaBuilder::new("m")
            .string("AC")
            .string("city")
            .build()
            .unwrap();
        let rel = RelationBuilder::new(s)
            .row_strs(["020", "Ldn"])
            .row(vec![Value::str("131"), Value::str("Edi")])
            .build()
            .unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn relation_builder_defers_errors() {
        let s = SchemaBuilder::new("m").string("a").build().unwrap();
        let res = RelationBuilder::new(s)
            .row_strs(["ok"])
            .row_strs(["too", "many"]) // arity error here
            .row_strs(["fine"]) // skipped after error
            .build();
        assert!(res.is_err());
    }
}
