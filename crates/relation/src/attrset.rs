//! Compact attribute-id sets for the hot engine paths.
//!
//! The correcting process tests and grows a validated-attribute set on
//! every rule attempt; the tree allocations and pointer chases of a
//! `BTreeSet<AttrId>` dominate once lookups themselves are O(1). An
//! [`AttrSet`] stores attribute ids as a bitset: schemas up to 64
//! attributes (every scenario in this repository) live in a single
//! inline `u64` — membership is one mask, insertion one `or`, subset one
//! `and` — with a heap `Vec<u64>` fallback for wider schemas.

use crate::schema::AttrId;
use std::collections::BTreeSet;
use std::fmt;

/// Bits per inline word; attribute ids `>= 64` promote to the heap repr.
const INLINE_BITS: usize = 64;

#[derive(Clone)]
enum Repr {
    /// Attribute ids 0..64 as bits of one word.
    Inline(u64),
    /// Wide schemas: bit `a` lives in `words[a / 64]`. Invariant: never
    /// shorter than 2 words, so `Inline` and `Heap` never alias a value.
    Heap(Vec<u64>),
}

/// A set of input-schema attribute ids, represented as a bitset.
///
/// Replaces `BTreeSet<AttrId>` throughout the rule engine (fixpoint,
/// rule application, monitor sessions, region certification). Iteration
/// order is ascending, matching the `BTreeSet` it replaced.
#[derive(Clone, Default)]
pub struct AttrSet {
    repr: Repr,
}

// Equality, ordering and hashing are on the *members*, not the
// representation: a set that promoted to the heap and then removed its
// high bits equals the inline set with the same members.
impl PartialEq for AttrSet {
    fn eq(&self, other: &AttrSet) -> bool {
        self.trimmed_words() == other.trimmed_words()
    }
}

impl Eq for AttrSet {}

impl std::hash::Hash for AttrSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.trimmed_words().hash(state);
    }
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Inline(0)
    }
}

impl AttrSet {
    /// The empty set.
    pub fn new() -> AttrSet {
        AttrSet::default()
    }

    /// Insert `attr`; returns `true` iff it was newly added.
    pub fn insert(&mut self, attr: AttrId) -> bool {
        let (word, bit) = (attr / INLINE_BITS, attr % INLINE_BITS);
        match &mut self.repr {
            Repr::Inline(w) if word == 0 => {
                let fresh = *w & (1 << bit) == 0;
                *w |= 1 << bit;
                fresh
            }
            Repr::Inline(w) => {
                let mut words = vec![0u64; word + 1];
                words[0] = *w;
                words[word] |= 1 << bit;
                self.repr = Repr::Heap(words);
                true
            }
            Repr::Heap(words) => {
                if words.len() <= word {
                    words.resize(word + 1, 0);
                }
                let fresh = words[word] & (1 << bit) == 0;
                words[word] |= 1 << bit;
                fresh
            }
        }
    }

    /// Remove `attr`; returns `true` iff it was present.
    pub fn remove(&mut self, attr: AttrId) -> bool {
        let (word, bit) = (attr / INLINE_BITS, attr % INLINE_BITS);
        match &mut self.repr {
            Repr::Inline(w) => {
                if word != 0 {
                    return false;
                }
                let present = *w & (1 << bit) != 0;
                *w &= !(1 << bit);
                present
            }
            Repr::Heap(words) => {
                let Some(w) = words.get_mut(word) else {
                    return false;
                };
                let present = *w & (1 << bit) != 0;
                *w &= !(1 << bit);
                present
            }
        }
    }

    /// True iff `attr` is in the set.
    #[inline]
    pub fn contains(&self, attr: AttrId) -> bool {
        let (word, bit) = (attr / INLINE_BITS, attr % INLINE_BITS);
        match &self.repr {
            Repr::Inline(w) => word == 0 && *w & (1 << bit) != 0,
            Repr::Heap(words) => words.get(word).is_some_and(|w| w & (1 << bit) != 0),
        }
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline(w) => w.count_ones() as usize,
            Repr::Heap(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Inline(w) => *w == 0,
            Repr::Heap(words) => words.iter().all(|&w| w == 0),
        }
    }

    /// Remove every attribute (keeps any heap capacity).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline(w) => *w = 0,
            Repr::Heap(words) => words.iter_mut().for_each(|w| *w = 0),
        }
    }

    /// True iff every attribute of `self` is in `other`.
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        let (a, b) = (self.words(), other.words());
        a.iter()
            .enumerate()
            .all(|(i, &w)| w & !b.get(i).copied().unwrap_or(0) == 0)
    }

    /// Smallest attribute `>= from` in the set, if any. The delta
    /// engine's forward sweep over pending rules is built on this.
    pub fn next_at_or_after(&self, from: AttrId) -> Option<AttrId> {
        let words = self.words();
        let (mut word, bit) = (from / INLINE_BITS, from % INLINE_BITS);
        if word >= words.len() {
            return None;
        }
        let mut w = words[word] & (!0u64).wrapping_shl(bit as u32);
        loop {
            if w != 0 {
                return Some(word * INLINE_BITS + w.trailing_zeros() as usize);
            }
            word += 1;
            if word >= words.len() {
                return None;
            }
            w = words[word];
        }
    }

    /// Iterate the attributes in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: self.words(),
            word: 0,
            current: self.words().first().copied().unwrap_or(0),
        }
    }

    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => std::slice::from_ref(w),
            Repr::Heap(words) => words,
        }
    }

    /// Words with trailing zero words dropped (canonical form for
    /// equality and hashing).
    fn trimmed_words(&self) -> &[u64] {
        let words = self.words();
        let last = words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        &words[..last]
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending iterator over an [`AttrSet`].
pub struct Iter<'a> {
    words: &'a [u64],
    word: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = AttrId;

    fn next(&mut self) -> Option<AttrId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word * INLINE_BITS + bit);
            }
            self.word += 1;
            self.current = *self.words.get(self.word)?;
        }
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = AttrId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> AttrSet {
        let mut set = AttrSet::new();
        set.extend(iter);
        set
    }
}

impl Extend<AttrId> for AttrSet {
    fn extend<I: IntoIterator<Item = AttrId>>(&mut self, iter: I) {
        for attr in iter {
            self.insert(attr);
        }
    }
}

impl<const N: usize> From<[AttrId; N]> for AttrSet {
    fn from(attrs: [AttrId; N]) -> AttrSet {
        attrs.into_iter().collect()
    }
}

impl From<&BTreeSet<AttrId>> for AttrSet {
    fn from(set: &BTreeSet<AttrId>) -> AttrSet {
        set.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_inline() {
        let mut s = AttrSet::new();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3), "double insert reports not-new");
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.contains(3) && s.contains(0) && s.contains(63));
        assert!(!s.contains(1) && !s.contains(64));
        assert_eq!(s.len(), 3);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn wide_schemas_promote_to_heap() {
        let mut s = AttrSet::new();
        s.insert(5);
        s.insert(64); // promotion
        s.insert(200);
        assert!(s.contains(5) && s.contains(64) && s.contains(200));
        assert!(!s.contains(63) && !s.contains(199));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 64, 200]);
        assert!(s.remove(64));
        assert!(!s.remove(400), "out-of-range remove is a no-op");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_ascending() {
        let s: AttrSet = [9, 1, 5, 2].into();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 5, 9]);
        let empty = AttrSet::new();
        assert_eq!(empty.iter().count(), 0);
    }

    #[test]
    fn subset_across_reprs() {
        let small: AttrSet = [1, 2].into();
        let big: AttrSet = [1, 2, 3].into();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(AttrSet::new().is_subset(&small));
        let wide: AttrSet = [1, 2, 100].into();
        assert!(small.is_subset(&wide));
        assert!(!wide.is_subset(&big), "heap vs inline subset");
        let wide2: AttrSet = [1, 2, 100, 7].into();
        assert!(wide.is_subset(&wide2));
    }

    #[test]
    fn equality_ignores_representation_width() {
        let a: AttrSet = [0, 7].into();
        let b: AttrSet = [7, 0].into();
        assert_eq!(a, b);
        // A set that promoted to the heap and shrank back equals the
        // inline set with the same members (and hashes identically).
        let mut promoted: AttrSet = [0, 7, 100].into();
        promoted.remove(100);
        assert_eq!(promoted, a);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: &AttrSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&promoted), hash(&a));
    }

    #[test]
    fn next_at_or_after_sweeps() {
        let s: AttrSet = [2, 5, 70].into();
        assert_eq!(s.next_at_or_after(0), Some(2));
        assert_eq!(s.next_at_or_after(2), Some(2));
        assert_eq!(s.next_at_or_after(3), Some(5));
        assert_eq!(s.next_at_or_after(6), Some(70));
        assert_eq!(s.next_at_or_after(71), None);
        assert_eq!(AttrSet::new().next_at_or_after(0), None);
    }

    #[test]
    fn conversions() {
        let bt: BTreeSet<AttrId> = [4, 8].into();
        let s = AttrSet::from(&bt);
        assert_eq!(s.iter().collect::<BTreeSet<_>>(), bt);
        let mut s2 = AttrSet::new();
        s2.extend([1, 4]);
        assert_eq!(s2.len(), 2);
        assert_eq!(format!("{s:?}"), "{4, 8}");
    }
}
