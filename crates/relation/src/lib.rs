//! # cerfix-relation — relational substrate for the CerFix reproduction
//!
//! An in-memory relational layer purpose-built for the CerFix system
//! (Fan et al., *CerFix: A System for Cleaning Data with Certain Fixes*,
//! PVLDB 4(12), 2011): typed values, schemas, tuples, row-store relations,
//! multi-attribute hash indexes, scan predicates, CSV I/O and table
//! rendering.
//!
//! The demo system connects to a DBMS over JDBC; this crate is the
//! substitution documented in `DESIGN.md` §2 — the data monitor is generic
//! over "several interfaces to access data" (paper §3), and every CerFix
//! component upstream of storage interacts only with [`Relation`],
//! [`Tuple`], [`Schema`] and [`HashIndex`].
//!
//! ## Quick tour
//!
//! ```
//! use cerfix_relation::{Schema, Tuple, Relation, HashIndex, Value};
//!
//! // The paper's master schema (Example 2).
//! let master_schema = Schema::of_strings(
//!     "master",
//!     ["FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender"],
//! ).unwrap();
//!
//! let s = Tuple::of_strings(master_schema.clone(), [
//!     "Robert", "Brady", "131", "6884563", "079172485",
//!     "501 Elm St", "Edi", "EH8 4AH", "11/11/55", "M",
//! ]).unwrap();
//!
//! let mut master = Relation::empty(master_schema.clone());
//! master.push(s).unwrap();
//!
//! // Index on zip for editing-rule lookups (rule φ1 joins on zip).
//! let zip = master_schema.attr_id("zip").unwrap();
//! let index = HashIndex::build(&master, vec![zip]);
//! assert_eq!(index.lookup(&[Value::str("EH8 4AH")]).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attrset;
mod builder;
mod csv;
mod datatype;
mod display;
mod error;
mod index;
mod predicate;
mod relation;
mod schema;
mod tuple;
mod value;

pub use attrset::AttrSet;
pub use builder::{RelationBuilder, SchemaBuilder};
pub use csv::{
    read_raw_records, read_relation_file, read_relation_str, read_untyped_str, write_relation_file,
    write_relation_str,
};
pub use datatype::DataType;
pub use display::{render_relation, render_relation_head, render_table, render_tuples};
pub use error::{RelationError, Result};
pub use index::HashIndex;
pub use predicate::{CompareOp, Predicate};
pub use relation::{Relation, RowId};
pub use schema::{AttrId, Attribute, Schema, SchemaRef};
pub use tuple::Tuple;
pub use value::Value;
