//! Typed cell values with a total order and hashability.
//!
//! Editing rules compare input-tuple cells against master-tuple cells and
//! pattern constants, and hash indexes key on value vectors, so [`Value`]
//! implements `Eq`, `Ord` and `Hash` for *all* variants — floats use IEEE
//! total ordering (`f64::total_cmp`) and hash their bit pattern, which keeps
//! the three impls mutually consistent.

use crate::datatype::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single cell value.
///
/// Strings are reference-counted (`Arc<str>`): the correcting process copies
/// master-data values into input tuples and audit records, and `Arc` makes
/// those copies O(1) without entangling lifetimes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing / unknown. Never equal to anything under rule matching
    /// (see [`Value::matches`]), but equal to itself for indexing.
    Null,
    /// UTF-8 text.
    Str(Arc<str>),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (total order).
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Build a float value.
    pub fn float(f: f64) -> Value {
        Value::Float(f)
    }

    /// Build a boolean value.
    pub fn bool(b: bool) -> Value {
        Value::Bool(b)
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type of this value, or `None` for null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Str(_) => Some(DataType::String),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True iff this value may be stored in an attribute of type `dtype`.
    /// Null conforms to every type.
    pub fn conforms_to(&self, dtype: DataType) -> bool {
        match self.data_type() {
            None => true,
            Some(dt) => dt == dtype,
        }
    }

    /// Equality as used by *rule matching*: null matches nothing, including
    /// another null (an unknown value is never evidence).
    ///
    /// This differs from `==`, which treats `Null == Null` as true so that
    /// values can key hash maps.
    pub fn matches(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self == other
    }

    /// Borrow the string content if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content if this is an int value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float content if this is a float value.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean content if this is a bool value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse `text` as a value of type `dtype`. Empty text parses to null,
    /// matching common CSV conventions for missing data.
    pub fn parse_as(text: &str, dtype: DataType) -> Result<Value, crate::RelationError> {
        if text.is_empty() {
            return Ok(Value::Null);
        }
        match dtype {
            DataType::String => Ok(Value::str(text)),
            DataType::Int => {
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| crate::RelationError::ParseValue {
                        text: text.into(),
                        target: "int",
                    })
            }
            DataType::Float => text.parse::<f64>().map(Value::Float).map_err(|_| {
                crate::RelationError::ParseValue {
                    text: text.into(),
                    target: "float",
                }
            }),
            DataType::Bool => match text {
                "true" | "1" | "t" => Ok(Value::Bool(true)),
                "false" | "0" | "f" => Ok(Value::Bool(false)),
                _ => Err(crate::RelationError::ParseValue {
                    text: text.into(),
                    target: "bool",
                }),
            },
        }
    }

    /// Render the value as the bare text that [`Value::parse_as`] accepts.
    /// Null renders as the empty string.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Str(s) => s.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                // Keep a trailing `.0` so the text re-parses as a float.
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Value::Bool(b) => b.to_string(),
        }
    }

    /// Rank used to order values of different variants (null < bool < int <
    /// float < string). Cross-variant comparisons only arise in generic code
    /// (sorting mixed columns in diagnostics); rules always compare
    /// like-typed cells.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.variant_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Str(s) => s.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("∅"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::str(&s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_matches_nothing_but_equals_itself() {
        assert!(!Value::Null.matches(&Value::Null));
        assert!(!Value::Null.matches(&Value::int(1)));
        assert!(!Value::int(1).matches(&Value::Null));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn matches_agrees_with_eq_for_non_null() {
        assert!(Value::str("Edi").matches(&Value::str("Edi")));
        assert!(!Value::str("Edi").matches(&Value::str("Ldn")));
        assert!(Value::int(131).matches(&Value::int(131)));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::float(f64::NAN);
        let one = Value::float(1.0);
        assert_eq!(nan, nan.clone());
        assert_eq!(nan.cmp(&one), Ordering::Greater); // total_cmp puts +NaN last
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn negative_zero_distinct_under_total_order() {
        // total_cmp distinguishes -0.0 and +0.0; Eq/Hash must agree.
        let neg = Value::float(-0.0);
        let pos = Value::float(0.0);
        assert_ne!(neg, pos);
        assert_ne!(hash_of(&neg), hash_of(&pos));
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::str("501 Elm St");
        let b = Value::str("501 Elm St");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn cross_variant_ordering_is_by_rank() {
        assert!(Value::Null < Value::bool(false));
        assert!(Value::bool(true) < Value::int(0));
        assert!(Value::int(5) < Value::float(0.0));
        assert!(Value::float(9.0) < Value::str(""));
    }

    #[test]
    fn parse_round_trips() {
        let cases = [
            (Value::str("Edi"), DataType::String),
            (Value::int(-42), DataType::Int),
            (Value::float(2.5), DataType::Float),
            (Value::float(3.0), DataType::Float),
            (Value::bool(true), DataType::Bool),
            (Value::Null, DataType::Int),
        ];
        for (v, dt) in cases {
            let text = v.render();
            let back = Value::parse_as(&text, dt).unwrap();
            assert_eq!(back, v, "round trip failed for {v:?} via {text:?}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse_as("xyz", DataType::Int).is_err());
        assert!(Value::parse_as("1.2.3", DataType::Float).is_err());
        assert!(Value::parse_as("maybe", DataType::Bool).is_err());
    }

    #[test]
    fn conforms_to_types() {
        assert!(Value::str("a").conforms_to(DataType::String));
        assert!(!Value::str("a").conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Int));
        assert!(Value::Null.conforms_to(DataType::Bool));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(7i64), Value::int(7));
        assert_eq!(Value::from(true), Value::bool(true));
        assert_eq!(Value::from(1.5f64), Value::float(1.5));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
    }

    #[test]
    fn display_null_is_marked() {
        assert_eq!(Value::Null.to_string(), "∅");
        assert_eq!(Value::Null.render(), "");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert_eq!(Value::int(3).as_str(), None);
        assert_eq!(Value::str("a").as_int(), None);
    }
}
