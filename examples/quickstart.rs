//! Quickstart: the paper's Examples 1 & 2 in ~60 lines.
//!
//! Builds the master tuple of Example 2, the editing rule φ1, and the
//! dirty tuple of Example 1, then asks the monitor for a certain fix of
//! the area code given a validated zip.
//!
//! Run with: `cargo run --example quickstart`

use cerfix::{DataMonitor, MasterData};
use cerfix_relation::{RelationBuilder, Schema, Tuple, Value};
use cerfix_rules::{parse_rules, RuleDecl, RuleSet};

fn main() {
    // Schemas of the running example (input and master differ).
    let input = Schema::of_strings(
        "customer",
        [
            "FN", "LN", "AC", "phn", "type", "str", "city", "zip", "item",
        ],
    )
    .expect("schema");
    let master_schema = Schema::of_strings(
        "master",
        [
            "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DoB", "gender",
        ],
    )
    .expect("schema");

    // Example 2's master tuple s.
    let master = MasterData::new(
        RelationBuilder::new(master_schema.clone())
            .row_strs([
                "Robert",
                "Brady",
                "131",
                "6884563",
                "079172485",
                "501 Elm St",
                "Edi",
                "EH8 4AH",
                "11/11/55",
                "M",
            ])
            .build()
            .expect("master data"),
    );

    // Editing rule φ1: ((zip, zip) → (AC, AC), tp1 = ()) — written in the
    // rule DSL, as the rule manager would import it.
    let mut rules = RuleSet::new(input.clone(), master_schema.clone());
    for decl in parse_rules(
        "er phi1: match zip=zip fix AC:=AC when ()",
        &input,
        &master_schema,
    )
    .expect("rule parses")
    {
        if let RuleDecl::Er(rule) = decl {
            rules.add(rule).expect("unique name");
        }
    }

    // Example 1's input tuple t: AC = 020 contradicts the Edinburgh zip.
    let t = Tuple::of_strings(
        input.clone(),
        [
            "Bob",
            "Brady",
            "020",
            "079172485",
            "2",
            "501 Elm St",
            "Edi",
            "EH8 4AH",
            "CD",
        ],
    )
    .expect("tuple");
    println!("dirty tuple:  {t}");

    // The user validates zip (assures it is correct); the monitor applies
    // φ1 and finds the certain fix AC := 131 from the master tuple.
    let monitor = DataMonitor::new(&rules, &master);
    let mut session = monitor.start(0, t);
    let zip = input.attr_id("zip").expect("zip");
    let report = monitor
        .apply_validation(&mut session, &[(zip, Value::str("EH8 4AH"))])
        .expect("consistent rules");

    println!("fixed tuple:  {}", session.tuple);
    for fix in &report.fixes {
        println!(
            "certain fix:  {} '{}' -> '{}' (from master row {})",
            input.attr_name(fix.attr),
            fix.old,
            fix.new,
            fix.master_row
        );
    }
    assert_eq!(
        session.tuple.get_by_name("AC").expect("AC"),
        &Value::str("131")
    );
    println!("\nThe fix is certain: it is the true value, guaranteed by the rule\nand the master data — not a heuristic guess.");
}
