//! The full demo flow on the paper's UK-customer scenario: configure an
//! instance, pre-compute certain regions, monitor a stream of dirty
//! entries with a simulated user, and inspect the audit trail — the
//! programmatic equivalent of walking through Figs. 2–4.
//!
//! Run with: `cargo run --example uk_customers`

use cerfix::{
    check_consistency, find_regions, AuditStats, ConsistencyOptions, DataMonitor, OracleUser,
    RegionFinderOptions,
};
use cerfix_gen::{make_workload, uk, NoiseSpec};
use cerfix_relation::render_relation_head;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2011); // the demo's year
    let scenario = uk::scenario(500, &mut rng);
    let master = scenario.master_data();

    // --- Initialization (paper §3): schemas + master data ----------------
    println!("input schema:  {}", scenario.input);
    println!("master schema: {}", scenario.master_schema);
    println!("\nmaster data (first rows):");
    print!("{}", render_relation_head(&scenario.master, 4));

    // --- Rule engine: consistency check (Fig. 2's automatic test) --------
    let report = check_consistency(
        &scenario.rules,
        &master,
        &ConsistencyOptions::entity_coherent(),
    );
    println!(
        "\n{} editing rules; consistent (entity-coherent): {}",
        scenario.rules.len(),
        report.is_consistent()
    );

    // --- Region finder: top-k certain regions ----------------------------
    let regions = find_regions(
        &scenario.rules,
        &master,
        &scenario.universe,
        &RegionFinderOptions::default(),
    )
    .regions;
    println!("\ntop certain regions (ranked ascending by size):");
    for (i, region) in regions.iter().enumerate() {
        println!("  {}. {}", i + 1, region.render(&scenario.input));
    }

    // --- Data monitor: clean a stream of dirty entries -------------------
    let monitor = DataMonitor::new(&scenario.rules, &master).with_regions(regions);
    let workload = make_workload(
        &scenario.universe,
        200,
        &NoiseSpec::with_rate(0.3),
        &mut rng,
    );
    let mut complete = 0;
    for (idx, (dirty, truth)) in workload.dirty.iter().zip(workload.truth.iter()).enumerate() {
        let mut user = OracleUser::new(truth.clone());
        let outcome = monitor
            .clean(idx, dirty.clone(), &mut user)
            .expect("consistent rules");
        if outcome.complete {
            complete += 1;
        }
        assert_eq!(
            &outcome.tuple, truth,
            "certain fixes equal the ground truth"
        );
    }
    println!(
        "\ncleaned {} tuples; {} reached a certain fix",
        workload.len(),
        complete
    );

    // --- Data auditing (Fig. 4) -------------------------------------------
    let stats = AuditStats::from_log(monitor.audit());
    println!("\naudit statistics (user vs CerFix per attribute):");
    print!("{}", stats.render(&scenario.input));
    let totals = stats.totals();
    println!(
        "\noverall: user validated {:.1}%, CerFix fixed {:.1}% of cells",
        totals.user_fraction() * 100.0,
        totals.auto_fraction() * 100.0
    );

    // Per-cell provenance, as Fig. 4 displays when a cell is selected.
    let fn_attr = scenario.input.attr_id("FN").expect("FN");
    if let Some(record) = monitor
        .audit()
        .attr_events(fn_attr)
        .iter()
        .find(|r| r.event.changed_value() && !r.event.is_user())
    {
        println!(
            "\nexample FN provenance (tuple {}): {:?}",
            record.tuple_id, record.event
        );
    }
}
