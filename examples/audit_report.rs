//! Deep-dive into data auditing (paper Fig. 4): per-cell provenance
//! narratives, per-tuple histories, and the user-vs-CerFix statistics —
//! everything the demo's auditing screen can answer, as a report.
//!
//! Run with: `cargo run --example audit_report`

use cerfix::{explain_cell, explain_tuple, AuditStats, DataMonitor, OracleUser};
use cerfix_gen::{make_workload, uk, NoiseSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4); // Fig. 4
    let scenario = uk::scenario(200, &mut rng);
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);

    // Clean a short stream.
    let workload = make_workload(&scenario.universe, 25, &NoiseSpec::with_rate(0.4), &mut rng);
    for (idx, (dirty, truth)) in workload.dirty.iter().zip(workload.truth.iter()).enumerate() {
        let mut user = OracleUser::new(truth.clone());
        monitor
            .clean(idx, dirty.clone(), &mut user)
            .expect("consistent rules");
    }

    // --- Per-cell view: pick a tuple whose FN a rule actually changed ---
    let fn_attr = scenario.input.attr_id("FN").expect("FN");
    let changed_fn = monitor
        .audit()
        .attr_events(fn_attr)
        .into_iter()
        .find(|r| r.event.changed_value() && !r.event.is_user());
    match changed_fn {
        Some(record) => {
            println!("== per-cell provenance (Fig. 4, cell selected) ==");
            print!(
                "{}",
                explain_cell(
                    monitor.audit(),
                    &scenario.rules,
                    &master,
                    &scenario.input,
                    record.tuple_id,
                    fn_attr
                )
                .expect("history exists")
            );
            println!("\n== full narrative for tuple {} ==", record.tuple_id);
            print!(
                "{}",
                explain_tuple(
                    monitor.audit(),
                    &scenario.rules,
                    &master,
                    &scenario.input,
                    record.tuple_id
                )
            );
        }
        None => println!("(no rule-changed FN in this sample — increase noise)"),
    }

    // --- Per-column view (Fig. 4, column selected) ---
    println!("\n== per-attribute statistics (Fig. 4, column selected) ==");
    let stats = AuditStats::from_log(monitor.audit());
    print!("{}", stats.render(&scenario.input));

    let totals = stats.totals();
    println!(
        "\nacross the stream: {} cells user-validated ({:.1}%), {} CerFix-validated \
         ({:.1}%), of which {} were actual value changes.",
        totals.user_validated,
        totals.user_fraction() * 100.0,
        totals.auto_validated,
        totals.auto_fraction() * 100.0,
        totals.auto_changed,
    );
}
