//! Batch cleaning of a HOSP-style stream with CSV input/output — the
//! "point of data entry" pipeline applied to a file drop, using the
//! scenario whose rule coverage reproduces the paper's 20%/80%
//! user/CerFix split.
//!
//! Run with: `cargo run --example hosp_batch`

use cerfix::{clean_stream, DataMonitor, OracleUser};
use cerfix_gen::{evaluate_stream, hosp, make_workload, NoiseSpec};
use cerfix_relation::{read_relation_file, write_relation_file, Relation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let scenario = hosp::scenario(800, &mut rng);
    let master = scenario.master_data();

    // Simulate a dirty batch arriving as CSV.
    let workload = make_workload(
        &scenario.universe,
        300,
        &NoiseSpec::with_rate(0.25),
        &mut rng,
    );
    let dir = std::env::temp_dir().join("cerfix_hosp_batch");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dirty_path = dir.join("entries_dirty.csv");
    let dirty_rel = Relation::from_tuples(scenario.input.clone(), workload.dirty.clone())
        .expect("workload tuples conform");
    write_relation_file(&dirty_rel, &dirty_path).expect("write dirty csv");
    println!("wrote dirty batch:   {}", dirty_path.display());

    // Read it back (the CSV layer replaces the demo's JDBC connection).
    let loaded = read_relation_file(scenario.input.clone(), &dirty_path).expect("read csv");
    assert_eq!(loaded.len(), workload.len());

    // Clean through the monitor.
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let truths = workload.truth.clone();
    let report = clean_stream(
        &monitor,
        loaded.iter().map(|(_, t)| t.clone()),
        move |idx, _| Box::new(OracleUser::new(truths[idx].clone())),
    )
    .expect("consistent rules");

    // Write the cleaned batch.
    let clean_path = dir.join("entries_clean.csv");
    let cleaned: Vec<_> = report.outcomes.iter().map(|o| o.tuple.clone()).collect();
    let clean_rel =
        Relation::from_tuples(scenario.input.clone(), cleaned.clone()).expect("cleaned conform");
    write_relation_file(&clean_rel, &clean_path).expect("write clean csv");
    println!("wrote cleaned batch: {}", clean_path.display());

    // Score against ground truth.
    let eval = evaluate_stream(&workload.dirty, &cleaned, &workload.truth);
    println!(
        "\n{} tuples cleaned; {} certain fixes; precision {:.3}, recall {:.3}",
        report.len(),
        report.complete_count(),
        eval.precision().unwrap_or(1.0),
        eval.recall().unwrap_or(0.0),
    );
    println!(
        "user validated {:.1}% of cells, CerFix fixed {:.1}% (paper: ~20%/~80%)",
        report.user_fraction() * 100.0,
        report.auto_fraction() * 100.0
    );
    assert_eq!(eval.precision(), Some(1.0), "certain fixes are never wrong");
}
