//! Rule management with the data-explorer facade — the textual stand-in
//! for the demo's Web interface (paper Fig. 2): view, add, modify and
//! delete editing rules, re-check consistency after each change, and
//! derive rules from CFDs and MDs.
//!
//! Run with: `cargo run --example rule_explorer`

use cerfix::{Explorer, MasterData};
use cerfix_gen::uk;
use cerfix_rules::{
    derive_from_cfd, derive_from_md, parse_rules, render_er_dsl, AttrCorrespondence, RuleDecl,
    RuleSet,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let input = uk::input_schema();
    let master_schema = uk::master_schema();
    let mut rng = StdRng::seed_from_u64(7);
    let master = MasterData::new(uk::generate_master(300, &mut rng));
    let mut explorer = Explorer::new(RuleSet::new(input.clone(), master_schema.clone()), master);

    // Import the nine paper rules.
    let added = explorer
        .add_rules_dsl(uk::UK_RULES_DSL)
        .expect("paper rules parse");
    println!("imported {added} rules:\n{}", explorer.render_rules());

    // The automatic consistency check after a rule change.
    let report = explorer.check_consistency();
    println!(
        "strict consistency: {} ({} conflicts reported)",
        report.is_consistent(),
        report.conflicts.len()
    );

    // Modify φ9's pattern via the pop-up-equivalent DSL update (Fig. 2
    // shows the '≠ 0800' pattern being edited in a frame).
    explorer
        .update_rule_dsl(
            "phi9",
            "er phi9: match AC=AC fix city:=city when (AC!='0800', AC!='0500')",
        )
        .expect("update parses");
    println!("\nafter editing phi9's pattern:");
    let (_, phi9) = explorer.rules().get_by_name("phi9").expect("phi9");
    println!("  {}", render_er_dsl(phi9, &input, &master_schema));

    // Delete and re-add a rule.
    explorer.delete_rule("phi2").expect("phi2 exists");
    println!("\ndeleted phi2; {} rules remain", explorer.rules().len());
    explorer
        .add_rules_dsl("er phi2: match zip=zip fix str:=str when ()")
        .expect("re-add parses");
    println!("re-added phi2; {} rules", explorer.rules().len());

    // Derive additional rules from a CFD and an MD, then import them —
    // the demo's "discovered from cfds or mds" path.
    let decls = parse_rules(
        "cfd psi: AC -> city | '020' -> 'Ldn' ; '131' -> 'Edi'\n\
         md m1: phn==Mphn identify FN<=>FN",
        &input,
        &master_schema,
    )
    .expect("constraints parse");
    let corr = AttrCorrespondence::by_name(&input, &master_schema);
    println!("\nderived rules:");
    for decl in &decls {
        match decl {
            RuleDecl::Cfd(cfd) => {
                for rule in derive_from_cfd(cfd, &input, &master_schema, &corr).expect("derivable")
                {
                    println!(
                        "  from cfd: {}",
                        render_er_dsl(&rule, &input, &master_schema)
                    );
                }
            }
            RuleDecl::Md(md) => {
                let rule = derive_from_md(md, &input, &master_schema).expect("exact MD");
                println!(
                    "  from md:  {}",
                    render_er_dsl(&rule, &input, &master_schema)
                );
            }
            RuleDecl::Er(_) => {}
        }
    }

    // Recompute the certain regions after rule changes, certifying
    // against the truth universe of this instance's own master data.
    let universe = uk::truth_universe(explorer.master().relation());
    let result = explorer.recompute_regions(&universe, &cerfix::RegionFinderOptions::default());
    println!(
        "\nrecomputed {} certain regions ({} candidates, {} rejected by certification):",
        result.regions.len(),
        result.stats.candidates,
        result.stats.rejected_by_certification
    );
    print!("{}", explorer.render_regions());
}
