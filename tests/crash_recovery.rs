//! Crash-recovery harness for `cerfix-storage` + `cerfix-server`.
//!
//! The durability claim under test: a journaled service that dies at an
//! arbitrary point — after a journal write, before its fsync, mid-
//! snapshot, or kill-9 of the whole process — recovers every
//! uncommitted session to *exactly* the state an uninterrupted
//! [`DataMonitor`] run would hold after the events that survived on
//! disk. Four angles:
//!
//! 1. **Torn-journal sweep**: run a real UK-scenario workload, capture
//!    the journal, cut it at dozens of byte offsets (simulating a crash
//!    torn write at each), and for every cut compare the recovered
//!    service against an independent oracle replay of the surviving
//!    event prefix.
//! 2. **Fault points around snapshots**: a garbage `snapshot.tmp`
//!    (crash mid-snapshot-write) and a stale-epoch journal (crash
//!    between snapshot rename and journal truncation) must both recover
//!    cleanly from the last consistent state.
//! 3. **Codec properties**: random event sequences round-trip through
//!    the journal byte format, and any prefix cut yields a clean prefix
//!    of events (proptest).
//! 4. **kill -9 over TCP**: the real `cerfix serve --data-dir` binary is
//!    SIGKILLed mid-session and restarted; uncommitted sessions resume
//!    over the wire and `audit.read` returns the same records.

use cerfix::{DataMonitor, MasterData, MonitorSession};
use cerfix_gen::{make_workload, uk, NoiseSpec};
use cerfix_relation::{Tuple, Value};
use cerfix_server::{CleaningService, LocalClient, ServiceConfig, StorageConfig};
use cerfix_storage::{scan_journal, JournalEvent, JOURNAL_FILE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cerfix-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// End-of-test cleanup. With `CERFIX_KEEP_CRASH_DIRS` set the data
/// directories survive so CI's scrub step can run `cerfix scrub` over
/// real crash residue (kill -9, torn writes, byte-cut journals).
fn cleanup(dir: &Path) {
    if std::env::var_os("CERFIX_KEEP_CRASH_DIRS").is_none() {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Storage where nothing is durable except through explicit syncs
/// (commit acks) — the crash window is then fully test-controlled.
fn manual_storage(dir: &Path) -> StorageConfig {
    let mut cfg = StorageConfig::new(dir);
    cfg.flush_interval = Duration::from_secs(3600);
    cfg.snapshot_interval = Duration::from_secs(3600);
    cfg.snapshot_every_events = u64::MAX;
    cfg
}

fn service_over(
    dir: &Path,
    master: &Arc<MasterData>,
    rules: &Arc<cerfix_rules::RuleSet>,
) -> CleaningService {
    CleaningService::with_storage(
        Arc::clone(master),
        Arc::clone(rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
        manual_storage(dir),
    )
    .expect("open storage")
}

/// Independent oracle: replay `events` through a plain [`DataMonitor`]
/// over a session map, exactly as an uninterrupted in-memory run would
/// have executed them.
fn oracle_replay(
    events: &[JournalEvent],
    monitor: &DataMonitor<'_>,
    schema: &cerfix_relation::SchemaRef,
) -> BTreeMap<u64, MonitorSession> {
    let mut sessions: BTreeMap<u64, MonitorSession> = BTreeMap::new();
    for event in events {
        match event {
            JournalEvent::SessionCreated { session, values } => {
                let tuple = Tuple::new(schema.clone(), values.clone()).unwrap();
                sessions.insert(*session, MonitorSession::new(*session as usize, tuple));
            }
            JournalEvent::SessionValidated {
                session,
                validations,
            } => {
                if let Some(state) = sessions.get_mut(session) {
                    let resolved: Vec<(usize, Value)> = validations
                        .iter()
                        .map(|(a, v)| (*a as usize, v.clone()))
                        .collect();
                    let _ = monitor.apply_validation(state, &resolved);
                }
            }
            JournalEvent::SessionCommitted { session }
            | JournalEvent::SessionAborted { session } => {
                sessions.remove(session);
            }
            JournalEvent::SessionsEvicted {
                sessions: evicted, ..
            } => {
                for id in evicted {
                    sessions.remove(id);
                }
            }
            // The crash workloads here never append master rows,
            // reload rules or set tunables; the arms exist so the
            // oracle stays total.
            JournalEvent::MasterAppended { .. } => {}
            JournalEvent::ConfigSet { .. } => {}
            JournalEvent::RulesReloaded { .. } => {
                unreachable!("this workload never reloads rules")
            }
        }
    }
    sessions
}

/// Assert the recovered service agrees with the oracle on every session:
/// same live set, and per session the same tuple, rounds and validated
/// attribute names.
fn assert_matches_oracle(
    service: &CleaningService,
    oracle: &BTreeMap<u64, MonitorSession>,
    schema: &cerfix_relation::SchemaRef,
    context: &str,
) {
    assert_eq!(
        service.live_sessions(),
        oracle.len(),
        "{context}: live session count"
    );
    let mut client = LocalClient::in_process(service);
    for (&id, expected) in oracle {
        let view = client
            .get_session(id)
            .unwrap_or_else(|e| panic!("{context}: session {id} missing after recovery: {e}"));
        assert_eq!(
            view.tuple,
            expected.tuple.values().to_vec(),
            "{context}: session {id} tuple"
        );
        assert_eq!(
            view.rounds as usize, expected.rounds,
            "{context}: session {id} rounds"
        );
        let expected_validated: Vec<String> = expected
            .validated
            .iter()
            .map(|a| schema.attr_name(a).to_string())
            .collect();
        assert_eq!(
            view.validated, expected_validated,
            "{context}: session {id} validated set"
        );
    }
}

/// Drive a realistic interleaved workload against a journaled service:
/// sessions at various stages, some committed, some aborted, some mid-
/// round. Ends with one commit as the durability barrier.
fn drive_workload(service: &CleaningService, scenario: &cerfix_gen::Scenario) {
    let mut rng = StdRng::seed_from_u64(0xC4A5);
    let workload = make_workload(&scenario.universe, 12, &NoiseSpec::with_rate(0.4), &mut rng);
    let mut client = LocalClient::in_process(service);
    let schema = &scenario.input;
    let mut open = Vec::new();
    for (i, (dirty, truth)) in workload.dirty.iter().zip(&workload.truth).enumerate() {
        let view = client.create_session(dirty.values().to_vec()).unwrap();
        // Walk 0..=2 suggestion rounds with true values, like a clerk
        // who answers some prompts and wanders off.
        let mut current = view.clone();
        for _ in 0..(i % 3) {
            if current.suggestion.is_empty() {
                break;
            }
            let validations: Vec<(String, Value)> = current
                .suggestion
                .iter()
                .map(|name| {
                    let attr = schema.attr_id(name).unwrap();
                    (name.clone(), truth.get(attr).clone())
                })
                .collect();
            current = client.validate(view.session, validations).unwrap();
        }
        match i % 4 {
            0 if current.is_complete() => {
                client.commit(view.session).unwrap();
            }
            3 => client.abort(view.session).unwrap(),
            _ => open.push(view.session),
        }
    }
    // Durability barrier: one committed session group-fsyncs the rest.
    let barrier = client
        .create_session(workload.dirty[0].values().to_vec())
        .unwrap();
    client.commit(barrier.session).unwrap();
    assert!(!open.is_empty(), "workload must leave open sessions");
}

/// 1. The torn-journal sweep.
#[test]
fn torn_journal_recovery_matches_oracle_at_every_cut() {
    let mut rng = StdRng::seed_from_u64(0x70A2);
    let scenario = uk::scenario(120, &mut rng);
    let master = Arc::new(scenario.master_data());
    let rules = Arc::new(scenario.rules.clone());
    let schema = scenario.input.clone();

    let dir = tmp_dir("torn-sweep");
    {
        let service = service_over(&dir, &master, &rules);
        drive_workload(&service, &scenario);
        service.simulate_crash().unwrap();
    }
    let full = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
    let full_scan = scan_journal(&dir.join(JOURNAL_FILE)).unwrap();
    assert!(
        full_scan.events.len() >= 20,
        "workload journaled {} events",
        full_scan.events.len()
    );

    let monitor = DataMonitor::new(&rules, &master);
    // Sweep cuts across the whole file: ends, frame-ish strides, and a
    // few dozen odd offsets so header/payload tears are both hit.
    let header = cerfix_storage::JOURNAL_HEADER as usize;
    let mut cuts: Vec<usize> = (header..full.len()).step_by(101).collect();
    cuts.extend([header, header + 1, full.len() - 1, full.len()]);
    let mut prefix_lens = std::collections::BTreeSet::new();
    for cut in cuts {
        let case_dir = tmp_dir("torn-case");
        std::fs::write(case_dir.join(JOURNAL_FILE), &full[..cut]).unwrap();
        let scan = scan_journal(&case_dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(
            scan.events,
            full_scan.events[..scan.events.len()],
            "cut {cut}: surviving events are a clean prefix"
        );
        prefix_lens.insert(scan.events.len());
        let oracle = oracle_replay(&scan.events, &monitor, &schema);
        let service = service_over(&case_dir, &master, &rules);
        assert_matches_oracle(&service, &oracle, &schema, &format!("cut {cut}"));
        assert_eq!(
            service.metrics().sessions_recovered as usize,
            oracle.len(),
            "cut {cut}: recovered counter"
        );
        drop(service);
        cleanup(&case_dir);
    }
    assert!(
        prefix_lens.len() > 5,
        "sweep exercised {} distinct prefix lengths",
        prefix_lens.len()
    );
    cleanup(&dir);
}

/// 2a. Crash mid-snapshot: the half-written tmp is ignored; the previous
/// snapshot + journal recover everything.
#[test]
fn crash_mid_snapshot_recovers_from_previous_state() {
    let mut rng = StdRng::seed_from_u64(0x51AB);
    let scenario = uk::scenario(80, &mut rng);
    let master = Arc::new(scenario.master_data());
    let rules = Arc::new(scenario.rules.clone());
    let schema = scenario.input.clone();

    let dir = tmp_dir("mid-snapshot");
    {
        let service = service_over(&dir, &master, &rules);
        drive_workload(&service, &scenario);
        assert!(service.snapshot_now().unwrap());
        // More traffic after the snapshot, then crash.
        drive_workload(&service, &scenario);
        service.simulate_crash().unwrap();
    }
    // Crash "mid-snapshot": a torn tmp file appears alongside.
    std::fs::write(dir.join(cerfix_storage::SNAPSHOT_TMP), b"torn half-write").unwrap();

    let expected = {
        let scan = scan_journal(&dir.join(JOURNAL_FILE)).unwrap();
        let snapshot = cerfix_storage::load_snapshot(&dir).unwrap().unwrap();
        assert_eq!(scan.epoch, snapshot.epoch, "journal continues the snapshot");
        (snapshot.sessions.len(), scan.events.len())
    };
    assert!(expected.0 > 0, "snapshot carries sessions");
    assert!(expected.1 > 0, "journal carries post-snapshot events");

    let service = service_over(&dir, &master, &rules);
    assert!(service.live_sessions() > 0);
    // Deep equality: re-derive the oracle as snapshot sessions + replay.
    // (The snapshot's own correctness is covered by the server tests;
    // here we assert recovery survived the fault and is self-consistent.)
    let mut client = LocalClient::in_process(&service);
    let metrics = service.metrics();
    assert_eq!(metrics.sessions_recovered as usize, service.live_sessions());
    // Every recovered session answers get_session coherently.
    for (id, _) in (1..200u64).map(|id| (id, ())).take(200) {
        if let Ok(view) = client.get_session(id) {
            assert_eq!(view.tuple.len(), schema.arity());
        }
    }
    cleanup(&dir);
}

/// 2b. Crash between snapshot rename and journal truncation: the stale
/// journal (old epoch) must be discarded, not replayed on top of the
/// snapshot that already contains its effects.
#[test]
fn stale_epoch_journal_is_not_double_applied() {
    let mut rng = StdRng::seed_from_u64(0x2E0C);
    let scenario = uk::scenario(80, &mut rng);
    let master = Arc::new(scenario.master_data());
    let rules = Arc::new(scenario.rules.clone());
    let schema = scenario.input.clone();

    let dir = tmp_dir("stale-epoch");
    let (expected_live, views_before);
    {
        let service = service_over(&dir, &master, &rules);
        drive_workload(&service, &scenario);
        // Capture pre-snapshot journal bytes (epoch 0, full history).
        let stale_journal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
        assert!(service.snapshot_now().unwrap());
        expected_live = service.live_sessions();
        let mut client = LocalClient::in_process(&service);
        views_before = (1..50u64)
            .filter_map(|id| client.get_session(id).ok().map(|v| (id, v)))
            .collect::<Vec<_>>();
        service.simulate_crash().unwrap();
        // Fault injection: put the old epoch-0 journal back, as if the
        // crash hit after snapshot rename but before truncation.
        std::fs::write(dir.join(JOURNAL_FILE), &stale_journal).unwrap();
    }
    let service = service_over(&dir, &master, &rules);
    assert_eq!(
        service.live_sessions(),
        expected_live,
        "stale journal neither lost nor double-applied sessions"
    );
    let mut client = LocalClient::in_process(&service);
    for (id, before) in views_before {
        let after = client.get_session(id).unwrap();
        assert_eq!(after.tuple, before.tuple, "session {id}");
        assert_eq!(after.rounds, before.rounds, "session {id} rounds intact");
        assert_eq!(after.validated, before.validated, "session {id}");
    }
    assert_eq!(schema.arity(), 9);
    cleanup(&dir);
}

// ---------------------------------------------------------------------
// 3. Codec properties.
// ---------------------------------------------------------------------

fn arbitrary_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..6) {
        0 => Value::Null,
        1 => Value::Int(rng.gen::<i64>()),
        2 => Value::Float(f64::from_bits(rng.gen::<u64>())),
        3 => Value::Bool(rng.gen_bool(0.5)),
        4 => Value::str(""),
        _ => {
            let len = rng.gen_range(0..24);
            let s: String = (0..len)
                .map(|_| {
                    // Mix ASCII with multi-byte UTF-8.
                    match rng.gen_range(0..4) {
                        0 => 'π',
                        1 => '∅',
                        _ => (b'a' + rng.gen_range(0..26u8)) as char,
                    }
                })
                .collect();
            Value::str(s)
        }
    }
}

fn arbitrary_event(rng: &mut StdRng) -> JournalEvent {
    match rng.gen_range(0..6) {
        0 => JournalEvent::SessionCreated {
            session: rng.gen_range(0..1_000),
            values: (0..rng.gen_range(0..9))
                .map(|_| arbitrary_value(rng))
                .collect(),
        },
        1 => JournalEvent::SessionValidated {
            session: rng.gen_range(0..1_000),
            validations: (0..rng.gen_range(0..6))
                .map(|_| (rng.gen_range(0..64u32), arbitrary_value(rng)))
                .collect(),
        },
        2 => JournalEvent::SessionCommitted {
            session: rng.gen::<u64>(),
        },
        3 => JournalEvent::SessionAborted {
            session: rng.gen::<u64>(),
        },
        4 => JournalEvent::SessionsEvicted {
            sessions: (0..rng.gen_range(0..10))
                .map(|_| rng.gen::<u64>())
                .collect(),
        },
        _ => JournalEvent::RulesReloaded {
            dsl: format!(
                "er r{}: match a=a fix b:=b when ()",
                rng.gen_range(0..1_000)
            ),
            fingerprint: rng.gen::<u64>(),
        },
    }
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary event sequences survive the full journal byte format:
    /// append → fsync → scan returns exactly the sequence.
    #[test]
    fn journal_round_trips_arbitrary_event_sequences(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let events: Vec<JournalEvent> =
            (0..rng.gen_range(1..40)).map(|_| arbitrary_event(&mut rng)).collect();
        let dir = tmp_dir(&format!("prop-{seed}"));
        let path = dir.join(JOURNAL_FILE);
        {
            let scan = scan_journal(&path).unwrap();
            let fs: std::sync::Arc<dyn cerfix_storage::StorageFs> =
                std::sync::Arc::new(cerfix_storage::RealFs);
            let journal = cerfix_storage::Journal::open(
                &path, &scan, 0, Duration::from_secs(3600), &fs).unwrap();
            let mut last = 0;
            for event in &events {
                last = journal.append(event);
            }
            journal.sync(last).unwrap();
        }
        let scan = scan_journal(&path).unwrap();
        prop_assert_eq!(&scan.events, &events);
        prop_assert_eq!(scan.torn_bytes, 0);

        // And any byte cut yields a clean prefix of the sequence.
        let full = std::fs::read(&path).unwrap();
        let cut = rng.gen_range(cerfix_storage::JOURNAL_HEADER as usize..=full.len());
        std::fs::write(&path, &full[..cut]).unwrap();
        let scan = scan_journal(&path).unwrap();
        prop_assert!(scan.events.len() <= events.len());
        prop_assert_eq!(&scan.events[..], &events[..scan.events.len()]);
        cleanup(&dir);
    }

    /// Snapshot payloads round-trip for arbitrary session states.
    #[test]
    fn snapshot_round_trips_arbitrary_states(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = cerfix_storage::SnapshotData {
            epoch: rng.gen(),
            fingerprint: rng.gen(),
            rules_dsl: format!("er r: match a=a fix b:=b when () # {seed}"),
            next_session_id: rng.gen(),
            master_appended: (0..rng.gen_range(0..4))
                .map(|_| (0..rng.gen_range(0..6)).map(|_| arbitrary_value(&mut rng)).collect())
                .collect(),
            sessions: (0..rng.gen_range(0..12))
                .map(|i| cerfix_storage::SessionSnapshot {
                    session: i,
                    tuple_id: rng.gen(),
                    rounds: rng.gen_range(0..64),
                    values: (0..rng.gen_range(0..9)).map(|_| arbitrary_value(&mut rng)).collect(),
                    validated: (0..rng.gen_range(0..9)).map(|_| rng.gen_range(0..64u32)).collect(),
                    user_validated: vec![],
                    auto_validated: (0..rng.gen_range(0..4)).map(|_| rng.gen_range(0..64u32)).collect(),
                })
                .collect(),
        };
        let bytes = data.encode();
        prop_assert_eq!(cerfix_storage::SnapshotData::decode(&bytes).unwrap(), data);
    }
}

// ---------------------------------------------------------------------
// 4. kill -9 of the real server binary over TCP.
// ---------------------------------------------------------------------

fn write_kill_fixture(dir: &Path) -> (PathBuf, PathBuf) {
    let master = dir.join("master.csv");
    let mut csv = String::from("key,val\n");
    for i in 0..20 {
        csv.push_str(&format!("k{i},v{i}\n"));
    }
    std::fs::write(&master, csv).unwrap();
    let rules = dir.join("rules.dsl");
    std::fs::write(&rules, "er kv: match key=key fix val:=val when ()\n").unwrap();
    (master, rules)
}

fn spawn_server(
    dir: &Path,
    master: &Path,
    rules: &Path,
    frontend: &str,
) -> (std::process::Child, std::net::SocketAddr) {
    spawn_server_with(dir, master, rules, frontend, &[])
}

fn spawn_server_with(
    dir: &Path,
    master: &Path,
    rules: &Path,
    frontend: &str,
    extra: &[&str],
) -> (std::process::Child, std::net::SocketAddr) {
    use std::io::BufRead;
    let data_dir = dir.join("data");
    let mut args = vec![
        "serve",
        "--master",
        master.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--input-header",
        "key,val,note",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--frontend",
        frontend,
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--flush-interval-ms",
        "1",
    ];
    args.extend_from_slice(extra);
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_cerfix"))
        .args(&args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn cerfix serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read server banner");
        assert!(n > 0, "server exited before announcing its address");
        if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest.split_whitespace().next().unwrap();
            break addr.parse().expect("parse server addr");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        use std::io::Read;
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

/// kill -9 over TCP against the threaded front end.
#[test]
fn kill_dash_nine_over_tcp_resumes_sessions() {
    kill_dash_nine_with_frontend("threads");
}

/// Same harness against the epoll readiness-loop front end: the
/// reactor's buffered/batched request path must leave exactly the same
/// journal, and recovery must see identical state.
#[test]
fn kill_dash_nine_over_tcp_resumes_sessions_epoll() {
    kill_dash_nine_with_frontend("epoll");
}

fn kill_dash_nine_with_frontend(frontend: &str) {
    use cerfix_server::Client;
    let dir = tmp_dir(&format!("kill9-{frontend}"));
    let (master, rules) = write_kill_fixture(&dir);

    let (mut child, addr) = spawn_server(&dir, &master, &rules, frontend);
    let mut client = Client::connect(addr).expect("connect");
    let row = |k: &str, v: &str, n: &str| vec![Value::str(k), Value::str(v), Value::str(n)];

    // An uncommitted session with a rule fix applied...
    let open = client.create_session(row("k3", "WRONG", "n")).unwrap();
    let fixed = client
        .validate(open.session, vec![("key".into(), Value::str("k3"))])
        .unwrap();
    assert_eq!(fixed.tuple[1], Value::str("v3"));
    // ...and a committed one, whose ack is the durability barrier.
    let done = client.create_session(row("k5", "x", "y")).unwrap();
    client
        .validate(
            done.session,
            vec![
                ("key".into(), Value::str("k5")),
                ("note".into(), Value::str("y")),
            ],
        )
        .unwrap();
    client.commit(done.session).unwrap();
    let view_before = client.get_session(open.session).unwrap();
    let audit_before = client.audit_read_all(16).unwrap();
    assert!(!audit_before.is_empty());

    // SIGKILL: no shutdown handler, no final snapshot, nothing graceful.
    child.kill().expect("kill -9");
    let _ = child.wait();

    let (mut child, addr) = spawn_server(&dir, &master, &rules, frontend);
    let mut client = Client::connect(addr).expect("reconnect");
    let after = client.get_session(open.session).expect("session resumed");
    assert_eq!(after.tuple, view_before.tuple);
    assert_eq!(after.rounds, view_before.rounds);
    assert_eq!(after.validated, view_before.validated);
    assert_eq!(after.status, view_before.status);
    // The committed session stays gone.
    assert!(client.get_session(done.session).is_err());
    // Provenance is identical across the kill.
    let audit_after = client.audit_read_all(16).unwrap();
    assert_eq!(audit_after, audit_before);
    // The resumed session completes normally.
    let finished = client
        .validate(open.session, vec![("note".into(), Value::str("n"))])
        .unwrap();
    assert!(finished.is_complete());
    client.commit(open.session).unwrap();

    let _ = client.shutdown();
    let _ = child.wait();
    cleanup(&dir);
}

// ---------------------------------------------------------------------
// 5. kill -9 across a three-node cluster: cursor resume and failover.
// ---------------------------------------------------------------------

/// The failover runbook, end to end: a 3-node cluster (`--quorum 3`,
/// so commits need one follower ack besides the primary) survives a
/// follower kill -9 (restart resumes from its durable cursor, same
/// epoch, no resync), then a primary kill -9 (`cerfix promote` turns a
/// follower into a primary serving byte-identical `audit.read`, and the
/// surviving follower re-points at it via snapshot resync).
#[test]
fn three_node_cluster_survives_follower_and_primary_kills() {
    use cerfix_server::wire::Json;
    use cerfix_server::{Client, TcpTransport};
    use std::time::{Duration, Instant};

    fn caught_up(client: &mut Client<TcpTransport>, name: &str, epoch: u64) -> bool {
        let Ok(m) = client.metrics() else {
            return false;
        };
        let Some(f) = m.get("replication").and_then(|r| r.get(name)) else {
            return false;
        };
        f.get("epoch").and_then(Json::as_u64) == Some(epoch)
            && f.get("lag_events").and_then(Json::as_u64) == Some(0)
    }
    fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("timed out waiting for {what}");
    }
    fn commit_row(client: &mut Client<TcpTransport>, k: &str) -> u64 {
        let view = client
            .create_session(vec![Value::str(k), Value::str("X"), Value::str("note")])
            .unwrap();
        client
            .validate(
                view.session,
                vec![
                    ("key".into(), Value::str(k)),
                    ("note".into(), Value::str("note")),
                ],
            )
            .unwrap();
        client.commit(view.session).unwrap();
        view.session
    }

    let dir = tmp_dir("cluster3");
    let (master, rules) = write_kill_fixture(&dir);
    let quorum = ["--quorum", "3", "--ack-timeout-ms", "8000"];

    let (mut primary, paddr) = spawn_server_with(
        &dir.join("p"),
        &master,
        &rules,
        "threads",
        &[&quorum[..], &["--advertise", "primary"][..]].concat(),
    );
    let paddr_s = paddr.to_string();
    let follower_args = |name: &'static str, from: &str| {
        let mut v = vec!["--replicate-from".to_string(), from.to_string()];
        v.extend(quorum.iter().map(|s| s.to_string()));
        v.extend(["--advertise".to_string(), name.to_string()]);
        v
    };
    let spawn_follower = |dir: &Path, name: &'static str, from: &str| {
        let args = follower_args(name, from);
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        spawn_server_with(dir, &master, &rules, "threads", &refs)
    };
    let (mut f1, _) = spawn_follower(&dir.join("f1"), "f1", &paddr_s);
    let (f2, _f2addr) = spawn_follower(&dir.join("f2"), "f2", &paddr_s);

    let mut client = Client::connect(paddr).expect("connect primary");
    wait_for("both followers registered", || {
        caught_up(&mut client, "f1", 0) && caught_up(&mut client, "f2", 0)
    });

    // A quorum-acked base load, plus an open session for the failover.
    for i in 0..6 {
        commit_row(&mut client, &format!("k{i}"));
    }
    let open = client
        .create_session(vec![Value::str("k8"), Value::str("WRONG"), Value::str("n")])
        .unwrap();
    client
        .validate(open.session, vec![("key".into(), Value::str("k8"))])
        .unwrap();

    // kill -9 one follower: commits keep acking through the other.
    f1.kill().expect("kill -9 f1");
    let _ = f1.wait();
    for i in 0..5 {
        commit_row(&mut client, &format!("k{}", 10 + i));
    }

    // Restart it from the same data-dir: it must resume from its durable
    // cursor at the same epoch — a delta pull, not a full resync.
    let (mut f1, f1addr2) = spawn_follower(&dir.join("f1"), "f1", &paddr_s);
    wait_for("restarted f1 catches up from its cursor", || {
        caught_up(&mut client, "f1", 0)
    });
    let mut f1c = Client::connect(f1addr2).unwrap();
    assert_eq!(
        f1c.hello().unwrap().get("epoch").and_then(Json::as_u64),
        Some(0),
        "cursor resume must not bump the follower's epoch"
    );

    // kill -9 the primary and promote f1 — the runbook's failover step,
    // driven through the real `cerfix promote` CLI.
    let view_before = client.get_session(open.session).unwrap();
    let audit_before = client.audit_read_all(64).unwrap();
    assert!(!audit_before.is_empty());
    primary.kill().expect("kill -9 primary");
    let _ = primary.wait();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cerfix"))
        .args(["promote", "--addr", &f1addr2.to_string()])
        .output()
        .expect("run cerfix promote");
    assert!(out.status.success(), "promote failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("promoted to primary"), "{stdout}");
    assert_eq!(
        f1c.hello().unwrap().get("role").and_then(Json::as_str),
        Some("primary")
    );

    // The promoted follower serves byte-identical audit.read and the
    // open session byte-identically.
    let audit_after = f1c.audit_read_all(64).unwrap();
    assert_eq!(audit_after, audit_before);
    let after = f1c
        .get_session(open.session)
        .expect("open session survived");
    assert_eq!(after.tuple, view_before.tuple);
    assert_eq!(after.rounds, view_before.rounds);
    assert_eq!(after.validated, view_before.validated);

    // Re-point the surviving follower at the new primary (its cursor is
    // from the old epoch, so it resyncs from the promote snapshot), and
    // the cluster takes quorum-acked commits again.
    let mut f2 = f2;
    f2.kill().expect("stop f2 for re-pointing");
    let _ = f2.wait();
    let f1addr2_s = f1addr2.to_string();
    let (mut f2, f2addr2) = spawn_follower(&dir.join("f2"), "f2", &f1addr2_s);
    let promoted_epoch = f1c
        .hello()
        .unwrap()
        .get("epoch")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(promoted_epoch >= 1, "promotion bumps the epoch");
    wait_for("f2 re-points at the promoted primary", || {
        caught_up(&mut f1c, "f2", promoted_epoch)
    });
    let mut f2c = Client::connect(f2addr2).unwrap();
    assert_eq!(
        f2c.hello().unwrap().get("epoch").and_then(Json::as_u64),
        Some(promoted_epoch)
    );
    commit_row(&mut f1c, "k15");
    let finished = f1c
        .validate(open.session, vec![("note".into(), Value::str("n"))])
        .unwrap();
    assert!(finished.is_complete());
    f1c.commit(open.session).unwrap();

    let _ = f2c.shutdown();
    let _ = f2.wait();
    let _ = f1c.shutdown();
    let _ = f1.wait();
    cleanup(&dir);
}
