//! Protocol fuzz pass: the per-line request path must be total.
//!
//! The contract under test — for ANY single input line (arbitrary
//! bytes, truncated JSON, deeply nested JSON, valid requests with junk
//! fields, hostile `deadline_ms` values), the service's line handler
//! must (1) never panic, and (2) produce exactly one well-formed JSON
//! object in response: an `ok` boolean, an `error` string when not ok,
//! and no embedded newline that would desynchronize a pipelined
//! client. This exercises the whole stack the wire sees: the
//! zero-allocation `scan_line` pre-scan (hot-path detection, op and
//! deadline extraction), the hot-path slice parser, the tree parser
//! fallback and the admission/deadline checks in front of dispatch.

use cerfix::MasterData;
use cerfix_relation::{RelationBuilder, Schema};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use cerfix_server::wire::Json;
use cerfix_server::{CleaningService, ServiceConfig};
use proptest::test_runner::{Config, TestRunner};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

fn kv_service() -> CleaningService {
    let input = Schema::of_strings("in", ["key", "val"]).unwrap();
    let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
    let mut builder = RelationBuilder::new(ms.clone());
    for i in 0..4 {
        builder = builder.row_strs([format!("k{i}"), format!("v{i}")]);
    }
    let master = MasterData::new(builder.build().unwrap());
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    rules
        .add(
            EditingRule::new(
                "kv",
                &input,
                &ms,
                vec![(0, 0)],
                vec![(1, 1)],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
    CleaningService::new(
        Arc::new(master),
        Arc::new(rules),
        ServiceConfig {
            workers: 1,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
    )
}

/// Every op the protocol knows, plus lookalikes that must fall through
/// to the unknown-op error.
const OPS: &[&str] = &[
    "hello",
    "session.create",
    "session.get",
    "session.validate",
    "session.fix",
    "session.commit",
    "session.abort",
    "clean",
    "regions",
    "check",
    "audit.read",
    "rules.reload",
    "master.append",
    "metrics",
    "stats",
    "metrics.prom",
    "metrics.history",
    "trace.read",
    "log.read",
    "health",
    "config.set",
    "cluster.status",
    "replica.sync",
    "replica.promote",
    "scrub",
    "server.drain",
    "",
    "SESSION.GET",
    "session.get ",
    "warp",
];

/// A scalar JSON fragment, sometimes of the wrong type for wherever it
/// lands.
fn scalar(rng: &mut StdRng) -> String {
    match rng.gen_range(0..7u32) {
        0 => format!("{}", rng.gen_range(-1_000_000i64..1_000_000)),
        1 => format!("{:.3}", rng.gen_range(-1e9..1e9)),
        2 => "null".into(),
        3 => "true".into(),
        4 => "false".into(),
        5 => format!("\"s{}\"", rng.gen_range(0..100u32)),
        // Escapes and non-ASCII exercise the unescape paths.
        _ => "\"\\u00e9\\n\\\"\\\\\"".into(),
    }
}

/// A syntactically valid request-shaped object with a real op and a
/// grab-bag of plausible-to-hostile fields.
fn valid_shape(rng: &mut StdRng) -> String {
    let op = OPS[rng.gen_range(0..OPS.len())];
    let mut line = format!("{{\"op\":\"{op}\"");
    for _ in 0..rng.gen_range(0..4u32) {
        let key = match rng.gen_range(0..8u32) {
            0 => "session",
            1 => "tuple",
            2 => "validations",
            3 => "id",
            4 => "deadline_ms",
            5 => "wait_ms",
            6 => "key",
            _ => "limit",
        };
        let value = match rng.gen_range(0..3u32) {
            0 => scalar(rng),
            1 => format!("[{},{}]", scalar(rng), scalar(rng)),
            _ => format!("{{\"k\":{}}}", scalar(rng)),
        };
        line.push_str(&format!(",\"{key}\":{value}"));
    }
    line.push('}');
    line
}

/// Nested arrays/objects `depth` levels deep — the parser's recursion
/// cap must answer with an error, not a stack overflow.
fn deeply_nested(rng: &mut StdRng) -> String {
    let depth = rng.gen_range(1..200usize);
    let mut line = String::from("{\"op\":\"session.create\",\"tuple\":");
    if rng.gen_bool(0.5) {
        line.push_str(&"[".repeat(depth));
        line.push('1');
        line.push_str(&"]".repeat(depth));
    } else {
        line.push_str(&"{\"a\":".repeat(depth));
        line.push('1');
        line.push_str(&"}".repeat(depth));
    }
    line.push('}');
    line
}

/// Printable-ish garbage that is rarely valid JSON.
fn arbitrary_line(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..120usize);
    (0..len)
        .map(|_| {
            // Bias toward JSON structural characters so the scanner's
            // state machine sees realistic near-miss shapes.
            match rng.gen_range(0..4u32) {
                0 => *b"{}[]\":,\\".get(rng.gen_range(0..8usize)).unwrap() as char,
                1 => rng.gen_range(b'a'..=b'z') as char,
                2 => rng.gen_range(b'0'..=b'9') as char,
                _ => char::from_u32(rng.gen_range(0x20..0x2FF0u32)).unwrap_or('?'),
            }
        })
        .collect()
}

fn fuzz_line(rng: &mut StdRng) -> String {
    let mut line = match rng.gen_range(0..4u32) {
        0 => arbitrary_line(rng),
        1 => valid_shape(rng),
        2 => deeply_nested(rng),
        // Truncations of valid shapes: every prefix must still get a
        // well-formed error response.
        _ => {
            let full = valid_shape(rng);
            let cut = rng.gen_range(0..=full.len());
            let mut prefix = full;
            while !prefix.is_char_boundary(prefix.len().min(cut)) {
                prefix.pop();
            }
            prefix.truncate(cut.min(prefix.len()));
            prefix
        }
    };
    if rng.gen_bool(0.1) {
        line.push_str("   ");
    }
    line
}

/// The response invariant every line must satisfy.
fn assert_well_formed(line: &str, response: &str) {
    assert!(
        !response.contains('\n'),
        "response embeds a newline for {line:?}: {response:?}"
    );
    let json = Json::parse(response)
        .unwrap_or_else(|e| panic!("unparseable response for {line:?}: {response:?} ({e})"));
    let ok = json.get("ok").and_then(Json::as_bool);
    assert!(ok.is_some(), "no `ok` bool for {line:?}: {response:?}");
    if ok == Some(false) {
        assert!(
            json.get("error").and_then(Json::as_str).is_some(),
            "error response without `error` string for {line:?}: {response:?}"
        );
    }
}

#[test]
fn any_line_gets_exactly_one_well_formed_response() {
    let service = kv_service();
    let mut runner = TestRunner::new(
        Config::with_cases(2000),
        "any_line_gets_exactly_one_well_formed_response",
    );
    runner.run_cases(|rng| {
        let line = fuzz_line(rng);
        if line.trim().is_empty() {
            // Blank lines are the one no-response case (the connection
            // loops skip them before dispatch).
            return Ok(());
        }
        let response = service.handle_line(line.trim());
        assert_well_formed(&line, &response);
        Ok(())
    });
}

#[test]
fn hostile_deadlines_are_rejected_or_honored_never_fatal() {
    let service = kv_service();
    // deadline_ms: 0 is deterministically expired; junk types must be
    // ignored (absent deadline), and huge values must not overflow.
    for (line, expect_expired) in [
        (r#"{"op":"regions","deadline_ms":0}"#, true),
        (
            r#"{"op":"regions","deadline_ms":18446744073709551615}"#,
            false,
        ),
        (r#"{"op":"regions","deadline_ms":-5}"#, false),
        (r#"{"op":"regions","deadline_ms":"soon"}"#, false),
        (r#"{"op":"regions","deadline_ms":[0]}"#, false),
        (r#"{"op":"regions","deadline_ms":1.5}"#, false),
        (r#"{"op":"hello","deadline_ms":0}"#, true),
    ] {
        let response = service.handle_line(line);
        assert_well_formed(line, &response);
        assert_eq!(
            response.contains("deadline_exceeded"),
            expect_expired,
            "{line} → {response}"
        );
    }
    let metrics = service.metrics();
    assert_eq!(metrics.requests_shed_deadline, 2);
}
