//! Fault-injection harness for journal-tailing replication and
//! quorum-acknowledged durability.
//!
//! The replication claim under test: a follower that tails the primary's
//! journal through `replica.sync` converges on exactly the primary's
//! state (CerFix's correcting process is deterministic, so journal
//! replay *is* state-machine replication), and a commit acknowledged
//! under `--quorum` is never lost — not by kill -9 of the primary, not
//! by a torn/duplicated/partitioned replication link, not by a slow
//! follower. Four angles:
//!
//! 1. **kill -9 of the primary mid-burst**: the real `cerfix serve
//!    --quorum 2` binary is SIGKILLed while a client streams commits;
//!    every commit that was acknowledged must be present (and the open
//!    session byte-identical) on the promoted follower.
//! 2. **Partition proxy**: a delay/drop/garbage/duplicate TCP proxy sits
//!    between follower and primary. The follower must survive torn
//!    stream bytes, a duplicated response line and a full partition,
//!    then resume from its cursor — same epoch, no full resync, no
//!    double-applied events.
//! 3. **Slow follower**: with a short `--ack-timeout-ms`, a delayed link
//!    turns commits into `quorum_timeout` errors that are still applied
//!    and locally durable; once the link heals the follower drains its
//!    backlog from the cursor and the next commit acks normally.
//! 4. **Random interleavings** (proptest): random workloads interleaved
//!    with primary snapshots (forcing snapshot resync) run against an
//!    in-process primary + follower pair; the follower must match the
//!    primary, and the primary an in-memory oracle, exactly.
//! 5. **Cluster-wide observability**: one `cluster.status` request to
//!    any member of a 3-node group answers for all three nodes, and a
//!    follower partitioned past `--max-lag` flips exactly its own
//!    readiness — visible in `cluster.status`, the `cerfix_healthy`
//!    gauge and the structured diagnostic log.

use cerfix_gen::{make_workload, uk, NoiseSpec};
use cerfix_relation::Value;
use cerfix_server::wire::Json;
use cerfix_server::{
    CleaningService, Client, Frontend, LocalClient, Request, RetryBudget, Server, ServiceConfig,
    SessionView, StorageConfig, TcpTransport,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cerfix-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_fixture(dir: &Path) -> (PathBuf, PathBuf) {
    let master = dir.join("master.csv");
    let mut csv = String::from("key,val\n");
    for i in 0..20 {
        csv.push_str(&format!("k{i},v{i}\n"));
    }
    std::fs::write(&master, csv).unwrap();
    let rules = dir.join("rules.dsl");
    std::fs::write(&rules, "er kv: match key=key fix val:=val when ()\n").unwrap();
    (master, rules)
}

fn row(k: &str, v: &str, n: &str) -> Vec<Value> {
    vec![Value::str(k), Value::str(v), Value::str(n)]
}

/// Spawn the real `cerfix serve` binary with replication flags and parse
/// its listen address from the banner.
fn spawn_node(
    data_dir: &Path,
    master: &Path,
    rules: &Path,
    frontend: &str,
    extra: &[&str],
) -> (Child, SocketAddr) {
    let mut args = vec![
        "serve",
        "--master",
        master.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--input-header",
        "key,val,note",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--frontend",
        frontend,
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--flush-interval-ms",
        "1",
    ];
    args.extend_from_slice(extra);
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_cerfix"))
        .args(&args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn cerfix serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read server banner");
        assert!(n > 0, "server exited before announcing its address");
        if let Some(rest) = line.split("listening on ").nth(1) {
            let addr = rest.split_whitespace().next().unwrap();
            break addr.parse().expect("parse server addr");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// `(epoch, offset, lag_events)` for follower `name` from a primary's
/// `metrics` response.
fn follower_stat(metrics: &Json, name: &str) -> Option<(u64, u64, u64)> {
    let f = metrics.get("replication")?.get(name)?;
    Some((
        f.get("epoch")?.as_u64()?,
        f.get("offset")?.as_u64()?,
        f.get("lag_events")?.as_u64()?,
    ))
}

fn caught_up(metrics: &Json, name: &str, epoch: u64) -> bool {
    matches!(follower_stat(metrics, name), Some((e, _, lag)) if e == epoch && lag == 0)
}

/// Create → validate (true key + note) → quorum/local commit of one row.
fn commit_one(client: &mut Client<TcpTransport>, k: &str) -> u64 {
    let view = client.create_session(row(k, "X", "note")).unwrap();
    client
        .validate(
            view.session,
            vec![
                ("key".into(), Value::str(k)),
                ("note".into(), Value::str("note")),
            ],
        )
        .unwrap();
    client.commit(view.session).unwrap();
    view.session
}

// ---------------------------------------------------------------------
// A fault-injecting TCP proxy: the follower dials the proxy, the proxy
// dials the primary, and the primary→follower direction can be delayed,
// torn, duplicated or cut entirely.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Debug)]
enum ProxyMode {
    /// Pass bytes through untouched.
    Forward,
    /// Sleep this many milliseconds before relaying each server chunk.
    Delay(u64),
    /// Full partition: kill live connections, refuse new ones.
    Partition,
    /// Replace the next server chunk with garbage bytes (a torn stream),
    /// then revert to `Forward`.
    GarbageOnce,
    /// Send the next complete server response line twice (a duplicated
    /// packet on a faulty network), then revert to `Forward`.
    DuplicateOnce,
}

struct Proxy {
    addr: SocketAddr,
    mode: Arc<Mutex<ProxyMode>>,
    stop: Arc<AtomicBool>,
}

impl Proxy {
    fn set(&self, mode: ProxyMode) {
        *self.mode.lock().unwrap() = mode;
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

fn start_proxy(upstream: SocketAddr) -> Proxy {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    listener.set_nonblocking(true).unwrap();
    let mode = Arc::new(Mutex::new(ProxyMode::Forward));
    let stop = Arc::new(AtomicBool::new(false));
    let (accept_mode, accept_stop) = (Arc::clone(&mode), Arc::clone(&stop));
    std::thread::spawn(move || {
        while !accept_stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((client, _)) => {
                    // A partitioned proxy accepts and instantly drops:
                    // the follower sees EOF, like a reset middlebox.
                    if *accept_mode.lock().unwrap() == ProxyMode::Partition {
                        continue;
                    }
                    let Ok(server) = TcpStream::connect(upstream) else {
                        continue;
                    };
                    let (c2, s2) = (client.try_clone().unwrap(), server.try_clone().unwrap());
                    let (m1, st1) = (Arc::clone(&accept_mode), Arc::clone(&accept_stop));
                    let (m2, st2) = (Arc::clone(&accept_mode), Arc::clone(&accept_stop));
                    // follower → primary: plain relay (requests are never
                    // faulted; the interesting faults hit responses).
                    std::thread::spawn(move || pump(client, server, m1, st1, false));
                    // primary → follower: faulted relay.
                    std::thread::spawn(move || pump(s2, c2, m2, st2, true));
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    Proxy { addr, mode, stop }
}

fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    mode: Arc<Mutex<ProxyMode>>,
    stop: Arc<AtomicBool>,
    fault_side: bool,
) {
    // Short read timeouts let the pump notice Partition/stop promptly.
    let _ = from.set_read_timeout(Some(Duration::from_millis(25)));
    let mut buf = [0u8; 8192];
    let mut held: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::Relaxed) || *mode.lock().unwrap() == ProxyMode::Partition {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        let current = if fault_side {
            *mode.lock().unwrap()
        } else {
            ProxyMode::Forward
        };
        let result = match current {
            ProxyMode::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                to.write_all(&buf[..n])
            }
            ProxyMode::GarbageOnce => {
                // Drop the real chunk and tear the stream instead: a
                // line the follower must reject, then resync past.
                *mode.lock().unwrap() = ProxyMode::Forward;
                to.write_all(b"{ torn \xff\xfe stream bytes\n")
            }
            ProxyMode::DuplicateOnce => {
                // Hold bytes until one full response line arrives, then
                // deliver it twice — the second copy races the response
                // to the follower's *next* poll.
                held.extend_from_slice(&buf[..n]);
                if let Some(pos) = held.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = held.drain(..=pos).collect();
                    *mode.lock().unwrap() = ProxyMode::Forward;
                    let rest = std::mem::take(&mut held);
                    to.write_all(&line)
                        .and_then(|()| to.write_all(&line))
                        .and_then(|()| to.write_all(&rest))
                } else {
                    Ok(())
                }
            }
            _ => to.write_all(&buf[..n]),
        };
        if result.is_err() {
            break;
        }
    }
    let _ = from.shutdown(std::net::Shutdown::Both);
    let _ = to.shutdown(std::net::Shutdown::Both);
}

// ---------------------------------------------------------------------
// 1. kill -9 of the primary mid-burst under --quorum 2.
// ---------------------------------------------------------------------

#[test]
fn kill_nine_primary_mid_burst_loses_no_acked_commit() {
    let dir = tmp_dir("kill9-quorum");
    let (master, rules) = write_fixture(&dir);
    let (primary, paddr) = spawn_node(
        &dir.join("p"),
        &master,
        &rules,
        "threads",
        &[
            "--quorum",
            "2",
            "--ack-timeout-ms",
            "8000",
            "--advertise",
            "primary",
        ],
    );
    let paddr_s = paddr.to_string();
    let (mut follower, faddr) = spawn_node(
        &dir.join("f"),
        &master,
        &rules,
        "threads",
        &["--replicate-from", &paddr_s, "--advertise", "f1"],
    );

    let mut client = Client::connect(paddr).expect("connect primary");
    wait_for("follower registration", || {
        client.metrics().is_ok_and(|m| caught_up(&m, "f1", 0))
    });

    // An open session that must survive failover byte-identically.
    let open = client.create_session(row("k3", "WRONG", "n")).unwrap();
    let fixed = client
        .validate(open.session, vec![("key".into(), Value::str("k3"))])
        .unwrap();
    assert_eq!(fixed.tuple[1], Value::str("v3"));

    // Phase 1: a settled burst of quorum-acked commits.
    let mut acked: Vec<u64> = (0..10)
        .map(|i| commit_one(&mut client, &format!("k{i}")))
        .collect();
    let view_before = client.get_session(open.session).unwrap();
    let audit_before = client.audit_read_all(64).unwrap();
    assert!(!audit_before.is_empty());

    // Phase 2: keep committing while a killer thread SIGKILLs the
    // primary mid-burst. Only responses that came back count as acked.
    let killer = std::thread::spawn(move || {
        let mut primary = primary;
        std::thread::sleep(Duration::from_millis(150));
        primary.kill().expect("kill -9 primary");
        let _ = primary.wait();
    });
    while let Ok(view) = client.create_session(row("k7", "Y", "note")) {
        let validations = vec![
            ("key".into(), Value::str("k7")),
            ("note".into(), Value::str("note")),
        ];
        if client.validate(view.session, validations).is_err() {
            break;
        }
        match client.commit(view.session) {
            Ok(_) => acked.push(view.session),
            Err(_) => break,
        }
    }
    killer.join().unwrap();
    assert!(
        acked.len() > 10,
        "the burst landed some commits before the kill"
    );

    // Promote the follower; the epoch bump fences the dead primary.
    let mut fc = Client::connect(faddr).expect("connect follower");
    let resp = fc.request(&Request::ReplicaPromote).unwrap();
    assert_eq!(resp.get("role").and_then(Json::as_str), Some("primary"));
    assert!(resp.get("epoch").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(
        fc.hello().unwrap().get("role").and_then(Json::as_str),
        Some("primary")
    );

    // Zero acked commits lost: every acknowledged session is committed
    // (gone from the live set) and left its audit trail behind.
    let audit_after = fc.audit_read_all(64).unwrap();
    for &id in &acked {
        assert!(
            fc.get_session(id).is_err(),
            "acked commit {id} resurfaced as a live session"
        );
        assert!(
            audit_after.iter().any(|r| r.tuple == id),
            "acked commit {id} lost its audit records"
        );
    }
    // Replicated provenance is byte-identical up to the failover point.
    assert_eq!(&audit_after[..audit_before.len()], &audit_before[..]);

    // The open session survived byte-identically and still completes on
    // the new primary (local fsync: the follower ran without --quorum).
    let after = fc
        .get_session(open.session)
        .expect("open session survived failover");
    assert_eq!(after.tuple, view_before.tuple);
    assert_eq!(after.rounds, view_before.rounds);
    assert_eq!(after.validated, view_before.validated);
    assert_eq!(after.status, view_before.status);
    let finished = fc
        .validate(open.session, vec![("note".into(), Value::str("n"))])
        .unwrap();
    assert!(finished.is_complete());
    fc.commit(open.session).unwrap();

    let _ = fc.shutdown();
    let _ = follower.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 2. Torn bytes, duplicated responses and a full partition.
// ---------------------------------------------------------------------

#[test]
fn partitioned_follower_resumes_from_cursor_without_resync() {
    let dir = tmp_dir("partition");
    let (master, rules) = write_fixture(&dir);
    let (mut primary, paddr) = spawn_node(
        &dir.join("p"),
        &master,
        &rules,
        "epoll",
        &["--advertise", "primary"],
    );
    let proxy = start_proxy(paddr);
    let proxy_s = proxy.addr.to_string();
    let (mut follower, faddr) = spawn_node(
        &dir.join("f"),
        &master,
        &rules,
        "epoll",
        &["--replicate-from", &proxy_s, "--advertise", "f1"],
    );

    let mut client = Client::connect(paddr).unwrap();
    // Zero retry budget: this test asserts the follower's typed
    // `not_primary` refusal, which a default client would transparently
    // follow to the primary instead of surfacing.
    let mut fc = Client::connect(faddr)
        .unwrap()
        .with_retry_budget(RetryBudget::new(0, 0.0));

    // Healthy link: the follower catches up and serves reads only.
    commit_one(&mut client, "k1");
    wait_for("initial catch-up", || {
        client.metrics().is_ok_and(|m| caught_up(&m, "f1", 0))
    });
    let err = fc.create_session(row("k2", "x", "y")).unwrap_err();
    assert!(err.to_string().contains("not_primary"), "{err}");
    let hello = fc.hello().unwrap();
    assert_eq!(hello.get("role").and_then(Json::as_str), Some("follower"));
    assert_eq!(
        hello.get("primary").and_then(Json::as_str),
        Some(proxy_s.as_str())
    );
    let prom = fc.request(&Request::MetricsProm).unwrap();
    let body = prom.get("body").and_then(Json::as_str).unwrap();
    assert!(body.contains("cerfix_role{role=\"follower\"} 1"), "{body}");

    // Torn stream bytes: the follower rejects the garbage line,
    // reconnects, and resumes from its cursor.
    proxy.set(ProxyMode::GarbageOnce);
    commit_one(&mut client, "k2");
    wait_for("catch-up after torn bytes", || {
        *proxy.mode.lock().unwrap() == ProxyMode::Forward
            && client.metrics().is_ok_and(|m| caught_up(&m, "f1", 0))
    });

    // Full partition: commits keep landing on the primary, lag grows.
    proxy.set(ProxyMode::Partition);
    std::thread::sleep(Duration::from_millis(100));
    let part_ids: Vec<u64> = (0..5)
        .map(|i| commit_one(&mut client, &format!("k{}", 4 + i)))
        .collect();
    let m = client.metrics().unwrap();
    let (_, _, lag) = follower_stat(&m, "f1").unwrap();
    assert!(lag > 0, "partitioned follower should lag, got {lag}");

    // Heal into DuplicateOnce: the first post-heal sync response is a
    // real event batch, delivered twice. The stale second copy must be
    // rejected by the `from` cursor echo, not re-applied.
    proxy.set(ProxyMode::DuplicateOnce);
    wait_for("catch-up after partition + duplicated response", || {
        client.metrics().is_ok_and(|m| caught_up(&m, "f1", 0))
    });

    // Same epoch on both sides: the follower resumed from its cursor
    // every time — no snapshot resync was ever needed.
    let pepoch = client.hello().unwrap().get("epoch").and_then(Json::as_u64);
    let fepoch = fc.hello().unwrap().get("epoch").and_then(Json::as_u64);
    assert_eq!(pepoch, Some(0));
    assert_eq!(fepoch, Some(0));

    // And nothing was double-applied: provenance is byte-identical and
    // committed sessions are gone on the follower too.
    let pa = client.audit_read_all(64).unwrap();
    let fa = fc.audit_read_all(64).unwrap();
    assert_eq!(pa, fa);
    for id in part_ids {
        assert!(fc.get_session(id).is_err());
    }

    let _ = fc.shutdown();
    let _ = client.shutdown();
    let _ = follower.wait();
    let _ = primary.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 3. Slow follower: quorum_timeout commits stay durable, then recover.
// ---------------------------------------------------------------------

#[test]
fn slow_follower_times_out_quorum_commits_then_recovers() {
    let dir = tmp_dir("slow-follower");
    let (master, rules) = write_fixture(&dir);
    let (mut primary, paddr) = spawn_node(
        &dir.join("p"),
        &master,
        &rules,
        "threads",
        &[
            "--quorum",
            "2",
            "--ack-timeout-ms",
            "400",
            "--advertise",
            "primary",
        ],
    );
    let proxy = start_proxy(paddr);
    let proxy_s = proxy.addr.to_string();
    let (mut follower, faddr) = spawn_node(
        &dir.join("f"),
        &master,
        &rules,
        "threads",
        &["--replicate-from", &proxy_s, "--advertise", "slow"],
    );
    let mut client = Client::connect(paddr).unwrap();
    wait_for("follower registration", || {
        client.metrics().is_ok_and(|m| caught_up(&m, "slow", 0))
    });

    // Healthy link: a quorum commit acks within the deadline.
    commit_one(&mut client, "k1");

    // Slow link: acks arrive after the deadline → quorum_timeout, but
    // the commit is applied and locally durable.
    proxy.set(ProxyMode::Delay(1500));
    let view = client.create_session(row("k9", "X", "note")).unwrap();
    client
        .validate(
            view.session,
            vec![
                ("key".into(), Value::str("k9")),
                ("note".into(), Value::str("note")),
            ],
        )
        .unwrap();
    let err = client.commit(view.session).unwrap_err();
    assert!(err.to_string().contains("quorum_timeout"), "{err}");
    assert!(
        client.get_session(view.session).is_err(),
        "timed-out commit must still be applied locally"
    );
    let m = client.metrics().unwrap();
    assert!(m.get("quorum_timeouts").and_then(Json::as_u64).unwrap() >= 1);
    let (_, _, lag) = follower_stat(&m, "slow").unwrap();
    assert!(lag > 0, "slow follower should be behind, got lag {lag}");

    // Heal: the follower drains its backlog from the cursor (including
    // the timed-out commit) and the next commit acks normally again.
    proxy.set(ProxyMode::Forward);
    wait_for("slow follower drains its backlog", || {
        client.metrics().is_ok_and(|m| caught_up(&m, "slow", 0))
    });
    commit_one(&mut client, "k2");

    let mut fc = Client::connect(faddr).unwrap();
    assert!(fc.get_session(view.session).is_err());
    let pa = client.audit_read_all(64).unwrap();
    let fa = fc.audit_read_all(64).unwrap();
    assert_eq!(pa, fa, "timed-out commit replicated once the link healed");

    // The ack histogram and lag gauges are on the exposition surface.
    let prom = client.request(&Request::MetricsProm).unwrap();
    let body = prom.get("body").and_then(Json::as_str).unwrap();
    assert!(
        body.contains("cerfix_commit_ack_duration_seconds"),
        "{body}"
    );
    assert!(body.contains("cerfix_replication_lag_seconds"), "{body}");
    assert!(body.contains("cerfix_quorum_timeouts_total"), "{body}");

    // The time a commit spent blocked on follower acks is attributed to
    // its own `quorum_ns` span stage, not lumped into dispatch.
    let trace = client
        .request(&Request::TraceRead { limit: Some(64) })
        .unwrap();
    let spans = trace.get("spans").and_then(Json::as_arr).unwrap();
    let commit_span = spans
        .iter()
        .find(|s| s.get("op").and_then(Json::as_str) == Some("session.commit"))
        .expect("a commit span in the trace window");
    assert!(
        commit_span.get("quorum_ns").and_then(Json::as_u64).unwrap() > 0,
        "quorum wait attributed: {commit_span:?}"
    );

    let _ = fc.shutdown();
    let _ = client.shutdown();
    let _ = follower.wait();
    let _ = primary.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 5. Federated cluster.status and max-lag readiness.
// ---------------------------------------------------------------------

/// Reserve an ephemeral port so a node can be spawned with an
/// `--advertise` address that actually dials back to it.
fn reserved_addr() -> String {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .to_string()
}

#[test]
fn cluster_status_reports_all_three_nodes_from_any_node() {
    let dir = tmp_dir("cluster-status");
    let (master, rules) = write_fixture(&dir);
    let p = reserved_addr();
    let f1 = reserved_addr();
    let f2 = reserved_addr();
    let (mut primary, paddr) = spawn_node(
        &dir.join("p"),
        &master,
        &rules,
        "threads",
        &["--addr", &p, "--advertise", &p],
    );
    let paddr_s = paddr.to_string();
    let (mut follower1, _) = spawn_node(
        &dir.join("f1"),
        &master,
        &rules,
        "threads",
        &[
            "--replicate-from",
            &paddr_s,
            "--addr",
            &f1,
            "--advertise",
            &f1,
        ],
    );
    let (mut follower2, _) = spawn_node(
        &dir.join("f2"),
        &master,
        &rules,
        "epoll",
        &[
            "--replicate-from",
            &paddr_s,
            "--addr",
            &f2,
            "--advertise",
            &f2,
        ],
    );

    let mut client = Client::connect(paddr).expect("connect primary");
    wait_for("both followers caught up", || {
        client
            .metrics()
            .is_ok_and(|m| caught_up(&m, &f1, 0) && caught_up(&m, &f2, 0))
    });
    commit_one(&mut client, "k1");
    commit_one(&mut client, "k2");

    // Any member answers for the whole group.
    for target in [&p, &f1, &f2] {
        let mut c = Client::connect(target.as_str()).expect("connect target");
        let status = c
            .request(&Request::ClusterStatus { fanout: true })
            .expect("cluster.status");
        assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
        let nodes = status.get("nodes").and_then(Json::as_arr).unwrap();
        assert_eq!(nodes.len(), 3, "asked {target}: {status:?}");
        let mut primaries = 0;
        let mut followers = 0;
        for expected in [&p, &f1, &f2] {
            let node = nodes
                .iter()
                .find(|n| n.get("addr").and_then(Json::as_str) == Some(expected))
                .unwrap_or_else(|| panic!("asked {target}: no entry for {expected}"));
            let ctx = format!("asked {target} about {expected}");
            assert_eq!(node.get("ok").and_then(Json::as_bool), Some(true), "{ctx}");
            assert_eq!(
                node.get("live").and_then(Json::as_bool),
                Some(true),
                "{ctx}"
            );
            assert_eq!(
                node.get("ready").and_then(Json::as_bool),
                Some(true),
                "{ctx}"
            );
            assert_eq!(node.get("epoch").and_then(Json::as_u64), Some(0), "{ctx}");
            assert!(
                node.get("lag_seconds").and_then(Json::as_f64).is_some(),
                "{ctx}"
            );
            assert!(
                node.get("requests").and_then(Json::as_u64).is_some(),
                "{ctx}"
            );
            assert!(
                node.get("req_per_sec").and_then(Json::as_f64).is_some(),
                "{ctx}"
            );
            match node.get("role").and_then(Json::as_str) {
                Some("primary") => primaries += 1,
                Some("follower") => followers += 1,
                other => panic!("{ctx}: unexpected role {other:?}"),
            }
        }
        assert_eq!((primaries, followers), (1, 2), "asked {target}");
    }

    let _ = client.shutdown();
    for target in [&f1, &f2] {
        if let Ok(mut c) = Client::connect(target.as_str()) {
            let _ = c.shutdown();
        }
    }
    let _ = primary.wait();
    let _ = follower1.wait();
    let _ = follower2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lagging_follower_past_max_lag_flips_exactly_its_readiness() {
    let dir = tmp_dir("max-lag");
    let (master, rules) = write_fixture(&dir);
    let p = reserved_addr();
    let f = reserved_addr();
    let (mut primary, paddr) = spawn_node(
        &dir.join("p"),
        &master,
        &rules,
        "threads",
        &["--addr", &p, "--advertise", &p],
    );
    let proxy = start_proxy(paddr);
    let proxy_s = proxy.addr.to_string();
    let (mut follower, faddr) = spawn_node(
        &dir.join("f"),
        &master,
        &rules,
        "threads",
        &[
            "--replicate-from",
            &proxy_s,
            "--addr",
            &f,
            "--advertise",
            &f,
            "--max-lag",
            "1",
        ],
    );
    let mut client = Client::connect(paddr).unwrap();
    let mut fc = Client::connect(faddr).unwrap();
    wait_for("follower caught up", || {
        client.metrics().is_ok_and(|m| caught_up(&m, &f, 0))
    });

    // Healthy link: the follower is ready and inside its lag budget.
    let health = fc.request(&Request::Health).unwrap();
    assert_eq!(health.get("role").and_then(Json::as_str), Some("follower"));
    assert_eq!(health.get("ready").and_then(Json::as_bool), Some(true));
    assert_eq!(
        health.get("max_lag_seconds").and_then(Json::as_f64),
        Some(1.0)
    );

    // Partition the replication link and keep writing on the primary.
    proxy.set(ProxyMode::Partition);
    commit_one(&mut client, "k5");
    wait_for("readiness flip past max-lag", || {
        fc.request(&Request::Health)
            .is_ok_and(|h| h.get("ready").and_then(Json::as_bool) == Some(false))
    });
    let sick = fc.request(&Request::Health).unwrap();
    assert_eq!(sick.get("live").and_then(Json::as_bool), Some(true));
    assert!(sick.get("lag_seconds").and_then(Json::as_f64).unwrap() > 1.0);
    let causes: Vec<String> = sick
        .get("causes")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|c| c.as_str().map(str::to_string))
        .collect();
    assert!(
        causes.iter().any(|c| c.contains("past max-lag")),
        "lag named as the cause: {causes:?}"
    );

    // The flip is visible in the follower's own cluster.status entry…
    let status = fc
        .request(&Request::ClusterStatus { fanout: false })
        .unwrap();
    let own = &status.get("nodes").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(own.get("ready").and_then(Json::as_bool), Some(false));

    // …and in the primary's federated view: exactly the lagging node.
    let status = client
        .request(&Request::ClusterStatus { fanout: true })
        .unwrap();
    let nodes = status.get("nodes").and_then(Json::as_arr).unwrap();
    for node in nodes {
        let expect_ready = node.get("role").and_then(Json::as_str) == Some("primary");
        assert_eq!(
            node.get("ready").and_then(Json::as_bool),
            Some(expect_ready),
            "only the lagging follower flips: {node:?}"
        );
    }

    // …and as the cerfix_healthy gauge on the follower's exposition.
    let prom = fc.request(&Request::MetricsProm).unwrap();
    let body = prom.get("body").and_then(Json::as_str).unwrap();
    assert!(body.contains("cerfix_healthy 0"), "{body}");
    assert!(body.contains("cerfix_live 1"), "{body}");

    // …with the triggering cause in the structured log.
    let log = fc
        .request(&Request::LogRead {
            limit: Some(64),
            level: Some("warn".into()),
            subsystem: Some("health".into()),
        })
        .unwrap();
    let events = log.get("events").and_then(Json::as_arr).unwrap();
    assert!(
        events.iter().any(|e| e
            .get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("not ready") && m.contains("past max-lag"))),
        "log.read carries the readiness cause: {events:?}"
    );

    // Heal the link: the follower drains its backlog and recovers.
    proxy.set(ProxyMode::Forward);
    wait_for("readiness restored after heal", || {
        fc.request(&Request::Health)
            .is_ok_and(|h| h.get("ready").and_then(Json::as_bool) == Some(true))
    });

    let _ = fc.shutdown();
    let _ = client.shutdown();
    let _ = follower.wait();
    let _ = primary.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 4. Random fault interleavings against an in-process pair + oracle.
// ---------------------------------------------------------------------

fn manual_storage(dir: &Path) -> StorageConfig {
    let mut cfg = StorageConfig::new(dir);
    cfg.flush_interval = Duration::from_millis(1);
    cfg.snapshot_interval = Duration::from_secs(3600);
    cfg.snapshot_every_events = u64::MAX;
    cfg
}

fn assert_same_view(ctx: &str, a: &Option<SessionView>, b: &Option<SessionView>) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.tuple, b.tuple, "{ctx}: tuple");
            assert_eq!(a.rounds, b.rounds, "{ctx}: rounds");
            assert_eq!(a.validated, b.validated, "{ctx}: validated set");
            assert_eq!(a.status, b.status, "{ctx}: status");
        }
        (a, b) => panic!(
            "{ctx}: live-set divergence (present: {} vs {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

fn interleaving_case(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = uk::scenario(40, &mut rng);
    let master = Arc::new(scenario.master_data());
    let rules = Arc::new(scenario.rules.clone());
    let schema = scenario.input.clone();
    let pdir = tmp_dir(&format!("prop-p-{seed}"));
    let fdir = tmp_dir(&format!("prop-f-{seed}"));

    // Primary: quorum-2 commits over real TCP.
    let primary = CleaningService::with_storage(
        Arc::clone(&master),
        Arc::clone(&rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            cluster_size: 2,
            ack_timeout: Duration::from_secs(20),
            advertise: Some("primary".into()),
            ..ServiceConfig::default()
        },
        manual_storage(&pdir),
    )
    .unwrap();
    let server = Server::bind_with("127.0.0.1:0", primary.clone(), Frontend::Threads).unwrap();
    let paddr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || {
        let _ = server.run();
    });

    // Follower: tails the primary from inside this process.
    let follower = CleaningService::with_storage(
        Arc::clone(&master),
        Arc::clone(&rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            replicate_from: Some(paddr.to_string()),
            advertise: Some("f1".into()),
            ..ServiceConfig::default()
        },
        manual_storage(&fdir),
    )
    .unwrap();

    // Oracle: the same op sequence against a storage-free service.
    let oracle = CleaningService::new(
        Arc::clone(&master),
        Arc::clone(&rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
    );

    let mut client = Client::connect(paddr).unwrap();
    let mut oc = LocalClient::in_process(&oracle);

    let workload = make_workload(&scenario.universe, 16, &NoiseSpec::with_rate(0.4), &mut rng);
    let mut open: Vec<u64> = Vec::new();
    let mut truth_of: HashMap<u64, usize> = HashMap::new();
    let mut next_dirty = 0usize;
    let mut snapshots = 0u32;
    for _ in 0..rng.gen_range(16..28) {
        match rng.gen_range(0..10u32) {
            0..=3 => {
                let dirty = &workload.dirty[next_dirty % workload.dirty.len()];
                let a = client.create_session(dirty.values().to_vec()).unwrap();
                let b = oc.create_session(dirty.values().to_vec()).unwrap();
                assert_eq!(a.session, b.session, "id allocation must be deterministic");
                truth_of.insert(a.session, next_dirty % workload.dirty.len());
                next_dirty += 1;
                open.push(a.session);
            }
            4..=6 if !open.is_empty() => {
                let id = open[rng.gen_range(0..open.len())];
                let view = client.get_session(id).unwrap();
                if view.suggestion.is_empty() {
                    continue;
                }
                let truth = &workload.truth[truth_of[&id]];
                let validations: Vec<(String, Value)> = view
                    .suggestion
                    .iter()
                    .map(|name| {
                        let attr = schema.attr_id(name).unwrap();
                        (name.clone(), truth.get(attr).clone())
                    })
                    .collect();
                let a = client.validate(id, validations.clone()).unwrap();
                let b = oc.validate(id, validations).unwrap();
                assert_eq!(a.tuple, b.tuple, "seed {seed}: validate diverged");
            }
            7 if !open.is_empty() => {
                // Quorum-acked on the primary: the response itself is
                // the proof a durable copy exists on the follower.
                let id = open.swap_remove(rng.gen_range(0..open.len()));
                let a = client.commit(id).unwrap();
                let b = oc.commit(id).unwrap();
                assert_eq!(a.complete, b.complete, "seed {seed}: commit diverged");
                assert_eq!(a.tuple, b.tuple, "seed {seed}: committed tuple diverged");
            }
            8 if !open.is_empty() => {
                let id = open.swap_remove(rng.gen_range(0..open.len()));
                client.abort(id).unwrap();
                oc.abort(id).unwrap();
            }
            // Fault: snapshot the primary. The epoch bump strands the
            // follower's cursor and forces a snapshot resync.
            _ => {
                if primary.snapshot_now().unwrap() {
                    snapshots += 1;
                }
            }
        }
    }
    // Durability barrier: a final quorum-acked commit replicates
    // everything before it.
    let dirty = &workload.dirty[0];
    let bar_a = client.create_session(dirty.values().to_vec()).unwrap();
    let bar_b = oc.create_session(dirty.values().to_vec()).unwrap();
    assert_eq!(bar_a.session, bar_b.session);
    client.commit(bar_a.session).unwrap();
    oc.commit(bar_b.session).unwrap();

    let pepoch = primary
        .handle(&Request::Hello)
        .get("epoch")
        .and_then(Json::as_u64)
        .unwrap();
    wait_for(&format!("follower convergence (seed {seed})"), || {
        caught_up(&primary.handle(&Request::Metrics), "f1", pepoch)
    });

    // Follower ≡ primary ≡ oracle on every session id ever allocated.
    let mut pc = LocalClient::in_process(&primary);
    let mut fc = LocalClient::in_process(&follower);
    for id in 1..=bar_a.session {
        let o = oc.get_session(id).ok();
        let p = pc.get_session(id).ok();
        let f = fc.get_session(id).ok();
        assert_same_view(
            &format!("seed {seed}, session {id} (oracle vs primary)"),
            &o,
            &p,
        );
        assert_same_view(
            &format!("seed {seed}, session {id} (primary vs follower)"),
            &p,
            &f,
        );
    }
    assert_eq!(
        follower
            .handle(&Request::Hello)
            .get("epoch")
            .and_then(Json::as_u64),
        Some(pepoch),
        "seed {seed}: follower epoch tracks the primary across resyncs"
    );
    // Without snapshot faults the follower replayed every event live, so
    // even the audit stream is byte-identical. (A snapshot resync is a
    // state transfer: events truncated before the follower pulled them
    // leave no audit rows behind, so equality is only guaranteed then
    // for the post-resync suffix.)
    if snapshots == 0 {
        let pa = pc.audit_read_all(64).unwrap();
        let fa = fc.audit_read_all(64).unwrap();
        assert_eq!(pa, fa, "seed {seed}: audit streams diverged");
    }

    let _ = follower.handle(&Request::Shutdown); // stops the tail thread
    let _ = client.shutdown(); // stops the TCP server loop
    let _ = server_thread.join();
    std::thread::sleep(Duration::from_millis(50));
    drop(follower);
    drop(primary);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// No interleaving of faults (snapshot-forced resyncs here; crashes
    /// and partitions in the deterministic tests above) loses a
    /// quorum-acknowledged commit or diverges follower state from an
    /// oracle replay.
    #[test]
    fn random_fault_interleavings_converge(seed in 0u64..1_000_000) {
        interleaving_case(seed);
    }
}
