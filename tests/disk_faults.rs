//! Disk-fault harness for `cerfix-storage` + `cerfix-server`.
//!
//! The fault-tolerance claim under test: no schedule of injected disk
//! faults — ENOSPC, EIO on fsync, torn writes, bit flips — produces a
//! wrongly-recovered state or an acked-but-lost commit. The node either
//! recovers to a clean prefix of the oracle event sequence, refuses
//! with a typed `Corrupt{file, offset}` error, degrades to read-only
//! with the cause visible, or (as a follower) auto-repairs by snapshot
//! re-sync from its primary. Five angles:
//!
//! 1. **Snapshot bit-flip sweep**: every single-byte flip anywhere in
//!    `snapshot.bin` must be caught by the full-file CRC trailer as a
//!    typed corruption naming the snapshot — never a silently different
//!    recovered state.
//! 2. **Journal bit-flip sweep**: every flip either recovers a clean
//!    prefix of the oracle sequence (tears and header-epoch damage are
//!    survivable) or refuses with a typed corruption naming the
//!    journal; a tolerant (follower) scan additionally keeps the clean
//!    prefix so re-sync can repair the rest.
//! 3. **Fault-schedule proptest**: random ENOSPC/EIO/torn-write
//!    schedules during a commit burst never ack a commit whose frame
//!    does not survive crash + reopen, and never ack anything after the
//!    journal poisons.
//! 4. **Service degradation**: ENOSPC (and the `--min-free-bytes`
//!    watermark) flips the service read-only with `degraded: disk_full`,
//!    reads keep serving, and recovery is automatic when space returns;
//!    a failed fsync poisons the journal with `storage_error` instead.
//! 5. **Follower self-repair**: a poisoned follower journal triggers a
//!    forced snapshot re-sync from the primary and tailing resumes.

use cerfix::MasterData;
use cerfix_relation::{RelationBuilder, Schema, Value};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use cerfix_server::{
    CleaningService, Client, Frontend, LocalClient, Server, ServiceConfig, StorageConfig,
};
use cerfix_storage::{
    FaultFs, FaultPlan, JournalEvent, ScanMode, SnapshotData, Storage, StorageError, SyncError,
    JOURNAL_FILE, SNAPSHOT_FILE,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cerfix-diskfault-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Storage with background policies (snapshots) disabled so every
/// durability point in a test is an explicit sync.
fn quiet_storage(dir: &Path) -> StorageConfig {
    let mut cfg = StorageConfig::new(dir);
    cfg.flush_interval = Duration::from_millis(1);
    cfg.snapshot_interval = Duration::from_secs(3600);
    cfg.snapshot_every_events = u64::MAX;
    cfg
}

/// `quiet_storage` routed through a fault-injecting filesystem.
fn fault_storage(dir: &Path, fault: &FaultFs) -> StorageConfig {
    let mut cfg = quiet_storage(dir);
    cfg.fs = Arc::new(fault.clone());
    cfg
}

/// A distinctive journal event per index, so prefix checks are exact.
fn ev(session: u64) -> JournalEvent {
    JournalEvent::SessionCreated {
        session,
        values: vec![
            Value::str(format!("cell-{session}")),
            Value::Int(session as i64),
        ],
    }
}

/// key → val master data and rule set for a lookup service (the same
/// shape the server crate's unit tests use).
fn kv_fixture() -> (Arc<MasterData>, Arc<RuleSet>) {
    let input = Schema::of_strings("in", ["key", "val", "note"]).unwrap();
    let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
    let mut builder = RelationBuilder::new(ms.clone());
    for i in 0..20 {
        builder = builder.row_strs([format!("k{i}"), format!("v{i}")]);
    }
    let master = MasterData::new(builder.build().unwrap());
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    rules
        .add(
            EditingRule::new(
                "kv",
                &input,
                &ms,
                vec![(0, 0)],
                vec![(1, 1)],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
    (Arc::new(master), Arc::new(rules))
}

fn kv_service(fault: &FaultFs, dir: &Path, config: ServiceConfig) -> CleaningService {
    let (master, rules) = kv_fixture();
    CleaningService::with_storage(master, rules, config, fault_storage(dir, fault))
        .expect("open storage")
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

// ---------------------------------------------------------------------
// 1. Snapshot bit-flip sweep.
// ---------------------------------------------------------------------

#[test]
fn snapshot_bitflip_sweep_is_always_typed_corruption() {
    let dir = tmp_dir("snap-flip");
    {
        let (storage, _) = Storage::open(quiet_storage(&dir)).unwrap();
        let last = (1..=4).fold(0, |_, i| storage.append(&ev(i)));
        storage.sync(last).unwrap();
        storage
            .install_snapshot(&SnapshotData {
                epoch: 1,
                fingerprint: 0x5EED,
                rules_dsl: "er kv: match key=key fix val:=val when ()".into(),
                next_session_id: 5,
                master_appended: vec![vec![Value::str("k-extra"), Value::str("v-extra")]],
                sessions: vec![],
            })
            .unwrap();
    }
    let path = dir.join(SNAPSHOT_FILE);
    let pristine = std::fs::read(&path).unwrap();
    assert!(pristine.len() > 32, "fixture snapshot too small to sweep");
    // Every region of the file: header, payload, and the CRC trailer
    // itself.
    let step = (pristine.len() / 48).max(1);
    for at in (0..pristine.len()).step_by(step) {
        let mut flipped = pristine.clone();
        flipped[at] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        match Storage::open(quiet_storage(&dir)) {
            Err(StorageError::Corrupt { file, .. }) => assert!(
                file.ends_with(SNAPSHOT_FILE),
                "flip @ {at}: corruption must name the snapshot, got {file}"
            ),
            Ok(_) => panic!("flip @ {at}: recovery accepted a corrupt snapshot"),
            Err(StorageError::Io(e)) => {
                panic!("flip @ {at}: untyped I/O error instead of Corrupt: {e}")
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 2. Journal bit-flip sweep.
// ---------------------------------------------------------------------

#[test]
fn journal_bitflip_sweep_never_recovers_wrong_state() {
    let dir = tmp_dir("journal-flip");
    let oracle: Vec<JournalEvent> = (1..=8).map(ev).collect();
    {
        let (storage, _) = Storage::open(quiet_storage(&dir)).unwrap();
        let last = oracle.iter().fold(0, |_, event| storage.append(event));
        storage.sync(last).unwrap();
    }
    let path = dir.join(JOURNAL_FILE);
    let pristine = std::fs::read(&path).unwrap();
    let step = (pristine.len() / 96).max(1);
    let assert_prefix = |events: &[JournalEvent], context: &str| {
        assert!(
            events.len() <= oracle.len() && events == &oracle[..events.len()],
            "{context}: recovered events are not a clean prefix of the oracle: {events:?}"
        );
    };
    for at in (0..pristine.len()).step_by(step) {
        let mut flipped = pristine.clone();
        flipped[at] ^= 0x10;

        // Strict (primary) recovery: a clean prefix or a typed refusal.
        std::fs::write(&path, &flipped).unwrap();
        match Storage::open(quiet_storage(&dir)) {
            Ok((_, recovered)) => assert_prefix(&recovered.events, &format!("strict, flip @ {at}")),
            Err(StorageError::Corrupt { file, .. }) => assert!(
                file.ends_with(JOURNAL_FILE),
                "flip @ {at}: corruption must name the journal, got {file}"
            ),
            Err(StorageError::Io(e)) => {
                panic!("flip @ {at}: untyped I/O error instead of Corrupt: {e}")
            }
        }

        // Tolerant (follower) recovery: keeps the clean prefix so the
        // re-sync path can repair the rest. (A flipped format-version
        // field is the one damage even a follower refuses locally.)
        std::fs::write(&path, &flipped).unwrap();
        let mut cfg = quiet_storage(&dir);
        cfg.scan_mode = ScanMode::Tolerant;
        match Storage::open(cfg) {
            Ok((_, recovered)) => {
                assert_prefix(&recovered.events, &format!("tolerant, flip @ {at}"))
            }
            Err(StorageError::Corrupt { .. }) => assert!(
                (4..8).contains(&at),
                "tolerant open refused a flip @ {at} outside the version field"
            ),
            Err(StorageError::Io(e)) => {
                panic!("tolerant, flip @ {at}: untyped I/O error: {e}")
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 3. Fault-schedule proptest.
// ---------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random ENOSPC/EIO/torn-write schedules over a commit burst: an
    /// acked sync is a durable frame (it survives the worst legal crash
    /// and a strict reopen), a poisoned journal never acks again, and
    /// recovery is always a clean prefix of what was appended.
    #[test]
    fn fault_schedules_never_lose_acked_commits(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = FaultPlan {
            capacity_bytes: rng.gen_bool(0.5).then(|| rng.gen_range(200..2500)),
            fail_fsync_at: rng.gen_bool(0.5).then(|| rng.gen_range(2..20)),
            torn_write_at: rng.gen_bool(0.4).then(|| rng.gen_range(2..25)),
            // Silent media corruption is the bit-flip sweeps' domain:
            // it is indistinguishable from success at write time, so it
            // cannot gate an ack.
            bitflip_write_at: None,
            drop_renames: false,
        };
        let dir = tmp_dir(&format!("sched-{seed}"));
        let fault = FaultFs::new(plan);
        let events: Vec<JournalEvent> = (1..=24).map(ev).collect();
        let mut acked = 0u64;
        let mut poisoned = false;
        match Storage::open(fault_storage(&dir, &fault)) {
            Ok((storage, _)) => {
                for event in &events {
                    let seq = storage.append(event);
                    match storage.sync(seq) {
                        Ok(()) => {
                            prop_assert!(!poisoned, "seed {seed}: ack after poison");
                            acked = seq;
                        }
                        Err(SyncError::Poisoned { .. }) => {
                            poisoned = true;
                            prop_assert!(
                                storage.journal().poisoned().is_some(),
                                "seed {seed}: Poisoned sync without the poisoned flag"
                            );
                        }
                        // Retryable: the frames went back to pending,
                        // and this commit was not acked.
                        Err(SyncError::WriteFailed { .. }) => {}
                        Err(SyncError::Stopped) => {
                            prop_assert!(false, "seed {seed}: journal stopped mid-burst")
                        }
                    }
                }
                // The worst legal crash: every file rolls back to its
                // last fsync'd length, the page cache is gone. The
                // simulation's own bookkeeping fsync may soak up a
                // still-armed injected fault — that is outside the
                // fault model (the truncation itself is unfaulted).
                let _ = storage.simulate_crash();
            }
            // The schedule hit open itself (e.g. the header fsync):
            // nothing was acked, so there is nothing to lose.
            Err(StorageError::Io(_)) => {}
            Err(e @ StorageError::Corrupt { .. }) => {
                prop_assert!(false, "seed {seed}: fresh directory scanned corrupt: {e}")
            }
        }
        // Strict reopen on a clean filesystem: no injected fault may
        // have manufactured corruption, and every acked commit replays.
        let (_, recovered) = Storage::open(quiet_storage(&dir)).unwrap();
        prop_assert!(
            recovered.events.len() as u64 >= acked,
            "seed {seed}: acked seq {acked} but only {} events survived",
            recovered.events.len()
        );
        prop_assert_eq!(
            &recovered.events[..],
            &events[..recovered.events.len()],
            "seed {seed}: recovered events diverge from the appended order"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// 4. Service-level degradation and poisoning.
// ---------------------------------------------------------------------

#[test]
fn enospc_degrades_to_read_only_and_recovers_when_space_returns() {
    let dir = tmp_dir("degrade-enospc");
    let fault = FaultFs::new(FaultPlan {
        capacity_bytes: Some(6_000),
        ..FaultPlan::default()
    });
    let service = kv_service(
        &fault,
        &dir,
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
    );
    let mut client = LocalClient::in_process(&service);

    // `master.append` acks only after its journal frame fsyncs, so it
    // is the mutation that feels the disk fill first.
    let mut refused = None;
    for i in 0..400 {
        match client.master_append(vec![vec![Value::str(format!("fill{i}")), Value::str("v")]]) {
            Ok(_) => {}
            Err(e) => {
                refused = Some(e.to_string());
                break;
            }
        }
    }
    let message = refused.expect("a 6000-byte budget must fill within 400 appends");
    assert!(
        message.contains("storage_error"),
        "ENOSPC ack must be the typed applied-but-not-durable error: {message}"
    );
    assert!(service.is_degraded(), "ENOSPC must flip the degraded latch");

    // Reads keep serving; mutations are refused with the cause.
    client.metrics().expect("reads must survive degradation");
    let denied = client
        .master_append(vec![vec![Value::str("k-denied"), Value::str("v")]])
        .unwrap_err()
        .to_string();
    assert!(
        denied.contains("degraded: disk_full"),
        "degraded mutations must name the cause: {denied}"
    );

    // The operator frees disk space; the housekeeper sweep notices once
    // the journal's pending frames land again.
    fault.add_capacity(1 << 20);
    wait_for("degradation to clear after space returns", || {
        service.probe_storage();
        !service.is_degraded()
    });
    client
        .master_append(vec![vec![Value::str("k-after"), Value::str("v")]])
        .expect("writes must resume after recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn free_space_watermark_degrades_before_the_disk_is_actually_full() {
    let dir = tmp_dir("degrade-watermark");
    let fault = FaultFs::new(FaultPlan {
        capacity_bytes: Some(8_192),
        ..FaultPlan::default()
    });
    let service = kv_service(
        &fault,
        &dir,
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            min_free_bytes: 4_096,
            ..ServiceConfig::default()
        },
    );
    let mut client = LocalClient::in_process(&service);

    service.probe_storage();
    assert!(
        !service.is_degraded(),
        "a fresh directory is far above the watermark"
    );

    // Fill until the probe sees free space under the watermark. Every
    // append still succeeds — the watermark fires while writes work.
    let mut tripped = false;
    for i in 0..200 {
        client
            .master_append(vec![vec![Value::str(format!("wm{i}")), Value::str("v")]])
            .expect("watermark degradation must trip before hard ENOSPC");
        service.probe_storage();
        if service.is_degraded() {
            tripped = true;
            break;
        }
    }
    assert!(tripped, "8192-byte budget never dipped under the watermark");
    let denied = client
        .master_append(vec![vec![Value::str("k-denied"), Value::str("v")]])
        .unwrap_err()
        .to_string();
    assert!(denied.contains("degraded: disk_full"), "{denied}");

    fault.add_capacity(1 << 20);
    wait_for("watermark degradation to clear", || {
        service.probe_storage();
        !service.is_degraded()
    });
    client
        .master_append(vec![vec![Value::str("k-after"), Value::str("v")]])
        .expect("writes must resume once free space exceeds the watermark");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_failure_poisons_the_journal_and_refuses_mutations() {
    let dir = tmp_dir("poison");
    let fault = FaultFs::new(FaultPlan::default());
    let service = kv_service(
        &fault,
        &dir,
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
    );
    let mut client = LocalClient::in_process(&service);
    client
        .master_append(vec![vec![Value::str("k-before"), Value::str("v")]])
        .expect("baseline append");

    // Arm the next fsync anywhere in the data dir to fail — fsyncgate.
    fault.update_plan(|plan| plan.fail_fsync_at = Some(fault.fsyncs() + 1));
    let err = client
        .master_append(vec![vec![Value::str("k-poison"), Value::str("v")]])
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("storage_error") && err.contains("poisoned"),
        "the ack must say the journal poisoned: {err}"
    );

    // Poisoned is permanent (no retry-and-pretend) and distinct from
    // disk-full degradation; reads keep serving.
    assert!(!service.is_degraded(), "poison is not the degraded latch");
    let refused = client
        .master_append(vec![vec![Value::str("k-refused"), Value::str("v")]])
        .unwrap_err()
        .to_string();
    assert!(
        refused.contains("storage_error") && refused.contains("poisoned"),
        "later mutations must be refused up front: {refused}"
    );
    client
        .metrics()
        .expect("reads must survive a poisoned journal");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 5. Follower self-repair by snapshot re-sync.
// ---------------------------------------------------------------------

#[test]
fn follower_poisoned_journal_self_repairs_by_snapshot_resync() {
    let pdir = tmp_dir("resync-p");
    let fdir = tmp_dir("resync-f");
    let (master, rules) = kv_fixture();

    let primary = CleaningService::with_storage(
        Arc::clone(&master),
        Arc::clone(&rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            advertise: Some("primary".into()),
            ..ServiceConfig::default()
        },
        quiet_storage(&pdir),
    )
    .unwrap();
    let server = Server::bind_with("127.0.0.1:0", primary, Frontend::Threads).unwrap();
    let paddr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || {
        let _ = server.run();
    });

    let follower_fault = FaultFs::new(FaultPlan::default());
    let follower = CleaningService::with_storage(
        Arc::clone(&master),
        Arc::clone(&rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            replicate_from: Some(paddr.to_string()),
            advertise: Some("f1".into()),
            ..ServiceConfig::default()
        },
        fault_storage(&fdir, &follower_fault),
    )
    .unwrap();
    let mut fclient = LocalClient::in_process(&follower);

    // A durable session on the primary reaches the follower's tail.
    let mut pclient = Client::connect(paddr).unwrap();
    let before = pclient
        .create_session(vec![Value::str("k1"), Value::str("WRONG"), Value::str("n")])
        .unwrap();
    pclient
        .master_append(vec![vec![Value::str("k-barrier1"), Value::str("v")]])
        .unwrap();
    wait_for("follower to tail the first session", || {
        fclient.get_session(before.session).is_ok()
    });

    // Poison the follower's journal: the next fsync in its data dir —
    // the one carrying the next applied batch — fails.
    follower_fault.update_plan(|plan| plan.fail_fsync_at = Some(follower_fault.fsyncs() + 1));
    let after = pclient
        .create_session(vec![Value::str("k2"), Value::str("WRONG"), Value::str("n")])
        .unwrap();
    pclient
        .master_append(vec![vec![Value::str("k-barrier2"), Value::str("v")]])
        .unwrap();

    // The tail loop must hit the poison, request a forced snapshot
    // re-sync, install it (which rebuilds — and thereby un-poisons —
    // the journal), and resume tailing the new session.
    wait_for("follower to self-repair and catch up", || {
        fclient.get_session(after.session).is_ok() && !follower.is_poisoned_journal()
    });
    assert!(
        fclient.get_session(before.session).is_ok(),
        "pre-poison state must survive the re-sync"
    );

    let _ = pclient.shutdown();
    let _ = server_thread.join();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}
