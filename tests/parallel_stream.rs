//! Integration: parallel stream cleaning equals sequential cleaning on a
//! real scenario, under contention on the shared master index cache and
//! audit log.

use cerfix::{clean_stream, clean_stream_parallel, DataMonitor, OracleUser, UserAgent};
use cerfix_gen::{make_workload, uk, NoiseSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn parallel_equals_sequential_on_uk() {
    let mut rng = StdRng::seed_from_u64(31);
    let scenario = uk::scenario(500, &mut rng);
    let master = scenario.master_data();
    let workload = make_workload(
        &scenario.universe,
        120,
        &NoiseSpec::with_rate(0.35),
        &mut rng,
    );

    let monitor_seq = DataMonitor::new(&scenario.rules, &master);
    let truths = workload.truth.clone();
    let sequential = clean_stream(
        &monitor_seq,
        workload.dirty.iter().cloned(),
        move |idx, _| Box::new(OracleUser::new(truths[idx].clone())),
    )
    .unwrap();

    // Cold index cache for the parallel monitor: workers race to build
    // and share indexes through the RwLock.
    let master2 = scenario.master_data();
    let monitor_par = DataMonitor::new(&scenario.rules, &master2);
    let truths = workload.truth.clone();
    let parallel = clean_stream_parallel(
        &monitor_par,
        workload.dirty.clone(),
        move |idx, _| -> Box<dyn UserAgent + Send> {
            Box::new(OracleUser::new(truths[idx].clone()))
        },
        8,
    )
    .unwrap();

    assert_eq!(parallel.len(), sequential.len());
    for (p, s) in parallel.outcomes.iter().zip(sequential.outcomes.iter()) {
        assert_eq!(p.tuple, s.tuple);
        assert_eq!(p.complete, s.complete);
        assert_eq!(p.rounds, s.rounds);
        assert_eq!(p.user_validated, s.user_validated);
        assert_eq!(p.auto_validated, s.auto_validated);
    }
    assert_eq!(parallel.complete_count(), 120);
    assert_eq!(
        monitor_par.audit().len(),
        monitor_seq.audit().len(),
        "same audit volume regardless of interleaving"
    );
    // Per-tuple audit histories are identical sets (order within a tuple
    // is preserved; cross-tuple interleaving differs).
    for idx in [0usize, 59, 119] {
        let seq_hist = monitor_seq.audit().tuple_history(idx);
        let par_hist = monitor_par.audit().tuple_history(idx);
        assert_eq!(seq_hist, par_hist, "tuple {idx}");
    }
}

#[test]
fn parallel_more_threads_than_tuples() {
    let mut rng = StdRng::seed_from_u64(32);
    let scenario = uk::scenario(50, &mut rng);
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let workload = make_workload(&scenario.universe, 3, &NoiseSpec::with_rate(0.3), &mut rng);
    let truths = workload.truth.clone();
    let report = clean_stream_parallel(
        &monitor,
        workload.dirty.clone(),
        move |idx, _| -> Box<dyn UserAgent + Send> {
            Box::new(OracleUser::new(truths[idx].clone()))
        },
        64,
    )
    .unwrap();
    assert_eq!(report.len(), 3);
    assert_eq!(report.complete_count(), 3);
}

#[test]
fn parallel_propagates_errors() {
    // Inconsistent rules + master: the run-time conflict must surface as
    // an error from the parallel driver, not vanish in a worker.
    use cerfix_relation::{RelationBuilder, Schema, Tuple};
    use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
    let input = Schema::of_strings("in", ["zip", "AC", "city", "phone"]).unwrap();
    let ms = Schema::of_strings("m", ["zip", "AC", "city", "mail_city", "phone"]).unwrap();
    let master = cerfix::MasterData::new(
        RelationBuilder::new(ms.clone())
            .row_strs(["EH8", "131", "Edi", "Leith", "555"])
            .build()
            .unwrap(),
    );
    let a = |s: &str| input.attr_id(s).unwrap();
    let m = |s: &str| ms.attr_id(s).unwrap();
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    rules
        .add(
            EditingRule::new(
                "zip_city",
                &input,
                &ms,
                vec![(a("zip"), m("zip"))],
                vec![(a("city"), m("city"))],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
    rules
        .add(
            EditingRule::new(
                "ac_mail",
                &input,
                &ms,
                vec![(a("AC"), m("AC"))],
                vec![(a("city"), m("mail_city")), (a("phone"), m("phone"))],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
    let monitor = DataMonitor::new(&rules, &master);
    let truth = Tuple::of_strings(input.clone(), ["EH8", "131", "Edi", "555"]).unwrap();
    let dirty: Vec<Tuple> = (0..16)
        .map(|_| Tuple::of_strings(input.clone(), ["EH8", "131", "?", "?"]).unwrap())
        .collect();
    let result = clean_stream_parallel(
        &monitor,
        dirty,
        move |_, _| -> Box<dyn UserAgent + Send> { Box::new(OracleUser::new(truth.clone())) },
        4,
    );
    assert!(result.is_err(), "validated-cell conflict must propagate");
}
