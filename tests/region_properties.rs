//! Property tests for certain regions: the certification contract.
//!
//! The defining guarantee (paper §2): for a certain region `(Z, Tc)` and
//! *any* input tuple whose `t[Z]` is correct and matches `Tc`, the
//! monitor finds a certain fix. We test exactly that, with adversarially
//! corrupted non-Z cells.

use cerfix::{certify_region, find_regions, DataMonitor, RegionFinderOptions};
use cerfix_gen::{noise, uk, NoiseSpec};
use cerfix_relation::{AttrId, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn fixture() -> (cerfix_gen::Scenario, cerfix::MasterData) {
    let mut rng = StdRng::seed_from_u64(2024);
    let scenario = uk::scenario(60, &mut rng);
    let master = scenario.master_data();
    (scenario, master)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every found region and every truth covered by its tableau,
    /// corrupt all non-region cells arbitrarily, validate exactly `Z`
    /// with the truth values, and require a complete, correct fix from
    /// the rules alone (no further user input).
    #[test]
    fn regions_guarantee_fixes_under_adversarial_noise(
        entity in 0usize..120,
        corruption_seed in 0u64..1000,
    ) {
        let (scenario, master) = fixture();
        let regions = find_regions(
            &scenario.rules,
            &master,
            &scenario.universe,
            &RegionFinderOptions::default(),
        )
        .regions;
        prop_assume!(!regions.is_empty());
        let truth = &scenario.universe[entity % scenario.universe.len()];
        let mut rng = StdRng::seed_from_u64(corruption_seed);

        for region in &regions {
            if !region.covers(truth) {
                continue;
            }
            let z: BTreeSet<AttrId> = region.attrs().iter().copied().collect();
            // Adversarial tuple: truth on Z, noise everywhere else.
            let mut t = truth.clone();
            for attr in 0..t.arity() {
                if z.contains(&attr) {
                    continue;
                }
                let garbage = noise::typo(&t.get(attr).render(), &mut rng);
                t.set(attr, Value::str(garbage)).unwrap();
            }
            // Validate exactly Z (truth values are already in place).
            let monitor = DataMonitor::new(&scenario.rules, &master);
            let mut session = monitor.start(0, t);
            let validations: Vec<(AttrId, Value)> =
                z.iter().map(|&a| (a, truth.get(a).clone())).collect();
            monitor.apply_validation(&mut session, &validations).unwrap();
            prop_assert!(
                session.is_complete(),
                "region {:?} failed for entity {} (validated {:?})",
                region.attrs(),
                entity % scenario.universe.len(),
                session.validated
            );
            prop_assert_eq!(&session.tuple, truth);
        }
    }

    /// Certification is monotone in Z: adding attributes to a certified
    /// region keeps it certified.
    #[test]
    fn certification_monotone(extra in 0usize..9) {
        let (scenario, master) = fixture();
        let regions = find_regions(
            &scenario.rules,
            &master,
            &scenario.universe,
            &RegionFinderOptions::default(),
        )
        .regions;
        prop_assume!(!regions.is_empty());
        let region = &regions[0];
        let mut attrs: cerfix_relation::AttrSet = region.attrs().iter().copied().collect();
        attrs.insert(extra);
        let plan = cerfix::CompiledRules::compile(&scenario.rules, &master);
        for pattern in region.tableau() {
            let result = certify_region(&plan, &master, &attrs, pattern, &scenario.universe);
            prop_assert!(result.certified, "superset of a region failed certification");
        }
    }
}

#[test]
fn workload_noise_rate_scales_errors() {
    // Sanity link between the noise model and the evaluation metrics.
    let (scenario, _) = fixture();
    let mut rng = StdRng::seed_from_u64(5);
    let low = cerfix_gen::make_workload(
        &scenario.universe,
        200,
        &NoiseSpec::with_rate(0.1),
        &mut rng,
    );
    let high = cerfix_gen::make_workload(
        &scenario.universe,
        200,
        &NoiseSpec::with_rate(0.6),
        &mut rng,
    );
    assert!(high.total_errors() > low.total_errors() * 2);
}
