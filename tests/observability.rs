//! Observability surface: end-to-end request tracing, engine-stat
//! attribution and the Prometheus exposition.
//!
//! Covers: a pipelined burst whose spans correlate one-to-one with the
//! client-supplied request ids on both front ends; `metrics.prom`
//! emitting structurally valid Prometheus text (full histograms,
//! cumulative buckets, `+Inf`, `_count` agreement) with every new
//! instrument present; counter monotonicity across scrapes while a
//! writer thread hammers the service (proptest); stage timings and
//! engine-stat deltas inside `trace.read` spans; the version /
//! protocol / uptime fields on `hello` and `metrics`; health probes
//! flipping (with `cerfix_healthy` and the structured log agreeing)
//! when the journal dies; `log.read` level/subsystem filtering;
//! journaled `config.set` tunables surviving a restart; and the
//! `metrics.history` time-series ring.

use cerfix::MasterData;
use cerfix_relation::{RelationBuilder, Schema, Value};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use cerfix_server::protocol::Request;
use cerfix_server::wire::Json;
use cerfix_server::{CleaningService, Client, Frontend, Server, ServiceConfig, StorageConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const FRONTENDS: [Frontend; 2] = [Frontend::Epoll, Frontend::Threads];

/// key → val lookup service over `n` master rows (same shape as the
/// pipelining suite: cheap ops, so tracing/metrics behavior dominates).
fn kv_service(n: usize, workers: usize) -> CleaningService {
    kv_service_with(n, workers, ServiceConfig::default())
}

fn kv_service_with(n: usize, workers: usize, config: ServiceConfig) -> CleaningService {
    let (master, rules) = kv_setup(n);
    CleaningService::new(
        Arc::new(master),
        Arc::new(rules),
        ServiceConfig {
            workers,
            precompute_regions: false,
            ..config
        },
    )
}

fn kv_setup(n: usize) -> (MasterData, RuleSet) {
    let input = Schema::of_strings("in", ["key", "val", "note"]).unwrap();
    let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
    let mut builder = RelationBuilder::new(ms.clone());
    for i in 0..n {
        builder = builder.row_strs([format!("k{i}"), format!("v{i}")]);
    }
    let master = MasterData::new(builder.build().unwrap());
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    rules
        .add(
            EditingRule::new(
                "kv",
                &input,
                &ms,
                vec![(0, 0)],
                vec![(1, 1)],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
    (master, rules)
}

/// Run `metrics.prom` through the wire path and unwrap the text body.
fn scrape(service: &CleaningService) -> String {
    let response = service.handle_line("{\"op\":\"metrics.prom\"}");
    let envelope = Json::parse(response.trim()).expect("metrics.prom envelope parses");
    assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(true));
    assert!(envelope
        .get("content_type")
        .and_then(Json::as_str)
        .is_some_and(|ct| ct.starts_with("text/plain")));
    envelope
        .get("body")
        .and_then(Json::as_str)
        .expect("body is a string")
        .to_string()
}

/// Structural Prometheus text validation. Checks every line is a HELP /
/// TYPE comment or a `name{labels} value` sample with a parseable
/// value, every sample has a preceding TYPE, histogram buckets are
/// cumulative with a final `+Inf` whose value matches `_count`, and
/// label syntax is well formed. Returns every sample keyed by its full
/// metric text (name + labels).
fn validate_prom(body: &str) -> Result<HashMap<String, f64>, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: HashMap<String, f64> = HashMap::new();
    // histogram series (bucket-name + labels minus `le`) →
    // (last cumulative value, +Inf value when seen).
    let mut series: Vec<(String, f64, Option<f64>)> = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            rest.split_once(' ')
                .ok_or_else(|| format!("HELP without text: {line}"))?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("TYPE without kind: {line}"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("unknown TYPE kind: {line}"));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("unknown comment: {line}"));
        }
        let (metric, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample without value: {line}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("unparseable value: {line}"))?;
        let (name, labels) = match metric.split_once('{') {
            Some((name, rest)) => (
                name,
                Some(
                    rest.strip_suffix('}')
                        .ok_or_else(|| format!("unterminated labels: {line}"))?,
                ),
            ),
            None => (metric, None),
        };
        let mut le: Option<&str> = None;
        let mut other_labels: Vec<&str> = Vec::new();
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let (key, quoted) = pair
                    .split_once("=\"")
                    .ok_or_else(|| format!("bad label `{pair}`: {line}"))?;
                let inner = quoted
                    .strip_suffix('"')
                    .ok_or_else(|| format!("unquoted label `{pair}`: {line}"))?;
                if key.is_empty() {
                    return Err(format!("empty label key: {line}"));
                }
                if key == "le" {
                    le = Some(inner);
                } else {
                    other_labels.push(pair);
                }
            }
        }
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| name.strip_suffix(suffix))
            .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !types.contains_key(base) {
            return Err(format!("sample without TYPE: {line}"));
        }
        if name.ends_with("_bucket") && types.get(base).map(String::as_str) == Some("histogram") {
            let le = le.ok_or_else(|| format!("bucket without le: {line}"))?;
            let key = format!("{name}{{{}}}", other_labels.join(","));
            let entry = match series.iter_mut().find(|(k, _, _)| *k == key) {
                Some(entry) => entry,
                None => {
                    series.push((key, 0.0, None));
                    series.last_mut().unwrap()
                }
            };
            if value < entry.1 {
                return Err(format!("non-cumulative bucket: {line}"));
            }
            entry.1 = value;
            if le == "+Inf" {
                entry.2 = Some(value);
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("bad le bound: {line}"))?;
            }
        }
        samples.insert(metric.to_string(), value);
    }
    for (key, _, inf) in &series {
        let inf = inf.ok_or_else(|| format!("histogram series {key} has no +Inf bucket"))?;
        let count_key = key
            .replace("_bucket{}", "_count")
            .replace("_bucket{", "_count{");
        let count = samples
            .get(count_key.trim_end_matches("{}"))
            .or_else(|| samples.get(&count_key))
            .ok_or_else(|| format!("histogram series {key} has no _count"))?;
        if (count - inf).abs() > 1e-9 {
            return Err(format!("series {key}: +Inf {inf} != _count {count}"));
        }
    }
    Ok(samples)
}

/// A pipelined burst of id-tagged hot requests yields exactly-correlated
/// spans — trace id == request id, order preserved — on both the epoll
/// and the threaded front end.
#[test]
fn pipelined_burst_spans_correlate_exactly_with_request_ids() {
    const N: usize = 64;
    for frontend in FRONTENDS {
        let service = kv_service(20, 2);
        let handle =
            Server::spawn_with("127.0.0.1:0", service.clone(), frontend).expect("bind ephemeral");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let view = client
            .create_session(vec![Value::str("k3"), Value::str("WRONG"), Value::str("n")])
            .expect("create");

        let mut stream = TcpStream::connect(handle.addr()).expect("raw connect");
        stream.set_nodelay(true).unwrap();
        let mut burst = String::new();
        for i in 0..N {
            burst.push_str(&format!(
                "{{\"op\":\"session.get\",\"session\":{},\"id\":{i}}}\n",
                view.session
            ));
        }
        stream.write_all(burst.as_bytes()).expect("write burst");
        let mut reader = BufReader::new(stream);
        for _ in 0..N {
            let mut line = String::new();
            reader.read_line(&mut line).expect("response line");
        }

        let trace = client
            .request(&Request::TraceRead {
                limit: Some(4 * N as u64),
            })
            .expect("trace.read");
        assert_eq!(trace.get("enabled").and_then(Json::as_bool), Some(true));
        // The burst lines are the only id-tagged requests: every other
        // request (the Client never attaches ids) traces synthetically.
        let correlated: Vec<String> = trace
            .get("spans")
            .and_then(Json::as_arr)
            .expect("spans array")
            .iter()
            .filter(|span| span.get("synthetic").and_then(Json::as_bool) == Some(false))
            .map(|span| {
                assert_eq!(span.get("op").and_then(Json::as_str), Some("session.get"));
                assert!(span.get("total_ns").and_then(Json::as_u64).unwrap_or(0) > 0);
                span.get("trace")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        let expected: Vec<String> = (0..N).rev().map(|i| i.to_string()).collect();
        assert_eq!(
            correlated, expected,
            "{frontend:?}: spans newest-first must mirror the burst ids exactly"
        );
        handle.shutdown().expect("shutdown");
    }
}

/// The exposition is valid Prometheus text and carries every new
/// instrument — full per-op latency buckets, worker/reactor histograms,
/// queue depth, session occupancy, per-op engine-stat attribution and
/// build info.
#[test]
fn metrics_prom_is_valid_and_has_all_new_instruments() {
    let service = kv_service(20, 2);
    let created =
        service.handle_line("{\"op\":\"session.create\",\"tuple\":[\"k3\",\"WRONG\",\"n\"]}");
    let id = Json::parse(created.trim())
        .unwrap()
        .get("session")
        .and_then(Json::as_u64)
        .expect("session id");
    service.handle_line(&format!(
        "{{\"op\":\"session.validate\",\"session\":{id},\"validations\":{{\"key\":\"k3\"}}}}"
    ));
    service.handle_line(&format!("{{\"op\":\"session.get\",\"session\":{id}}}"));
    service.handle_line("{\"op\":\"clean\",\"tuples\":[[\"k1\",\"x\",\"n\"]],\"trust\":[\"key\"]}");
    service.handle_line("{\"op\":\"metrics\"}");
    service.handle_line("{\"op\":\"nonsense.op\"}");

    let body = scrape(&service);
    let samples = validate_prom(&body).expect("valid Prometheus text");
    for required in [
        "cerfix_uptime_seconds",
        "cerfix_requests_total",
        "cerfix_sessions_live",
        "cerfix_workers",
        "cerfix_worker_queue_depth",
        "cerfix_trace_spans_recorded_total",
        "cerfix_protocol_version",
        "cerfix_healthy",
        "cerfix_live",
        "cerfix_diag_events_emitted_total",
        "cerfix_diag_events_suppressed_total",
    ] {
        assert!(
            samples.contains_key(required),
            "missing instrument {required}"
        );
    }
    assert_eq!(
        samples.get(&format!(
            "cerfix_build_info{{version=\"{}\"}}",
            env!("CARGO_PKG_VERSION")
        )),
        Some(&1.0)
    );
    // Full histogram: 40 finite buckets + +Inf for an op with traffic.
    let get_buckets = body
        .lines()
        .filter(|l| l.starts_with("cerfix_request_duration_seconds_bucket{op=\"session.get\""))
        .count();
    assert_eq!(get_buckets, 41, "full bucket exposition, not a summary");
    // Worker/reactor histograms always render (even without traffic).
    assert!(samples.contains_key("cerfix_worker_batch_duration_seconds_count"));
    assert!(samples.contains_key("cerfix_reactor_loop_duration_seconds_count"));
    // Engine work from the fixing validate is attributed to its op.
    assert!(
        samples
            .get("cerfix_engine_rule_attempts_total{op=\"session.validate\"}")
            .copied()
            .unwrap_or(0.0)
            > 0.0,
        "engine stats attributed to session.validate"
    );
    // The unknown op landed in `other`, not `parse_error`.
    assert!(samples.contains_key("cerfix_request_duration_seconds_count{op=\"other\"}"));
}

/// Journaled services expose the group-commit flush profile: fsync
/// latency and batch-size histograms plus the journal epoch.
#[test]
fn journaled_prom_exposes_fsync_and_batch_histograms() {
    let dir = std::env::temp_dir().join(format!("cerfix-obs-prom-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (master, rules) = kv_setup(20);
    let service = CleaningService::with_storage(
        Arc::new(master),
        Arc::new(rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
        StorageConfig::new(&dir),
    )
    .expect("open storage");
    let created =
        service.handle_line("{\"op\":\"session.create\",\"tuple\":[\"k3\",\"WRONG\",\"n\"]}");
    let id = Json::parse(created.trim())
        .unwrap()
        .get("session")
        .and_then(Json::as_u64)
        .unwrap();
    // Commit waits for the group fsync, so the flush profile is
    // non-empty by the time the response lands.
    service.handle_line(&format!("{{\"op\":\"session.commit\",\"session\":{id}}}"));
    let body = scrape(&service);
    let samples = validate_prom(&body).expect("valid Prometheus text");
    assert!(samples.contains_key("cerfix_journal_epoch"));
    assert!(
        samples
            .get("cerfix_journal_fsync_duration_seconds_count")
            .copied()
            .unwrap_or(0.0)
            >= 1.0,
        "at least one recorded flush"
    );
    assert!(
        samples
            .get("cerfix_journal_flush_batch_events_sum")
            .copied()
            .unwrap_or(0.0)
            >= 1.0,
        "committed events counted into batch sizes"
    );
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `trace.read` spans carry stage timings and engine-stat deltas; a
/// zero-capacity buffer disables tracing entirely.
#[test]
fn trace_read_reports_stage_timings_and_engine_stats() {
    let service = kv_service(20, 2);
    let created = service
        .handle_line("{\"op\":\"session.create\",\"tuple\":[\"k3\",\"WRONG\",\"n\"],\"id\":900}");
    let id = Json::parse(created.trim())
        .unwrap()
        .get("session")
        .and_then(Json::as_u64)
        .unwrap();
    service.handle_line(&format!(
        "{{\"op\":\"session.validate\",\"session\":{id},\"validations\":{{\"key\":\"k3\"}},\"id\":901}}"
    ));
    let response = service.handle_line("{\"op\":\"trace.read\",\"limit\":16}");
    let trace = Json::parse(response.trim()).unwrap();
    assert_eq!(trace.get("enabled").and_then(Json::as_bool), Some(true));
    let spans = trace.get("spans").and_then(Json::as_arr).unwrap();
    let validate = spans
        .iter()
        .find(|s| s.get("trace").and_then(Json::as_str) == Some("901"))
        .expect("validate span present");
    assert_eq!(
        validate.get("op").and_then(Json::as_str),
        Some("session.validate")
    );
    assert!(validate.get("engine_ns").and_then(Json::as_u64).unwrap() > 0);
    assert!(
        validate
            .get("rule_attempts")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    assert!(
        validate
            .get("fixpoint_runs")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let total = validate.get("total_ns").and_then(Json::as_u64).unwrap();
    let stages: u64 = [
        "parse_ns",
        "dispatch_ns",
        "engine_ns",
        "fsync_ns",
        "quorum_ns",
        "serialize_ns",
    ]
    .iter()
    .map(|k| validate.get(k).and_then(Json::as_u64).unwrap())
    .sum();
    assert!(stages <= total, "stage times cannot exceed the total");
    let create = spans
        .iter()
        .find(|s| s.get("trace").and_then(Json::as_str) == Some("900"))
        .expect("create span present");
    assert_eq!(create.get("synthetic").and_then(Json::as_bool), Some(false));

    let disabled = kv_service_with(
        20,
        2,
        ServiceConfig {
            trace_buffer: 0,
            ..ServiceConfig::default()
        },
    );
    disabled.handle_line("{\"op\":\"hello\",\"id\":1}");
    let response = disabled.handle_line("{\"op\":\"trace.read\"}");
    let trace = Json::parse(response.trim()).unwrap();
    assert_eq!(trace.get("enabled").and_then(Json::as_bool), Some(false));
    assert_eq!(
        trace.get("spans").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0)
    );
}

/// `hello` and `metrics` both identify the build: version string,
/// protocol number and uptime.
#[test]
fn hello_and_stats_carry_version_protocol_uptime() {
    let service = kv_service(4, 2);
    for op in ["hello", "metrics"] {
        let response = service.handle_line(&format!("{{\"op\":\"{op}\"}}"));
        let json = Json::parse(response.trim()).unwrap();
        assert!(
            json.get("version")
                .and_then(Json::as_str)
                .is_some_and(|v| !v.is_empty()),
            "{op} carries a version"
        );
        assert_eq!(
            json.get("protocol").and_then(Json::as_u64),
            Some(cerfix_server::PROTOCOL_VERSION),
            "{op} carries the protocol"
        );
        assert!(json.get("uptime_secs").and_then(Json::as_u64).is_some());
    }
}

/// A journaled primary reports ready until the disk dies under the
/// journal flusher; then `health`, the `cerfix_healthy` gauge and the
/// structured log all flip together, with the triggering cause visible
/// through `log.read`.
#[test]
fn health_flips_not_ready_when_the_journal_dies() {
    let dir = std::env::temp_dir().join(format!("cerfix-obs-health-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (master, rules) = kv_setup(8);
    let service = CleaningService::with_storage(
        Arc::new(master),
        Arc::new(rules),
        ServiceConfig {
            workers: 2,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
        StorageConfig::new(&dir),
    )
    .expect("open storage");

    let healthy = Json::parse(service.handle_line("{\"op\":\"health\"}").trim()).unwrap();
    assert_eq!(healthy.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(healthy.get("role").and_then(Json::as_str), Some("primary"));
    assert_eq!(healthy.get("live").and_then(Json::as_bool), Some(true));
    assert_eq!(healthy.get("ready").and_then(Json::as_bool), Some(true));
    assert_eq!(
        healthy
            .get("causes")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    let samples = validate_prom(&scrape(&service)).expect("valid Prometheus text");
    assert_eq!(samples.get("cerfix_healthy"), Some(&1.0));
    assert_eq!(samples.get("cerfix_live"), Some(&1.0));

    service.simulate_crash().unwrap();

    let sick = Json::parse(service.handle_line("{\"op\":\"health\"}").trim()).unwrap();
    assert_eq!(sick.get("live").and_then(Json::as_bool), Some(false));
    assert_eq!(sick.get("ready").and_then(Json::as_bool), Some(false));
    let causes: Vec<&str> = sick
        .get("causes")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert!(
        causes.iter().any(|c| c.contains("journal flusher stopped")),
        "dead flusher named as the cause: {causes:?}"
    );
    let samples = validate_prom(&scrape(&service)).expect("valid Prometheus text");
    assert_eq!(samples.get("cerfix_healthy"), Some(&0.0));
    assert_eq!(samples.get("cerfix_live"), Some(&0.0));

    // The not-ready transition reached the structured log, cause and all.
    let log = Json::parse(
        service
            .handle_line("{\"op\":\"log.read\",\"level\":\"warn\",\"subsystem\":\"health\"}")
            .trim(),
    )
    .unwrap();
    assert_eq!(log.get("ok").and_then(Json::as_bool), Some(true));
    let events = log.get("events").and_then(Json::as_arr).unwrap();
    assert!(
        events.iter().any(|e| e
            .get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("not ready") && m.contains("journal flusher stopped"))),
        "health transition with its cause in the log"
    );
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `log.read` returns structured events newest first, filterable by
/// minimum level and by subsystem; unknown filter values are rejected.
#[test]
fn log_read_filters_by_level_and_subsystem() {
    let service = kv_service(8, 2);
    let set = Json::parse(
        service
            .handle_line("{\"op\":\"config.set\",\"key\":\"slow_ms\",\"value\":75}")
            .trim(),
    )
    .unwrap();
    assert_eq!(set.get("ok").and_then(Json::as_bool), Some(true));

    let log = Json::parse(
        service
            .handle_line("{\"op\":\"log.read\",\"subsystem\":\"config\"}")
            .trim(),
    )
    .unwrap();
    assert_eq!(log.get("enabled").and_then(Json::as_bool), Some(true));
    let events = log.get("events").and_then(Json::as_arr).unwrap();
    let newest = events.first().expect("config.set logged an event");
    assert_eq!(newest.get("level").and_then(Json::as_str), Some("info"));
    assert_eq!(
        newest.get("subsystem").and_then(Json::as_str),
        Some("config")
    );
    assert!(newest
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("slow_ms set to 75"));
    assert!(newest.get("unix_ms").and_then(Json::as_u64).unwrap() > 0);

    // Raising the level floor hides the info event.
    let errors_only = Json::parse(
        service
            .handle_line("{\"op\":\"log.read\",\"level\":\"error\",\"subsystem\":\"config\"}")
            .trim(),
    )
    .unwrap();
    assert_eq!(
        errors_only
            .get("events")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );

    for bad in [
        "{\"op\":\"log.read\",\"level\":\"loud\"}",
        "{\"op\":\"log.read\",\"subsystem\":\"disk\"}",
    ] {
        let response = Json::parse(service.handle_line(bad).trim()).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert!(response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown"));
    }
}

/// `config.set` applies immediately and is journaled: a tunable acked
/// before a restart still holds after recovery, while a rejected key
/// never reaches the journal.
#[test]
fn config_set_applies_live_and_survives_restart() {
    let dir = std::env::temp_dir().join(format!("cerfix-obs-cfg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (master, rules) = kv_setup(8);
    let master = Arc::new(master);
    let rules = Arc::new(rules);
    let config = || ServiceConfig {
        workers: 2,
        precompute_regions: false,
        ..ServiceConfig::default()
    };
    let service = CleaningService::with_storage(
        Arc::clone(&master),
        Arc::clone(&rules),
        config(),
        StorageConfig::new(&dir),
    )
    .expect("open storage");
    for (key, value) in [
        ("slow_ms", 75u64),
        ("trace_buffer", 32),
        ("diag_buffer", 64),
    ] {
        let response = Json::parse(
            service
                .handle_line(&format!(
                    "{{\"op\":\"config.set\",\"key\":\"{key}\",\"value\":{value}}}"
                ))
                .trim(),
        )
        .unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "{key}"
        );
    }
    let trace = Json::parse(
        service
            .handle_line("{\"op\":\"trace.read\",\"limit\":1}")
            .trim(),
    )
    .unwrap();
    assert_eq!(
        trace.get("slow_ms").and_then(Json::as_u64),
        Some(75),
        "the slow threshold is live immediately"
    );
    let bad = Json::parse(
        service
            .handle_line("{\"op\":\"config.set\",\"key\":\"bogus\",\"value\":1}")
            .trim(),
    )
    .unwrap();
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert!(bad
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("unknown config key"));
    drop(service);

    let service = CleaningService::with_storage(master, rules, config(), StorageConfig::new(&dir))
        .expect("reopen storage");
    let trace = Json::parse(
        service
            .handle_line("{\"op\":\"trace.read\",\"limit\":1}")
            .trim(),
    )
    .unwrap();
    assert_eq!(
        trace.get("slow_ms").and_then(Json::as_u64),
        Some(75),
        "journaled tunable survives restart"
    );
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `metrics.history` returns the periodic snapshots oldest first, with
/// monotonic timestamps and counters and per-op latency attached.
#[test]
fn metrics_history_returns_chronological_samples() {
    let service = kv_service(8, 2);
    service.handle_line("{\"op\":\"hello\"}");
    service.sample_timeseries();
    service.handle_line("{\"op\":\"hello\"}");
    service.handle_line("{\"op\":\"metrics\"}");
    service.sample_timeseries();

    let history = Json::parse(
        service
            .handle_line("{\"op\":\"metrics.history\",\"limit\":8}")
            .trim(),
    )
    .unwrap();
    assert_eq!(history.get("ok").and_then(Json::as_bool), Some(true));
    assert!(history.get("retained").and_then(Json::as_u64).unwrap() >= 2);
    let samples = history.get("samples").and_then(Json::as_arr).unwrap();
    assert!(samples.len() >= 2);
    let mut last_ms = 0;
    let mut last_requests = 0;
    for sample in samples {
        let ms = sample.get("unix_ms").and_then(Json::as_u64).unwrap();
        assert!(ms >= last_ms, "samples are chronological, oldest first");
        last_ms = ms;
        let requests = sample.get("requests").and_then(Json::as_u64).unwrap();
        assert!(requests >= last_requests, "counters are monotonic");
        last_requests = requests;
        assert!(sample.get("latency").is_some(), "per-op latency attached");
    }
    let oldest = samples[0].get("requests").and_then(Json::as_u64).unwrap();
    let newest = samples[samples.len() - 1]
        .get("requests")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        newest > oldest,
        "the window captured the traffic between samples"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Scrapes taken while a writer thread hammers the service stay
    /// structurally valid, and no `_total` counter ever decreases
    /// between consecutive scrapes.
    #[test]
    fn prom_scrapes_stay_valid_and_counters_monotonic_under_load(
        rounds in 3usize..7,
        keys in proptest::collection::vec(0usize..20, 3..10),
    ) {
        let service = kv_service(20, 2);
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let service = service.clone();
            let stop = Arc::clone(&stop);
            let keys = keys.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for &k in &keys {
                        let created = service.handle_line(&format!(
                            "{{\"op\":\"session.create\",\"tuple\":[\"k{k}\",\"WRONG\",\"n\"]}}"
                        ));
                        let Some(id) = Json::parse(created.trim())
                            .ok()
                            .and_then(|j| j.get("session").and_then(Json::as_u64))
                        else {
                            continue;
                        };
                        service.handle_line(&format!(
                            "{{\"op\":\"session.validate\",\"session\":{id},\
                             \"validations\":{{\"key\":\"k{k}\"}}}}"
                        ));
                        service.handle_line(&format!(
                            "{{\"op\":\"session.commit\",\"session\":{id}}}"
                        ));
                    }
                }
            })
        };
        let mut previous: HashMap<String, f64> = HashMap::new();
        let mut outcome = Ok(());
        for _ in 0..rounds {
            let samples = match validate_prom(&scrape(&service)) {
                Ok(samples) => samples,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            };
            for (metric, &value) in &samples {
                let prior = previous.get(metric).copied().unwrap_or(0.0);
                if metric.contains("_total") && value + 1e-9 < prior {
                    outcome = Err(format!("{metric} decreased: {prior} -> {value}"));
                    break;
                }
            }
            if outcome.is_err() {
                break;
            }
            previous = samples;
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }
}
