//! Incremental/parallel region certification must be a drop-in
//! replacement for the from-scratch sequential search.
//!
//! Three layers of evidence:
//!
//! * **Property tests** — on fully randomized instances (random master,
//!   rules, patterns, universes that mix master-derived truths with
//!   adversarial foreign/corrupted ones — the latter exercise the
//!   poisoned-truth fixpoint fallback), [`search_regions`] at 1 and at
//!   N threads produces exactly the regions of the
//!   [`find_regions_from_scratch`] oracle.
//! * **Delta equivalence** — splitting the master into a base plus an
//!   appended suffix, `search(base)` + [`recheck_regions`] equals a full
//!   `search(full)` — same regions, same verdict counters.
//! * **Deterministic work guards** — on the UK fixture the incremental
//!   path runs strictly fewer certification fixpoints than the oracle,
//!   and a master-append recheck probes a small fraction of what the
//!   full re-search probes. Counts, not wall-clock: cannot flake.

use cerfix::{
    find_regions_from_scratch, recheck_regions, search_regions, MasterData, RegionFinderOptions,
    RegionSearch, RegionSearchResult,
};
use cerfix_gen::uk;
use cerfix_relation::{RelationBuilder, Schema, Tuple, Value};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ARITY: usize = 6;

/// A random region-search instance. Universes mix (a) master-derived
/// truths (the MDM assumption — mostly unpoisoned, exercising the
/// lattice), (b) corrupted copies (often poisoned — exercising the
/// fixpoint fallback), and (c) foreign tuples (rules stall).
fn random_instance(seed: u64, n_master: usize) -> (RuleSet, Vec<Tuple>, Vec<Tuple>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..ARITY).map(|i| format!("a{i}")).collect();
    let input = Schema::of_strings("in", names.iter().map(String::as_str)).unwrap();
    let ms = Schema::of_strings("m", names.iter().map(String::as_str)).unwrap();

    let val = |rng: &mut StdRng| format!("v{}", rng.gen_range(0..4u8));
    let mut master_rows: Vec<Vec<String>> = Vec::new();
    for _ in 0..n_master {
        master_rows.push((0..ARITY).map(|_| val(&mut rng)).collect());
    }

    let n_rules = rng.gen_range(2..9usize);
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    for r in 0..n_rules {
        let mut attrs: Vec<usize> = (0..ARITY).collect();
        for i in (1..attrs.len()).rev() {
            attrs.swap(i, rng.gen_range(0..=i));
        }
        let lhs_n = rng.gen_range(1..3usize);
        let rhs_n = rng.gen_range(1..3usize);
        let lhs: Vec<(usize, usize)> = attrs[..lhs_n].iter().map(|&a| (a, a)).collect();
        let rhs: Vec<(usize, usize)> = attrs[lhs_n..lhs_n + rhs_n]
            .iter()
            .map(|&a| (a, a))
            .collect();
        let pattern = if rng.gen_bool(0.4) {
            let gate = attrs[lhs_n + rhs_n];
            if rng.gen_bool(0.5) {
                PatternTuple::empty().with_eq(gate, Value::str(val(&mut rng)))
            } else {
                PatternTuple::empty().with_ne(gate, Value::str(val(&mut rng)))
            }
        } else {
            PatternTuple::empty()
        };
        rules
            .add(EditingRule::new(format!("r{r}"), &input, &ms, lhs, rhs, pattern).unwrap())
            .unwrap();
    }

    let mut universe: Vec<Tuple> = Vec::new();
    for row in &master_rows {
        // Master-derived truth.
        universe.push(Tuple::of_strings(input.clone(), row.iter().map(String::as_str)).unwrap());
        // Corrupted copy: one cell flipped — frequently poisoned.
        if rng.gen_bool(0.5) {
            let mut corrupt = row.clone();
            corrupt[rng.gen_range(0..ARITY)] = val(&mut rng);
            universe.push(
                Tuple::of_strings(input.clone(), corrupt.iter().map(String::as_str)).unwrap(),
            );
        }
    }
    // Foreign entities.
    for _ in 0..rng.gen_range(0..3usize) {
        universe.push(
            Tuple::of_strings(
                input.clone(),
                (0..ARITY)
                    .map(|_| format!("x{}", rng.gen_range(0..9u8)))
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        );
    }

    let master_tuples: Vec<Tuple> = master_rows
        .iter()
        .map(|row| Tuple::of_strings(ms.clone(), row.iter().map(String::as_str)).unwrap())
        .collect();
    (rules, master_tuples, universe)
}

fn master_of(rules: &RuleSet, tuples: &[Tuple]) -> MasterData {
    let relation = RelationBuilder::new(rules.master_schema().clone())
        .build()
        .unwrap();
    let mut md = MasterData::new(relation);
    if !tuples.is_empty() {
        md.append_rows(tuples.to_vec()).unwrap();
    }
    md
}

fn assert_same_regions(a: &RegionSearchResult, b: &RegionSearchResult, what: &str) {
    assert_eq!(a.regions, b.regions, "{what}: regions differ");
    assert_eq!(a.stats.candidates, b.stats.candidates, "{what}: candidates");
    assert_eq!(
        a.stats.rejected_by_certification, b.stats.rejected_by_certification,
        "{what}: rejects"
    );
    assert_eq!(a.stats.vacuous, b.stats.vacuous, "{what}: vacuous");
}

fn options(threads: usize) -> RegionFinderOptions {
    RegionFinderOptions {
        top_k: 16,
        threads,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Incremental (1 thread and 4 threads) equals the from-scratch
    /// sequential oracle on randomized instances — same certified set,
    /// same ranked regions, including poisoned/adversarial universes and
    /// rule sets that disagree with master data.
    #[test]
    fn incremental_equals_from_scratch_oracle(seed in 0u64..100_000) {
        let (rules, master_tuples, universe) = random_instance(seed, 6);
        let master = master_of(&rules, &master_tuples);
        let oracle = find_regions_from_scratch(&rules, &master, &universe, &options(1));
        let seq = search_regions(&rules, &master, &universe, &options(1));
        let par = search_regions(&rules, &master, &universe, &options(4));
        assert_same_regions(&oracle, &seq.result, "sequential");
        assert_same_regions(&oracle, &par.result, "parallel");
    }

    /// Master-append delta: `search(base)` + `recheck` equals a full
    /// re-search on the appended master with the extended universe.
    #[test]
    fn recheck_equals_full_research(seed in 0u64..100_000, split in 1usize..6) {
        let (rules, master_tuples, _) = random_instance(seed, 7);
        let split = split.min(master_tuples.len().saturating_sub(1)).max(1);
        let (base_rows, appended_rows) = master_tuples.split_at(split);

        // Universe mirrors the server shape: one truth per master row,
        // reinterpreted over the input schema, appended in row order.
        let input = rules.input_schema().clone();
        let truth_of = |t: &Tuple| {
            Tuple::new(input.clone(), t.values().to_vec()).unwrap()
        };
        let base_universe: Vec<Tuple> = base_rows.iter().map(truth_of).collect();
        let full_universe: Vec<Tuple> = master_tuples.iter().map(truth_of).collect();

        let mut master = master_of(&rules, base_rows);
        let prior = search_regions(&rules, &master, &base_universe, &options(2));
        master.append_rows(appended_rows.to_vec()).unwrap();

        let patched = recheck_regions(&rules, &master, &full_universe, &prior, &options(2));
        let full = search_regions(&rules, &master, &full_universe, &options(2));
        assert_same_regions(&full.result, &patched.result, "recheck");
        prop_assert_eq!(patched.master_generation(), master.generation());
        prop_assert_eq!(patched.universe_len(), full_universe.len());
    }
}

fn uk_fixture() -> (RuleSet, MasterData, Vec<Tuple>) {
    let mut rng = StdRng::seed_from_u64(20_26);
    let scenario = uk::scenario(80, &mut rng);
    let master = MasterData::new(scenario.master.clone());
    (scenario.rules, master, scenario.universe)
}

/// The work guard of the tentpole: on the UK fixture the memoized
/// lattice path certifies with strictly fewer fixpoint runs than the
/// from-scratch oracle (which runs `universe × candidates` of them).
#[test]
fn uk_incremental_runs_strictly_fewer_fixpoints() {
    let (rules, master, universe) = uk_fixture();
    let oracle = find_regions_from_scratch(&rules, &master, &universe, &options(1));
    let incremental = search_regions(&rules, &master, &universe, &options(1));
    assert_same_regions(&oracle, &incremental.result, "uk");

    let oracle_fixpoints = oracle.stats.engine.fixpoint_runs;
    let incremental_fixpoints = incremental.result.stats.engine.fixpoint_runs;
    assert!(
        oracle_fixpoints > universe.len(),
        "oracle must simulate universe × candidates processes, got {oracle_fixpoints}"
    );
    assert!(
        incremental_fixpoints < oracle_fixpoints,
        "incremental {incremental_fixpoints} vs oracle {oracle_fixpoints} fixpoints"
    );
    assert_eq!(
        incremental_fixpoints, 0,
        "the UK universe is master-derived: no truth is poisoned, every \
         probe is a closure"
    );
    let stats = &incremental.result.stats;
    assert!(stats.closure_probes > 0);
    assert!(stats.lattice_hits > 0, "sibling covers must share prefixes");
    assert_eq!(stats.truth_profiles, universe.len());
    // Profiles cost one lookup per rule per truth; the oracle pays per
    // candidate per truth per firing.
    assert!(
        stats.engine.master_lookups <= oracle.stats.engine.master_lookups,
        "incremental may not look up more than the oracle"
    );
}

/// Parallelism is work-stealing but the merge is order-stable: results
/// are identical at every thread count.
#[test]
fn uk_parallel_is_deterministic() {
    let (rules, master, universe) = uk_fixture();
    let reference = search_regions(&rules, &master, &universe, &options(1));
    for threads in [2, 3, 8] {
        let parallel = search_regions(&rules, &master, &universe, &options(threads));
        assert_same_regions(&reference.result, &parallel.result, "threads");
    }
}

/// Probe accounting for a recheck: appending one master entity
/// re-certifies only what the new keys touch — an order of magnitude
/// fewer probes than the full re-search, deterministically.
#[test]
fn uk_master_append_recheck_is_cheap() {
    let (rules, mut master, mut universe) = uk_fixture();
    let prior = search_regions(&rules, &master, &universe, &options(1));
    assert!(!prior.result.regions.is_empty());

    // A brand-new entity: fresh zip/phone keys.
    let ms = master.schema().clone();
    let new_row = Tuple::of_strings(
        ms,
        [
            "Zoe",
            "Quinn",
            "0161",
            "5550001",
            "077999888",
            "9 Void St",
            "Mcr",
            "M1 1AA",
            "01/01/90",
            "F",
        ],
    )
    .unwrap();
    let delta = master.append_rows(vec![new_row.clone()]).unwrap();
    assert_eq!(delta.appended, 1);
    assert!(
        delta.touched_keys.iter().all(|(_, keys)| keys.len() <= 1),
        "one row touches at most one key per index"
    );
    let input = rules.input_schema().clone();
    universe.push(
        Tuple::of_strings(
            input.clone(),
            [
                "Zoe",
                "Quinn",
                "0161",
                "5550001",
                "1",
                "9 Void St",
                "Mcr",
                "M1 1AA",
                "CD",
            ],
        )
        .unwrap(),
    );
    universe.push(
        Tuple::of_strings(
            input,
            [
                "Zoe",
                "Quinn",
                "0161",
                "077999888",
                "2",
                "9 Void St",
                "Mcr",
                "M1 1AA",
                "DVD",
            ],
        )
        .unwrap(),
    );

    let patched = recheck_regions(&rules, &master, &universe, &prior, &options(1));
    let full = search_regions(&rules, &master, &universe, &options(1));
    assert_same_regions(&full.result, &patched.result, "uk recheck");

    // Total certification work: per-truth rule profiles (the master
    // lookups), lattice closures, and fallback fixpoints.
    let probes = |search: &RegionSearch| {
        let stats = &search.result.stats;
        stats.truth_profiles + stats.closure_probes + stats.engine.fixpoint_runs
    };
    let (delta_probes, full_probes) = (probes(&patched), probes(&full));
    assert!(
        full_probes >= 10 * delta_probes.max(1),
        "delta recheck must probe ≥10× less: {delta_probes} vs {full_probes}"
    );
    assert!(
        patched.result.stats.candidates_reused > 0,
        "untouched candidates must be reused"
    );
    // The from-scratch oracle would have re-run every fixpoint; the
    // delta path runs none on this unpoisoned fixture.
    let oracle_full = find_regions_from_scratch(&rules, &master, &universe, &options(1));
    assert!(
        oracle_full.stats.engine.fixpoint_runs
            >= 10 * patched.result.stats.engine.fixpoint_runs.max(1),
        "≥10× fewer certification fixpoints than a full from-scratch re-search"
    );
}

/// Appends that poison existing keys (a second, disagreeing row) must
/// flow through the recheck and reject the affected regions, exactly as
/// a full re-search would.
#[test]
fn uk_master_append_ambiguity_propagates() {
    let (rules, mut master, universe) = uk_fixture();
    let prior = search_regions(&rules, &master, &universe, &options(1));
    assert!(!prior.result.regions.is_empty());

    // Duplicate the first master entity's zip with a different street:
    // {zip,...} regions covering that entity must now fail.
    let first = master.tuple(0).unwrap().clone();
    let ms = rules.master_schema().clone();
    let zip = ms.attr_id("zip").unwrap();
    let street = ms.attr_id("str").unwrap();
    let mut ambiguous = first.clone();
    ambiguous
        .set(street, Value::str("666 Conflict Ave"))
        .unwrap();
    ambiguous
        .set(ms.attr_id("Hphn").unwrap(), Value::str("1112223"))
        .unwrap();
    assert_eq!(ambiguous.get(zip), first.get(zip), "same zip, new street");
    master.append_rows(vec![ambiguous]).unwrap();

    // Universe unchanged: the appended row is a duplicate (dirty) entity,
    // not a new truth.
    let patched = recheck_regions(&rules, &master, &universe, &prior, &options(1));
    let full = search_regions(&rules, &master, &universe, &options(1));
    assert_same_regions(&full.result, &patched.result, "ambiguous recheck");
    assert!(
        patched.result.stats.recertified > 0,
        "touched-key candidates must be re-probed"
    );
    assert_ne!(
        patched.result.regions, prior.result.regions,
        "the introduced ambiguity must change the certified regions"
    );
}

/// The Explorer façade: master appends patch its cached regions in
/// place via the retained search.
#[test]
fn explorer_append_master_patches_regions() {
    let (rules, master, mut universe) = uk_fixture();
    let mut explorer = cerfix::Explorer::new(rules, master);
    let before = explorer.recompute_regions(&universe, &options(1));
    assert!(!before.regions.is_empty());

    let ms = explorer.master().schema().clone();
    let row = Tuple::of_strings(
        ms,
        [
            "Ada",
            "Byron",
            "01223",
            "3332221",
            "078123456",
            "1 Abbey Rd",
            "Cam",
            "CB2 1TN",
            "10/12/15",
            "F",
        ],
    )
    .unwrap();
    let input = explorer.rules().input_schema().clone();
    universe.push(
        Tuple::of_strings(
            input,
            [
                "Ada",
                "Byron",
                "01223",
                "3332221",
                "1",
                "1 Abbey Rd",
                "Cam",
                "CB2 1TN",
                "CD",
            ],
        )
        .unwrap(),
    );
    let delta = explorer
        .append_master(vec![row], &universe, &options(1))
        .unwrap();
    assert_eq!(delta.appended, 1);
    let full = search_regions(explorer.rules(), explorer.master(), &universe, &options(1));
    assert_eq!(explorer.regions(), &full.result.regions[..]);
}
