//! Property tests over the relational substrate: CSV round-trips for
//! arbitrary content, total ordering of values, index/scan agreement,
//! and constraint-set satisfiability versus brute force.

use cerfix_relation::{
    read_relation_str, write_relation_str, CompareOp, DataType, HashIndex, Predicate, Relation,
    Schema, Tuple, Value,
};
use cerfix_rules::ConstraintSet;
use proptest::prelude::*;

fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        proptest::string::string_regex("[\\x20-\\x7E]{0,16}")
            .unwrap()
            .prop_map(Value::str),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// CSV round-trips arbitrary printable strings, including quotes,
    /// commas and newlines.
    #[test]
    fn csv_round_trip(cells in proptest::collection::vec(
        proptest::collection::vec("[\\x20-\\x7E\\n]{0,20}", 3), 0..12)
    ) {
        let schema = Schema::of_strings("t", ["a", "b", "c"]).unwrap();
        let mut rel = Relation::empty(schema.clone());
        for row in &cells {
            // Empty strings parse back as nulls; normalize expectation by
            // writing a sentinel for empties.
            let row: Vec<String> =
                row.iter().map(|s| if s.is_empty() { "∅mark".into() } else { s.clone() }).collect();
            rel.push(Tuple::of_strings(schema.clone(), row).unwrap()).unwrap();
        }
        let text = write_relation_str(&rel);
        let back = read_relation_str(schema, &text).unwrap();
        prop_assert_eq!(back.len(), rel.len());
        for ((_, a), (_, b)) in rel.iter().zip(back.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Value ordering is a total order: antisymmetric, transitive, and
    /// consistent with equality; equal values hash identically.
    #[test]
    fn value_order_is_total(a in any_value(), b in any_value(), c in any_value()) {
        use std::cmp::Ordering;
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Totality + antisymmetry.
        match a.cmp(&b) {
            Ordering::Equal => {
                prop_assert_eq!(&a, &b);
                let mut ha = DefaultHasher::new();
                let mut hb = DefaultHasher::new();
                a.hash(&mut ha);
                b.hash(&mut hb);
                prop_assert_eq!(ha.finish(), hb.finish());
            }
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    /// Index lookups agree with predicate scans for every key.
    #[test]
    fn index_agrees_with_scan(keys in proptest::collection::vec("[a-c]{1,2}", 1..40)) {
        let schema = Schema::of_strings("t", ["k", "v"]).unwrap();
        let mut rel = Relation::empty(schema.clone());
        for (i, k) in keys.iter().enumerate() {
            rel.push(Tuple::of_strings(schema.clone(), [k.as_str(), &i.to_string()]).unwrap())
                .unwrap();
        }
        let idx = HashIndex::build(&rel, vec![0]);
        for k in &keys {
            let via_index = idx.lookup(&[Value::str(k)]).to_vec();
            let via_scan = rel.scan(&[Predicate::new(0, CompareOp::Eq, Value::str(k))]);
            prop_assert_eq!(via_index, via_scan);
        }
    }

    /// ConstraintSet satisfiability matches brute-force enumeration over
    /// a closed world of candidate strings.
    #[test]
    fn constraints_match_brute_force(
        eq in proptest::option::of(0usize..4),
        nes in proptest::collection::btree_set(0usize..4, 0..4),
    ) {
        let consts: Vec<Value> =
            ["a", "b", "c", "d"].iter().map(|s| Value::str(*s)).collect();
        let mut cs = ConstraintSet::unconstrained();
        if let Some(e) = eq {
            cs.add_eq(consts[e].clone());
        }
        for &n in &nes {
            cs.add_ne(consts[n].clone());
        }
        // Brute force over the constants plus one fresh value.
        let mut candidates = consts.clone();
        candidates.push(Value::str("fresh"));
        let brute = candidates.iter().any(|cand| {
            eq.is_none_or(|e| &consts[e] == cand)
                && nes.iter().all(|&n| &consts[n] != cand)
        });
        prop_assert_eq!(cs.is_satisfiable(DataType::String), brute);
        // Witnesses, when produced, satisfy the constraints.
        if let Some(w) = cs.witness(DataType::String) {
            if let Some(e) = eq {
                prop_assert_eq!(&w, &consts[e]);
            }
            for &n in &nes {
                prop_assert_ne!(&w, &consts[n]);
            }
        }
    }

    /// Tuple projection preserves order and values.
    #[test]
    fn projection_preserves(vals in proptest::collection::vec("[a-z]{0,6}", 4)) {
        let schema = Schema::of_strings("t", ["a", "b", "c", "d"]).unwrap();
        let t = Tuple::of_strings(schema, vals.clone()).unwrap();
        let proj = t.project(&[3, 1]);
        prop_assert_eq!(proj, vec![Value::str(&vals[3]), Value::str(&vals[1])]);
    }
}
