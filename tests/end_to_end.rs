//! End-to-end integration tests: generator → rules → consistency →
//! regions → monitor → audit → evaluation, for every scenario.

use cerfix::{
    check_consistency, clean_stream, find_regions, AuditStats, ConsistencyOptions, DataMonitor,
    OracleUser, RegionFinderOptions,
};
use cerfix_gen::{dblp, evaluate_stream, hosp, make_workload, uk, NoiseSpec, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn full_pipeline(scenario: &Scenario, n_tuples: usize, noise: f64, seed: u64) {
    let master = scenario.master_data();

    // Rules must be consistent in the demo's operating regime.
    let consistency = check_consistency(
        &scenario.rules,
        &master,
        &ConsistencyOptions::entity_coherent(),
    );
    assert!(
        consistency.is_consistent(),
        "{}: {:?}",
        scenario.name,
        consistency.conflicts
    );

    // Regions exist and are ranked ascending.
    let regions = find_regions(
        &scenario.rules,
        &master,
        &scenario.universe,
        &RegionFinderOptions::default(),
    )
    .regions;
    assert!(!regions.is_empty(), "{}: no certain regions", scenario.name);
    for w in regions.windows(2) {
        assert!(
            w[0].size() <= w[1].size(),
            "{}: ranking violated",
            scenario.name
        );
    }

    // Clean a dirty stream with oracle users.
    let monitor = DataMonitor::new(&scenario.rules, &master).with_regions(regions);
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = make_workload(
        &scenario.universe,
        n_tuples,
        &NoiseSpec::with_rate(noise),
        &mut rng,
    );
    let truths = workload.truth.clone();
    let report = clean_stream(&monitor, workload.dirty.iter().cloned(), move |idx, _| {
        Box::new(OracleUser::new(truths[idx].clone()))
    })
    .unwrap();

    // Every tuple reaches a certain fix equal to its ground truth.
    assert_eq!(report.complete_count(), n_tuples, "{}", scenario.name);
    for (outcome, truth) in report.outcomes.iter().zip(workload.truth.iter()) {
        assert_eq!(
            &outcome.tuple, truth,
            "{}: fix differs from truth",
            scenario.name
        );
    }

    // Cell-level scores: certain fixes have perfect precision and recall
    // (with an oracle user) and never break correct cells.
    let repaired: Vec<_> = report.outcomes.iter().map(|o| o.tuple.clone()).collect();
    let eval = evaluate_stream(&workload.dirty, &repaired, &workload.truth);
    assert_eq!(eval.broke_correct, 0, "{}", scenario.name);
    if eval.cells_changed > 0 {
        assert_eq!(eval.precision(), Some(1.0), "{}", scenario.name);
    }
    if eval.erroneous_cells > 0 {
        assert_eq!(eval.recall(), Some(1.0), "{}", scenario.name);
    }

    // The audit log accounts for every validated cell exactly once.
    let stats = AuditStats::from_log(monitor.audit());
    let totals = stats.totals();
    assert_eq!(
        totals.user_validated + totals.auto_validated,
        n_tuples * scenario.input.arity(),
        "{}: audit does not cover every cell",
        scenario.name
    );
}

#[test]
fn uk_pipeline() {
    let mut rng = StdRng::seed_from_u64(1);
    let scenario = uk::scenario(300, &mut rng);
    full_pipeline(&scenario, 60, 0.3, 101);
}

#[test]
fn hosp_pipeline() {
    let mut rng = StdRng::seed_from_u64(2);
    let scenario = hosp::scenario(300, &mut rng);
    full_pipeline(&scenario, 60, 0.3, 102);
}

#[test]
fn dblp_pipeline() {
    let mut rng = StdRng::seed_from_u64(3);
    let scenario = dblp::scenario(300, &mut rng);
    full_pipeline(&scenario, 60, 0.3, 103);
}

#[test]
fn uk_pipeline_heavy_noise() {
    let mut rng = StdRng::seed_from_u64(4);
    let scenario = uk::scenario(200, &mut rng);
    full_pipeline(&scenario, 40, 0.8, 104);
}

#[test]
fn hosp_reproduces_twenty_eighty() {
    let mut rng = StdRng::seed_from_u64(5);
    let scenario = hosp::scenario(400, &mut rng);
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let workload = make_workload(
        &scenario.universe,
        100,
        &NoiseSpec::with_rate(0.3),
        &mut rng,
    );
    let truths = workload.truth.clone();
    let report = clean_stream(&monitor, workload.dirty.iter().cloned(), move |idx, _| {
        Box::new(OracleUser::new(truths[idx].clone()))
    })
    .unwrap();
    assert!(
        (report.user_fraction() - 0.2).abs() < 1e-9,
        "got {}",
        report.user_fraction()
    );
    assert!((report.auto_fraction() - 0.8).abs() < 1e-9);
}

#[test]
fn paper_example1_certain_fix_via_uk_scenario() {
    // The complete paper narrative through the generated scenario: the
    // Example 1 tuple is cleaned against the Example 2 master tuple.
    let mut rng = StdRng::seed_from_u64(6);
    let scenario = uk::scenario(50, &mut rng);
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    // Note: Example 1's tuple is bound to its own schema instance; rebuild
    // it over the scenario's shared schema object.
    let e1 = uk::example1_tuple();
    let t = cerfix_relation::Tuple::new(scenario.input.clone(), e1.values().to_vec()).unwrap();
    // Truth: Robert Brady's mobile-phone entity.
    let truth = scenario
        .universe
        .iter()
        .find(|u| {
            u.get_by_name("LN").unwrap() == &cerfix_relation::Value::str("Brady")
                && u.get_by_name("type").unwrap() == &cerfix_relation::Value::str("2")
        })
        .expect("Brady type=2 in universe")
        .clone();
    let mut user = OracleUser::new(truth);
    let outcome = monitor.clean(0, t, &mut user).unwrap();
    assert!(outcome.complete);
    assert_eq!(
        outcome.tuple.get_by_name("AC").unwrap(),
        &cerfix_relation::Value::str("131"),
        "the erroneous area code is certainly fixed to 131"
    );
    assert_eq!(
        outcome.tuple.get_by_name("city").unwrap(),
        &cerfix_relation::Value::str("Edi"),
        "the correct city is never messed up"
    );
}
