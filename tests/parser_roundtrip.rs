//! Property tests for the rule DSL: rendering any structurally valid
//! editing rule and re-parsing it yields the same rule.

use cerfix_gen::uk;
use cerfix_relation::Value;
use cerfix_rules::{parse_rules, render_er_dsl, EditingRule, PatternTuple, RuleDecl};
use proptest::prelude::*;

/// Candidate (input, master) attribute pairs with matching types over the
/// UK schema pair (everything is a string there, so any pair works).
fn any_pair() -> impl Strategy<Value = (usize, usize)> {
    (0usize..9, 0usize..10)
}

/// A printable constant for pattern cells: letters, digits, spaces and
/// quotes (exercising the `''` escape).
fn any_const() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 ']{1,12}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn er_render_parse_round_trip(
        lhs in proptest::collection::vec(any_pair(), 1..3),
        rhs_seed in proptest::collection::vec(any_pair(), 1..3),
        pattern_attr in 0usize..9,
        pattern_const in any_const(),
        pattern_kind in 0u8..3,
    ) {
        let input = uk::input_schema();
        let master = uk::master_schema();

        // Make the RHS disjoint from LHS evidence and the pattern attr,
        // and duplicate-free, as EditingRule::new requires.
        let evidence: std::collections::BTreeSet<usize> = lhs
            .iter()
            .map(|&(t, _)| t)
            .chain((pattern_kind != 0).then_some(pattern_attr))
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        let rhs: Vec<(usize, usize)> = rhs_seed
            .into_iter()
            .map(|(t, s)| ((t + 1) % 9, s))
            .filter(|(t, _)| !evidence.contains(t) && seen.insert(*t))
            .collect();
        prop_assume!(!rhs.is_empty());

        let pattern = match pattern_kind {
            0 => PatternTuple::empty(),
            1 => PatternTuple::empty().with_eq(pattern_attr, Value::str(&pattern_const)),
            _ => PatternTuple::empty().with_ne(pattern_attr, Value::str(&pattern_const)),
        };
        let Ok(rule) = EditingRule::new("r0", &input, &master, lhs, rhs, pattern) else {
            // Skip structurally invalid combinations the filters missed.
            return Ok(());
        };

        let text = render_er_dsl(&rule, &input, &master);
        let decls = parse_rules(&text, &input, &master)
            .unwrap_or_else(|e| panic!("rendered DSL failed to parse: {e}\n{text}"));
        prop_assert_eq!(decls.len(), 1);
        match &decls[0] {
            RuleDecl::Er(parsed) => prop_assert_eq!(parsed, &rule, "text: {}", text),
            other => prop_assert!(false, "unexpected decl {:?}", other),
        }
    }

    /// The parser never panics on arbitrary input lines (it returns
    /// errors instead).
    #[test]
    fn parser_total_on_garbage(line in "\\PC{0,60}") {
        let input = uk::input_schema();
        let master = uk::master_schema();
        let _ = parse_rules(&line, &input, &master); // must not panic
    }
}

#[test]
fn paper_rules_round_trip() {
    let input = uk::input_schema();
    let master = uk::master_schema();
    let decls = parse_rules(uk::UK_RULES_DSL, &input, &master).unwrap();
    assert_eq!(decls.len(), 9);
    for decl in decls {
        let RuleDecl::Er(rule) = decl else {
            panic!("er expected")
        };
        let text = render_er_dsl(&rule, &input, &master);
        let reparsed = parse_rules(&text, &input, &master).unwrap();
        let RuleDecl::Er(rule2) = &reparsed[0] else {
            panic!("er expected")
        };
        assert_eq!(&rule, rule2, "{text}");
    }
}
