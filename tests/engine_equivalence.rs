//! Engine equivalence: the delta-driven fixpoint must be a drop-in
//! replacement for the pass-based reference engine.
//!
//! Two layers of evidence:
//!
//! * **Property tests** — on the UK scenario and on fully randomized
//!   (master, rules, tuple, seed) instances, both engines produce
//!   identical final tuples, validated sets, and fix lists (same fixes,
//!   same order), and error identically on inconsistent instances —
//!   Church–Rosser equivalence preserved.
//! * **Deterministic work guards** — on the UK rules and on a
//!   mined-rules fixture (`discover_rules` over master data), the delta
//!   engine performs strictly fewer rule attempts than the pass-based
//!   engine and no more master lookups. Counts, not wall-clock: this
//!   cannot flake on machine speed.

use cerfix::{run_fixpoint, run_fixpoint_delta, CompiledRules, EngineStats, MasterData};
use cerfix_gen::uk;
use cerfix_relation::{AttrSet, RelationBuilder, Schema, Tuple, Value};
use cerfix_rules::{discover_rules, EditingRule, PatternTuple, RuleSet};
use proptest::prelude::*;
use proptest::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn uk_fixture() -> (RuleSet, MasterData, Vec<Tuple>) {
    let mut rng = StdRng::seed_from_u64(4242);
    let scenario = uk::scenario(50, &mut rng);
    let master = MasterData::new(scenario.master.clone());
    (scenario.rules, master, scenario.universe)
}

/// Run both engines on the same input and assert bit-for-bit agreement.
/// Returns (pass stats, delta stats) for the work guards.
fn assert_engines_agree(
    rules: &RuleSet,
    plan: &CompiledRules,
    master: &MasterData,
    tuple: &Tuple,
    seed: &AttrSet,
) -> Result<(EngineStats, EngineStats), TestCaseError> {
    let mut t_ref = tuple.clone();
    let mut v_ref = seed.clone();
    let reference = run_fixpoint(rules, master, &mut t_ref, &mut v_ref);

    let mut t = tuple.clone();
    let mut v = seed.clone();
    let delta = run_fixpoint_delta(plan, master, &mut t, &mut v);

    match (reference, delta) {
        (Ok(ref_report), Ok(report)) => {
            prop_assert_eq!(&t, &t_ref, "final tuples differ");
            prop_assert_eq!(&v, &v_ref, "validated sets differ");
            prop_assert_eq!(&report.fixes, &ref_report.fixes, "fix lists differ");
            prop_assert_eq!(
                &report.newly_validated,
                &ref_report.newly_validated,
                "validation order differs"
            );
            prop_assert_eq!(report.rule_firings, ref_report.rule_firings);
            prop_assert!(report.passes <= ref_report.passes);
            prop_assert!(
                report.stats.rule_attempts <= ref_report.stats.rule_attempts,
                "delta attempted more ({}) than pass-based ({})",
                report.stats.rule_attempts,
                ref_report.stats.rule_attempts
            );
            prop_assert!(report.stats.master_lookups <= ref_report.stats.master_lookups);
            Ok((ref_report.stats, report.stats))
        }
        (Err(e_ref), Err(e_delta)) => {
            prop_assert_eq!(
                e_ref.to_string(),
                e_delta.to_string(),
                "engines error differently"
            );
            Ok((EngineStats::default(), EngineStats::default()))
        }
        (Ok(_), Err(e)) => Err(TestCaseError::Fail(format!(
            "delta errored where pass-based succeeded: {e}"
        ))),
        (Err(e), Ok(_)) => Err(TestCaseError::Fail(format!(
            "pass-based errored where delta succeeded: {e}"
        ))),
    }
}

/// A fully random instance: small alphabet per column so master key
/// collisions (and therefore ambiguous keys) arise naturally, random
/// single- or two-attribute rules, random pattern gates.
fn random_instance(seed: u64) -> (RuleSet, MasterData, Tuple, AttrSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    const ARITY: usize = 7;
    let names: Vec<String> = (0..ARITY).map(|i| format!("a{i}")).collect();
    let input = Schema::of_strings("in", names.iter().map(String::as_str)).unwrap();
    let ms = Schema::of_strings("m", names.iter().map(String::as_str)).unwrap();

    let val = |rng: &mut StdRng| format!("v{}", rng.gen_range(0..3u8));
    let n_rows = rng.gen_range(1..8usize);
    let mut builder = RelationBuilder::new(ms.clone());
    for _ in 0..n_rows {
        let row: Vec<String> = (0..ARITY).map(|_| val(&mut rng)).collect();
        builder = builder.row_strs(row);
    }
    let master = MasterData::new(builder.build().unwrap());

    let n_rules = rng.gen_range(1..10usize);
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    for r in 0..n_rules {
        let lhs_n = rng.gen_range(1..3usize);
        let mut attrs: Vec<usize> = (0..ARITY).collect();
        // Random distinct attributes: first lhs_n are the LHS, the next
        // 1-2 are the RHS, one more may gate a pattern.
        for i in (1..attrs.len()).rev() {
            attrs.swap(i, rng.gen_range(0..=i));
        }
        let lhs: Vec<(usize, usize)> = attrs[..lhs_n].iter().map(|&a| (a, a)).collect();
        let rhs_n = rng.gen_range(1..3usize);
        let rhs: Vec<(usize, usize)> = attrs[lhs_n..lhs_n + rhs_n]
            .iter()
            .map(|&a| (a, a))
            .collect();
        let pattern = if rng.gen_bool(0.3) {
            let gate = attrs[lhs_n + rhs_n];
            if rng.gen_bool(0.5) {
                PatternTuple::empty().with_eq(gate, Value::str(val(&mut rng)))
            } else {
                PatternTuple::empty().with_ne(gate, Value::str(val(&mut rng)))
            }
        } else {
            PatternTuple::empty()
        };
        rules
            .add(EditingRule::new(format!("r{r}"), &input, &ms, lhs, rhs, pattern).unwrap())
            .unwrap();
    }

    let tuple = Tuple::of_strings(
        input.clone(),
        (0..ARITY).map(|_| val(&mut rng)).collect::<Vec<_>>(),
    )
    .unwrap();
    let seed: AttrSet = (0..ARITY).filter(|_| rng.gen_bool(0.4)).collect();
    (rules, master, tuple, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// UK scenario: for any truth entity and any validated seed, both
    /// engines agree exactly.
    #[test]
    fn uk_delta_equals_pass_based(entity in 0usize..100, seed_mask in 0u16..512) {
        let (rules, master, universe) = uk_fixture();
        let plan = CompiledRules::compile(&rules, &master);
        let truth = &universe[entity % universe.len()];
        let seed: AttrSet = (0..9).filter(|a| seed_mask & (1 << a) != 0).collect();
        let masked = cerfix::region::masked_input(truth, &seed);
        assert_engines_agree(&rules, &plan, &master, &masked, &seed)?;
    }

    /// Randomized instances (random master, rules, patterns, dirty tuple,
    /// seed — including inconsistent rule sets, where both engines must
    /// fail with the same error).
    #[test]
    fn random_instances_delta_equals_pass_based(instance in 0u64..100_000) {
        let (rules, master, tuple, seed) = random_instance(instance);
        let plan = CompiledRules::compile(&rules, &master);
        assert_engines_agree(&rules, &plan, &master, &tuple, &seed)?;
    }

    /// The unindexed (T6 scan) ablation arm agrees with the indexed plan.
    #[test]
    fn unindexed_plan_agrees(instance in 0u64..100_000) {
        let (rules, master, tuple, seed) = random_instance(instance);
        let unindexed = MasterData::new_unindexed(master.relation().clone());
        let plan = CompiledRules::compile(&rules, &unindexed);
        assert_engines_agree(&rules, &plan, &unindexed, &tuple, &seed)?;
    }
}

/// Deterministic work guard on the UK rules: across the whole truth
/// universe (seeded from the paper's size-4 region), the delta engine
/// attempts strictly fewer rules and performs no more lookups.
#[test]
fn uk_delta_performs_strictly_fewer_attempts() {
    let (rules, master, universe) = uk_fixture();
    let plan = CompiledRules::compile(&rules, &master);
    let input = rules.input_schema().clone();
    let seed: AttrSet = ["zip", "phn", "type", "item"]
        .iter()
        .map(|n| input.attr_id(n).expect("uk attr"))
        .collect();

    let mut pass = EngineStats::default();
    let mut delta = EngineStats::default();
    for truth in &universe {
        let masked = cerfix::region::masked_input(truth, &seed);
        let mut t1 = masked.clone();
        let mut v1 = seed.clone();
        pass += run_fixpoint(&rules, &master, &mut t1, &mut v1)
            .expect("consistent")
            .stats;
        let mut t2 = masked;
        let mut v2 = seed.clone();
        delta += run_fixpoint_delta(&plan, &master, &mut t2, &mut v2)
            .expect("consistent")
            .stats;
    }
    assert!(
        delta.rule_attempts < pass.rule_attempts,
        "delta {} attempts vs pass-based {}",
        delta.rule_attempts,
        pass.rule_attempts
    );
    assert!(delta.master_lookups <= pass.master_lookups);
    assert_eq!(
        delta.index_probes, delta.master_lookups,
        "warmed path: every lookup is an index probe"
    );
}

/// Same guard on a mined rule set: FDs discovered from master data and
/// compiled into editing rules (the `discover.rs` path that produces
/// hundreds of rules on wide schemas).
#[test]
fn mined_rules_delta_performs_strictly_fewer_attempts() {
    let mut rng = StdRng::seed_from_u64(7);
    let relation = uk::generate_master(120, &mut rng);
    let master = MasterData::new(relation.clone());
    let input = uk::input_schema();
    let mined = discover_rules(&input, &uk::master_schema(), &relation, 2).expect("mining runs");
    assert!(mined.len() >= 4, "fixture mined only {} rules", mined.len());
    let mut rules = RuleSet::new(input.clone(), uk::master_schema());
    for d in mined {
        rules.add(d.rule).expect("unique mined names");
    }
    let plan = CompiledRules::compile(&rules, &master);

    let universe = uk::truth_universe(&relation);
    let zip: AttrSet = [input.attr_id("zip").expect("zip")].into();
    let mut pass = EngineStats::default();
    let mut delta = EngineStats::default();
    for truth in universe.iter().take(60) {
        let masked = cerfix::region::masked_input(truth, &zip);
        let mut t1 = masked.clone();
        let mut v1 = zip.clone();
        pass += run_fixpoint(&rules, &master, &mut t1, &mut v1)
            .expect("mined rules consistent on their own master")
            .stats;
        let mut t2 = masked;
        let mut v2 = zip.clone();
        delta += run_fixpoint_delta(&plan, &master, &mut t2, &mut v2)
            .expect("mined rules consistent on their own master")
            .stats;
    }
    assert!(
        delta.rule_attempts < pass.rule_attempts,
        "delta {} attempts vs pass-based {}",
        delta.rule_attempts,
        pass.rule_attempts
    );
    assert!(delta.master_lookups <= pass.master_lookups);
}
