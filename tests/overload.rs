//! Overload-robustness harness: deadlines, admission control, graceful
//! drain and self-re-pointing clients.
//!
//! The overload claim under test: the server sheds rather than
//! collapses. Five angles:
//!
//! 1. **Request deadlines**: a client `deadline_ms` cuts the quorum-ack
//!    wait short with a typed `deadline_exceeded` error long before the
//!    ack timeout, without counting as a `quorum_timeout` and without
//!    un-applying the locally durable commit.
//! 2. **Cost-aware shedding**: with a tiny shed watermark and one
//!    worker, a flood of heavy `clean` batches trips the shedder —
//!    heavy reads and then session mutations get retryable
//!    `overloaded` errors, `health` keeps answering (Critical is never
//!    shed) and reports the cause, and once the queue drains the
//!    hysteresis disarms and heavy reads are admitted again.
//! 3. **Quotas**: a full session registry flips readiness with an
//!    `overloaded` cause; a connection past `--max-connections` is
//!    refused at accept time with one typed error line.
//! 4. **Graceful drain**: `cerfix drain` (the real binary) against a
//!    live journaled server — existing connections keep working, new
//!    sessions answer `draining`, fresh connections are refused, the
//!    server exits within the bound, and a reopen of the data
//!    directory shows zero acked commits lost and the still-open
//!    session preserved byte-identical.
//! 5. **Self-re-pointing client**: a mutation sent to a follower comes
//!    back `not_primary: … primary is <addr>`; a budgeted client
//!    transparently re-dials the primary and succeeds, while a client
//!    with an empty retry budget surfaces the typed error instead of
//!    amplifying load.
//!
//! A sixth arm (`overload_smoke_goodput_under_double_load`, gated on
//! `CERFIX_OVERLOAD_SMOKE=1`) drives ~2× sustained capacity over TCP
//! and asserts goodput stays within 80% of the 1× baseline with the
//! accepted-request p99 inside the slow-request budget.

use cerfix::MasterData;
use cerfix_relation::{RelationBuilder, Schema, Value};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use cerfix_server::wire::Json;
use cerfix_server::{
    CleaningService, Client, Frontend, LocalClient, Request, RetryBudget, Server, ServiceConfig,
    StorageConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cerfix-overload-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// key/val/note fixture mirroring `tests/replication_faults.rs`: `key`
/// matches the master, the rule fixes `val`, and `note` must be
/// user-validated before a session completes.
fn fixture(rows: usize) -> (Arc<MasterData>, Arc<RuleSet>) {
    let input = Schema::of_strings("in", ["key", "val", "note"]).unwrap();
    let ms = Schema::of_strings("m", ["key", "val"]).unwrap();
    let mut builder = RelationBuilder::new(ms.clone());
    for i in 0..rows {
        builder = builder.row_strs([format!("k{i}"), format!("v{i}")]);
    }
    let master = MasterData::new(builder.build().unwrap());
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    rules
        .add(
            EditingRule::new(
                "kv",
                &input,
                &ms,
                vec![(0, 0)],
                vec![(1, 1)],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
    (Arc::new(master), Arc::new(rules))
}

fn row(k: &str, v: &str, n: &str) -> Vec<Value> {
    vec![Value::str(k), Value::str(v), Value::str(n)]
}

fn mem_service(config: ServiceConfig) -> CleaningService {
    let (master, rules) = fixture(20);
    CleaningService::new(master, rules, config)
}

/// Storage with an eager flusher and no autonomous snapshots: commit
/// acks are durable within ~1ms and the journal contents stay
/// test-controlled.
fn manual_storage(dir: &Path) -> StorageConfig {
    let mut cfg = StorageConfig::new(dir);
    cfg.flush_interval = Duration::from_millis(1);
    cfg.snapshot_interval = Duration::from_secs(3600);
    cfg.snapshot_every_events = u64::MAX;
    cfg
}

fn disk_service(dir: &Path, config: ServiceConfig) -> CleaningService {
    let (master, rules) = fixture(20);
    CleaningService::with_storage(master, rules, config, manual_storage(dir)).unwrap()
}

fn base_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        precompute_regions: false,
        ..ServiceConfig::default()
    }
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

// ---------------------------------------------------------------------
// 1. A client deadline cuts the quorum-ack wait short.
// ---------------------------------------------------------------------

#[test]
fn client_deadline_cuts_quorum_ack_wait_short() {
    let dir = tmp_dir("deadline-quorum");
    let service = disk_service(
        &dir,
        ServiceConfig {
            cluster_size: 2,
            ack_timeout: Duration::from_secs(8),
            ..base_config()
        },
    );
    let mut client = LocalClient::in_process(&service);
    let view = client.create_session(row("k1", "WRONG", "n")).unwrap();
    client
        .validate(
            view.session,
            vec![
                ("key".into(), Value::str("k1")),
                ("note".into(), Value::str("n")),
            ],
        )
        .unwrap();

    // No follower ever registers, so without a deadline this commit
    // would sit in the quorum gate for the full 8s ack timeout.
    let started = Instant::now();
    let response = service.handle_line(&format!(
        "{{\"op\":\"session.commit\",\"session\":{},\"deadline_ms\":250}}",
        view.session
    ));
    let elapsed = started.elapsed();
    assert!(response.contains("deadline_exceeded"), "{response}");
    assert!(!response.contains("quorum_timeout"), "{response}");
    assert!(
        elapsed >= Duration::from_millis(200),
        "cut before the deadline: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(4),
        "deadline did not cut the 8s ack wait: {elapsed:?}"
    );

    // The commit is applied and locally durable regardless — only the
    // acknowledgement degraded, exactly like a quorum timeout.
    assert!(
        client.get_session(view.session).is_err(),
        "deadline-cut commit must still be applied locally"
    );
    let metrics = service.metrics();
    assert!(metrics.requests_shed_deadline >= 1);
    assert_eq!(
        metrics.quorum_timeouts, 0,
        "a client deadline cut must not be booked as a quorum timeout"
    );

    drop(client);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 2. Load shedding by priority class, with hysteresis recovery.
// ---------------------------------------------------------------------

#[test]
fn overload_sheds_heavy_then_sessions_and_recovers() {
    let service = mem_service(ServiceConfig {
        workers: 1,
        shed_watermark: 2,
        precompute_regions: false,
        ..ServiceConfig::default()
    });
    // The epoll reactor is the frontend whose heavy requests park as
    // fire-and-forget batch jobs in the worker queue — the instrument
    // the shedder watches. (The threads frontend is caller-runs: its
    // heavy work occupies connection threads, not the queue.)
    let server = Server::bind_with("127.0.0.1:0", service.clone(), Frontend::Epoll).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || {
        let _ = server.run();
    });

    // Flood: 8 connections each keep one 800-tuple dirty `clean` batch
    // in flight. With a single worker, one admitted batch occupies it
    // while the other connections' batch jobs queue — depth ≥ 4 = 2×
    // the watermark, i.e. shed level 2. Batches that arrive while the
    // shedder is armed are themselves shed (cheap, typed) and resent,
    // so the server oscillates through armed and disarmed windows
    // until the flood stops.
    let mut flood_line = String::from("{\"op\":\"clean\",\"trust\":[],\"tuples\":[");
    for i in 0..800 {
        if i > 0 {
            flood_line.push(',');
        }
        flood_line.push_str(&format!("[\"k{}\",\"BAD\",\"n\"]", i % 20));
    }
    flood_line.push_str("]}\n");
    let flood_line = Arc::new(flood_line);
    let stop = Arc::new(AtomicBool::new(false));
    let floods: Vec<_> = (0..8)
        .map(|_| {
            let line = Arc::clone(&flood_line);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                let mut response = String::new();
                while !stop.load(Ordering::Relaxed) {
                    if stream.write_all(line.as_bytes()).is_err() {
                        break;
                    }
                    response.clear();
                    if reader.read_line(&mut response).is_err() || response.is_empty() {
                        break;
                    }
                }
            })
        })
        .collect();

    // Probes ride a separate connection with an EMPTY retry budget so
    // every typed refusal surfaces instead of being retried away.
    let mut probe = Client::connect(addr)
        .unwrap()
        .with_retry_budget(RetryBudget::new(0, 0.0));
    let mut saw_heavy_shed = false;
    let mut saw_session_shed = false;
    let mut saw_health_cause = false;
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline && !(saw_heavy_shed && saw_session_shed && saw_health_cause) {
        // Critical introspection is NEVER shed: an overloaded server
        // that goes dark to its operators cannot be diagnosed.
        let health = probe
            .request(&Request::Health)
            .expect("health must keep answering during overload");
        if health
            .get("causes")
            .and_then(Json::as_arr)
            .is_some_and(|causes| {
                causes.iter().any(|c| {
                    c.as_str()
                        .is_some_and(|s| s.contains("overloaded: shedding"))
                })
            })
        {
            saw_health_cause = true;
        }
        // Heavy reads go first (shed level 1)…
        match probe.request(&Request::Regions { top_k: Some(1) }) {
            Err(e) if e.to_string().contains("overloaded: shedding heavy reads") => {
                saw_heavy_shed = true;
            }
            _ => {}
        }
        // …session mutations only at level 2.
        match probe.create_session(row("k1", "BAD", "n")) {
            Err(e)
                if e.to_string()
                    .contains("overloaded: shedding session mutations") =>
            {
                saw_session_shed = true;
            }
            Ok(view) => {
                // Keep the registry clear of probe debris (the abort
                // itself may be shed at level 2; a leak is bounded).
                let _ = probe.abort(view.session);
            }
            Err(_) => {}
        }
    }
    stop.store(true, Ordering::Relaxed);
    for flood in floods {
        flood.join().unwrap();
    }
    assert!(saw_heavy_shed, "never observed a heavy-read shed");
    assert!(saw_session_shed, "never observed a session-mutation shed");
    assert!(
        saw_health_cause,
        "health never reported the overloaded cause"
    );
    assert!(service.metrics().requests_shed_overload >= 2);

    // Hysteresis: once the queue drains, the next observation disarms
    // the shedder and heavy reads are admitted again.
    wait_for("shedder to disarm after the flood", || {
        probe.request(&Request::Regions { top_k: Some(1) }).is_ok()
    });
    wait_for("readiness restored after the flood", || {
        probe
            .request(&Request::Health)
            .is_ok_and(|h| h.get("ready").and_then(Json::as_bool) == Some(true))
    });

    let _ = probe.shutdown();
    let _ = server_thread.join();
}

// ---------------------------------------------------------------------
// 3. Quotas: session registry and connection count.
// ---------------------------------------------------------------------

#[test]
fn session_quota_surfaces_overloaded_health_cause() {
    let service = mem_service(ServiceConfig {
        max_sessions: 2,
        ..base_config()
    });
    let mut client = LocalClient::in_process(&service);
    let a = client.create_session(row("k1", "BAD", "n")).unwrap();
    let _b = client.create_session(row("k2", "BAD", "n")).unwrap();

    let health = Json::parse(&service.handle_line("{\"op\":\"health\"}")).unwrap();
    assert_eq!(health.get("ready").and_then(Json::as_bool), Some(false));
    let causes = health.get("causes").and_then(Json::as_arr).unwrap();
    assert!(
        causes
            .iter()
            .any(|c| c.as_str() == Some("overloaded: session registry at its quota of 2")),
        "missing session-quota cause: {causes:?}"
    );

    // Freeing a slot clears the cause — the quota is a gauge, not a latch.
    client.abort(a.session).unwrap();
    let health = Json::parse(&service.handle_line("{\"op\":\"health\"}")).unwrap();
    assert_eq!(health.get("ready").and_then(Json::as_bool), Some(true));
}

#[test]
fn connection_quota_refuses_with_typed_error_at_accept() {
    let service = mem_service(ServiceConfig {
        max_connections: 1,
        ..base_config()
    });
    let server = Server::bind_with("127.0.0.1:0", service.clone(), Frontend::Threads).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || {
        let _ = server.run();
    });

    let mut first = Client::connect(addr).unwrap();
    first.hello().unwrap(); // round trip ⇒ the connection is registered

    // The second connection gets one typed error line, then EOF —
    // no thread, no buffers, no parser time spent on it.
    let second = TcpStream::connect(addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut line = String::new();
    BufReader::new(second).read_line(&mut line).unwrap();
    let json = Json::parse(line.trim()).unwrap();
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
    let error = json.get("error").and_then(Json::as_str).unwrap();
    assert_eq!(
        error,
        "overloaded: connection quota of 1 reached; retry with backoff"
    );
    assert!(service.metrics().connections_refused >= 1);

    let _ = first.shutdown();
    let _ = server_thread.join();
}

// ---------------------------------------------------------------------
// 4. Graceful drain: zero acked work lost, in-flight preserved.
// ---------------------------------------------------------------------

#[test]
fn drain_preserves_acked_commits_and_open_sessions() {
    let dir = tmp_dir("drain");
    let service = disk_service(&dir, base_config());
    let server = Server::bind_with("127.0.0.1:0", service.clone(), Frontend::Threads).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || {
        let _ = server.run();
    });

    // An empty retry budget so every typed refusal surfaces instead of
    // being retried away.
    let mut client = Client::connect(addr)
        .unwrap()
        .with_retry_budget(RetryBudget::new(0, 0.0));

    // Acked work: three committed sessions.
    let mut committed = Vec::new();
    for i in 0..3 {
        let key = format!("k{i}");
        let view = client.create_session(row(&key, "WRONG", "n")).unwrap();
        client
            .validate(
                view.session,
                vec![
                    ("key".into(), Value::str(&key)),
                    ("note".into(), Value::str("n")),
                ],
            )
            .unwrap();
        client.commit(view.session).unwrap();
        committed.push(view.session);
    }
    // In-flight work: one session left open across the drain.
    let open = client.create_session(row("k7", "WRONG", "n")).unwrap();
    let audit_before = client.audit_read_all(64).unwrap().len();
    assert!(audit_before >= 3);

    // Drain through the real CLI against the live server.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_cerfix"))
        .args(["drain", "--addr", &addr.to_string(), "--wait-ms", "3000"])
        .output()
        .unwrap();
    assert!(output.status.success(), "cerfix drain failed: {output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("draining"), "{stdout}");

    // Existing connections keep being served, but new sessions are
    // refused with the typed, retryable error…
    let err = client.create_session(row("k8", "WRONG", "n")).unwrap_err();
    assert!(err.to_string().contains("draining:"), "{err}");
    // …and fresh connections are refused at accept time.
    let refused = TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut line = String::new();
    BufReader::new(refused).read_line(&mut line).unwrap();
    assert!(
        line.contains("draining: server is draining"),
        "refusal line: {line:?}"
    );

    // The bound expires with the open session still live: the drain
    // monitor snapshots it for hand-off and shuts the server down.
    server_thread.join().unwrap();
    assert!(service.shutdown_requested());
    let metrics = service.metrics();
    assert_eq!(metrics.drains_started, 1);
    assert!(metrics.sessions_refused_draining >= 1);

    // Reopen the data directory: zero acked work lost.
    drop(client);
    drop(service);
    let reopened = disk_service(&dir, base_config());
    let mut local = LocalClient::in_process(&reopened);
    let recovered = local.get_session(open.session).unwrap();
    assert_eq!(recovered.tuple, open.tuple, "open session tuple");
    assert_eq!(recovered.status, open.status, "open session status");
    assert_eq!(
        recovered.validated, open.validated,
        "open session validated"
    );
    for id in committed {
        assert!(
            local.get_session(id).is_err(),
            "committed session {id} must not be resurrected"
        );
    }
    assert_eq!(
        local.audit_read_all(64).unwrap().len(),
        audit_before,
        "acked commits lost or duplicated across the drain"
    );

    drop(local);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 5. Self-re-pointing client under a retry budget.
// ---------------------------------------------------------------------

#[test]
fn client_repoints_to_primary_and_respects_retry_budget() {
    let pdir = tmp_dir("repoint-p");
    let fdir = tmp_dir("repoint-f");
    let (master, rules) = fixture(20);
    let primary = CleaningService::with_storage(
        Arc::clone(&master),
        Arc::clone(&rules),
        ServiceConfig {
            advertise: Some("primary".into()),
            ..base_config()
        },
        manual_storage(&pdir),
    )
    .unwrap();
    let pserver = Server::bind_with("127.0.0.1:0", primary.clone(), Frontend::Threads).unwrap();
    let paddr = pserver.local_addr().unwrap();
    let pthread = std::thread::spawn(move || {
        let _ = pserver.run();
    });

    let follower = CleaningService::with_storage(
        Arc::clone(&master),
        Arc::clone(&rules),
        ServiceConfig {
            replicate_from: Some(paddr.to_string()),
            advertise: Some("f1".into()),
            ..base_config()
        },
        manual_storage(&fdir),
    )
    .unwrap();
    let fserver = Server::bind_with("127.0.0.1:0", follower.clone(), Frontend::Threads).unwrap();
    let faddr = fserver.local_addr().unwrap();
    let fthread = std::thread::spawn(move || {
        let _ = fserver.run();
    });

    // An empty budget surfaces the typed error: retries must never be
    // free, or a redirect storm amplifies the overload it rode in on.
    let mut broke = Client::connect(faddr)
        .unwrap()
        .with_retry_budget(RetryBudget::new(0, 0.0));
    let err = broke.create_session(row("k1", "WRONG", "n")).unwrap_err();
    assert!(err.to_string().contains("not_primary"), "{err}");

    // A budgeted client follows the redirect transparently: the
    // follower's error names the primary, the client re-dials it, and
    // the same logical request succeeds there.
    let mut client = Client::connect(faddr).unwrap();
    assert_eq!(client.current_addr(), faddr.to_string());
    let view = client.create_session(row("k1", "WRONG", "n")).unwrap();
    assert_eq!(
        client.current_addr(),
        paddr.to_string(),
        "client should have re-pointed at the advertised primary"
    );
    // …and stays pointed there for follow-up requests.
    let after = client.get_session(view.session).unwrap();
    assert_eq!(after.session, view.session);
    client.abort(view.session).unwrap();

    let _ = broke.shutdown(); // stops the follower
    let _ = client.shutdown(); // stops the primary
    let _ = fthread.join();
    let _ = pthread.join();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

// ---------------------------------------------------------------------
// 6. Goodput smoke under 2× load (gated: CERFIX_OVERLOAD_SMOKE=1).
// ---------------------------------------------------------------------

/// Closed-loop drive: `clients` threads each hammer `clean` batches at
/// `addr` for `secs`, with empty retry budgets so shed requests return
/// immediately as typed errors. Returns (completed batches, shed
/// batches, accepted-request latencies).
fn drive(addr: std::net::SocketAddr, clients: usize, secs: u64) -> (u64, u64, Vec<Duration>) {
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr)
                    .unwrap()
                    .with_retry_budget(RetryBudget::new(0, 0.0));
                let batch: Vec<Vec<Value>> = (0..32)
                    .map(|i| row(&format!("k{}", i % 20), "BAD", "n"))
                    .collect();
                let mut good = 0u64;
                let mut shed = 0u64;
                let mut latencies = Vec::new();
                let deadline = Instant::now() + Duration::from_secs(secs);
                while Instant::now() < deadline {
                    let started = Instant::now();
                    match client.clean(batch.clone(), Vec::new()) {
                        Ok(_) => {
                            good += 1;
                            latencies.push(started.elapsed());
                        }
                        Err(e) if e.to_string().contains("overloaded") => {
                            shed += 1;
                            // The error contract says "retry with
                            // backoff" — honor it so the shed path
                            // itself is not a busy-loop.
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(e) => panic!("unexpected error under load: {e}"),
                    }
                }
                (good, shed, latencies)
            })
        })
        .collect();
    let mut good = 0;
    let mut shed = 0;
    let mut latencies = Vec::new();
    for handle in handles {
        let (g, s, mut l) = handle.join().unwrap();
        good += g;
        shed += s;
        latencies.append(&mut l);
    }
    (good, shed, latencies)
}

#[test]
fn overload_smoke_goodput_under_double_load() {
    if std::env::var_os("CERFIX_OVERLOAD_SMOKE").is_none() {
        eprintln!("CERFIX_OVERLOAD_SMOKE not set; skipping the goodput smoke");
        return;
    }
    let slow_ms = 500u64;
    let service = mem_service(ServiceConfig {
        workers: 1,
        shed_watermark: 64,
        slow_ms,
        precompute_regions: false,
        ..ServiceConfig::default()
    });
    let server = Server::bind_with("127.0.0.1:0", service.clone(), Frontend::Threads).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || {
        let _ = server.run();
    });

    // Warm caches, then baseline at 1× (2 closed-loop clients against
    // 1 worker) and overload at 2×.
    let _ = drive(addr, 1, 1);
    let (g1, shed1, _) = drive(addr, 2, 2);
    let (g2, shed2, lat2) = drive(addr, 4, 2);
    eprintln!(
        "goodput: baseline {g1} (shed {shed1}), 2x {g2} (shed {shed2}), \
         accepted requests at 2x: {}",
        lat2.len()
    );
    assert!(g1 > 0, "no baseline goodput at all");
    assert!(
        g2 as f64 >= 0.8 * g1 as f64,
        "goodput collapsed under 2x load: baseline {g1}, overloaded {g2}"
    );
    let mut sorted = lat2.clone();
    sorted.sort();
    let p99 = sorted[((sorted.len() * 99) / 100).min(sorted.len() - 1)];
    assert!(
        p99 <= Duration::from_millis(slow_ms),
        "accepted-request p99 {p99:?} over the {slow_ms}ms budget"
    );

    let mut ctl = Client::connect(addr).unwrap();
    let _ = ctl.shutdown();
    let _ = server_thread.join();
}
