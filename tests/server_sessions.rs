//! Concurrent service sessions match the single-threaded monitor.
//!
//! Eight TCP clients drive interleaved interactive sessions through the
//! wire protocol against one `cerfix-server`; every per-tuple outcome
//! (final tuple, completion, rounds, user/auto validation counts) must
//! equal a single-threaded [`DataMonitor`] reference run over the same
//! workload. Also covers cross-connection session attach, the batch
//! `clean` op against its sequential equivalent, and region/consistency
//! cache hits under concurrency.

use cerfix::{CleanOutcome, DataMonitor, OracleUser};
use cerfix_gen::{make_workload, uk, NoiseSpec, Workload};
use cerfix_relation::{SchemaRef, Tuple, Value};
use cerfix_server::{CleaningService, Client, CommitView, Frontend, Server, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const SESSIONS_PER_CLIENT: usize = 5;

struct Fixture {
    scenario: cerfix_gen::Scenario,
    workload: Workload,
    service: CleaningService,
}

fn fixture(workers: usize) -> Fixture {
    let mut rng = StdRng::seed_from_u64(0x5E55);
    let scenario = uk::scenario(150, &mut rng);
    let workload = make_workload(
        &scenario.universe,
        CLIENTS * SESSIONS_PER_CLIENT,
        &NoiseSpec::with_rate(0.35),
        &mut rng,
    );
    // No pre-computed regions: suggestions then come from the inference
    // system on both sides, so server sessions and the plain
    // `DataMonitor` reference are step-for-step identical.
    let service = CleaningService::new(
        Arc::new(scenario.master_data()),
        Arc::new(scenario.rules.clone()),
        ServiceConfig {
            workers,
            precompute_regions: false,
            ..ServiceConfig::default()
        },
    );
    Fixture {
        scenario,
        workload,
        service,
    }
}

/// Drive one session over the wire exactly like an [`OracleUser`]:
/// validate precisely the suggested attributes with their true values,
/// until the monitor reports `complete` or `stuck`.
fn oracle_session_over_wire(
    client: &mut Client,
    schema: &SchemaRef,
    dirty: &Tuple,
    truth: &Tuple,
) -> CommitView {
    let mut view = client
        .create_session(dirty.values().to_vec())
        .expect("create session");
    let mut guard = 0;
    while view.status == "awaiting_user" {
        guard += 1;
        assert!(guard <= 64, "runaway session");
        let validations: Vec<(String, Value)> = view
            .suggestion
            .iter()
            .map(|name| {
                let attr = schema.attr_id(name).expect("suggested attr exists");
                (name.clone(), truth.get(attr).clone())
            })
            .collect();
        assert!(
            !validations.is_empty(),
            "awaiting_user implies a suggestion"
        );
        view = client
            .validate(view.session, validations)
            .expect("validate");
    }
    client.commit(view.session).expect("commit")
}

#[test]
fn concurrent_wire_sessions_match_single_threaded_monitor() {
    // Both front ends must match the single-threaded oracle exactly.
    for frontend in [Frontend::Epoll, Frontend::Threads] {
        concurrent_sessions_match_monitor(frontend);
    }
}

fn concurrent_sessions_match_monitor(frontend: Frontend) {
    let Fixture {
        scenario,
        workload,
        service,
    } = fixture(4);

    // Single-threaded reference.
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let reference: Vec<CleanOutcome> = workload
        .dirty
        .iter()
        .zip(&workload.truth)
        .enumerate()
        .map(|(idx, (dirty, truth))| {
            let mut user = OracleUser::new(truth.clone());
            monitor
                .clean(idx, dirty.clone(), &mut user)
                .expect("consistent rules")
        })
        .collect();

    let handle =
        Server::spawn_with("127.0.0.1:0", service.clone(), frontend).expect("bind ephemeral");
    let addr: SocketAddr = handle.addr();
    let schema = scenario.input.clone();

    // CLIENTS concurrent connections, each interleaving its share of
    // sessions; results keyed by workload index.
    let mut results: Vec<Option<CommitView>> = vec![None; workload.len()];
    let result_slots: Vec<std::sync::Mutex<&mut Option<CommitView>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let schema = schema.clone();
            let workload = &workload;
            let result_slots = &result_slots;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for session_idx in 0..SESSIONS_PER_CLIENT {
                    let idx = client_idx * SESSIONS_PER_CLIENT + session_idx;
                    let commit = oracle_session_over_wire(
                        &mut client,
                        &schema,
                        &workload.dirty[idx],
                        &workload.truth[idx],
                    );
                    **result_slots[idx].lock().unwrap() = Some(commit);
                }
            });
        }
    });

    assert_eq!(service.live_sessions(), 0, "every session committed");
    for (idx, (commit, expected)) in results.iter().zip(&reference).enumerate() {
        let commit = commit.as_ref().expect("every session ran");
        assert_eq!(commit.complete, expected.complete, "tuple {idx} completion");
        assert_eq!(
            commit.tuple,
            expected.tuple.values().to_vec(),
            "tuple {idx} final values (dirty: {:?})",
            workload.dirty[idx].values()
        );
        assert_eq!(
            commit.rounds as usize, expected.rounds,
            "tuple {idx} rounds"
        );
        assert_eq!(
            commit.user_validated as usize, expected.user_validated,
            "tuple {idx} user validations"
        );
        assert_eq!(
            commit.auto_validated as usize, expected.auto_validated,
            "tuple {idx} auto validations"
        );
    }

    let snapshot = service.metrics();
    assert_eq!(snapshot.sessions_created, workload.len() as u64);
    assert_eq!(snapshot.sessions_committed, workload.len() as u64);
    assert_eq!(snapshot.errors, 0);

    handle.shutdown().expect("clean shutdown");
}

/// Shutdown latency: with the wakeup fd (epoll) and the half-close +
/// self-connect hooks (threads), a server with idle open connections
/// stops in milliseconds. The pre-reactor implementation rode out a
/// 200 ms per-connection read timeout plus a 25 ms accept poll — the
/// bound here fails if either ever creeps back.
#[test]
fn shutdown_completes_promptly_with_open_connections() {
    for frontend in [Frontend::Threads, Frontend::Epoll] {
        let Fixture { service, .. } = fixture(2);
        let handle = Server::spawn_with("127.0.0.1:0", service, frontend).expect("bind ephemeral");
        let mut clients: Vec<Client> = (0..4)
            .map(|_| Client::connect(handle.addr()).expect("connect"))
            .collect();
        for client in &mut clients {
            client.hello().expect("hello"); // connection fully established & served
        }
        let started = Instant::now();
        handle.shutdown().expect("clean shutdown");
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_millis(150),
            "{frontend:?} shutdown took {elapsed:?} with idle connections open"
        );
    }
}

#[test]
fn concurrent_region_requests_hit_cache() {
    let Fixture { service, .. } = fixture(2);
    let handle = Server::spawn("127.0.0.1:0", service.clone()).expect("bind ephemeral");
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Same key from every client: one compute, others hit.
                let (_, regions_a) = client.regions(None).expect("regions");
                let (cached, regions_b) = client.regions(None).expect("regions again");
                assert!(cached, "second identical request must be served from cache");
                assert_eq!(regions_a, regions_b);
                let (_, consistent) = client.check(Some("entity-coherent")).expect("check");
                assert!(
                    consistent,
                    "uk rules are consistent in the paper's entity-coherent mode"
                );
                let (cached, _) = client.check(Some("entity-coherent")).expect("check again");
                assert!(cached);
            });
        }
    });

    let snapshot = service.metrics();
    assert_eq!(
        snapshot.cache_misses, 3,
        "one plan compile + one region search + one consistency check computed, ever"
    );
    assert!(
        snapshot.cache_hits >= (2 * CLIENTS as u64).saturating_sub(2),
        "everything else served from cache (hits: {})",
        snapshot.cache_hits
    );
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn batch_clean_over_wire_matches_sequential_monitor() {
    let Fixture {
        scenario,
        workload,
        service,
    } = fixture(4);
    let schema = scenario.input.clone();
    // Trust the attributes a UK entry form pins down: phone, type, zip.
    let trust: Vec<String> = ["phn", "type", "zip"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let trusted: Vec<usize> = trust.iter().map(|n| schema.attr_id(n).unwrap()).collect();

    // Sequential reference: trusted columns validated as-is, fixpoint.
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let reference: Vec<Tuple> = workload
        .truth
        .iter()
        .enumerate()
        .map(|(idx, truth)| {
            // Feed truth tuples with trusted cells intact (an operator
            // vouching for form fields), dirty elsewhere.
            let mut entered = workload.dirty[idx].clone();
            for &a in &trusted {
                entered.set(a, truth.get(a).clone()).unwrap();
            }
            let mut session = monitor.start(idx, entered);
            let validations: Vec<(usize, Value)> = trusted
                .iter()
                .filter_map(|&a| {
                    let v = session.tuple.get(a);
                    (!v.is_null()).then(|| (a, v.clone()))
                })
                .collect();
            monitor
                .apply_validation(&mut session, &validations)
                .expect("consistent rules");
            session.tuple
        })
        .collect();

    let handle = Server::spawn("127.0.0.1:0", service).expect("bind ephemeral");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let batch: Vec<Vec<Value>> = workload
        .dirty
        .iter()
        .zip(&workload.truth)
        .map(|(dirty, truth)| {
            let mut entered = dirty.clone();
            for &a in &trusted {
                entered.set(a, truth.get(a).clone()).unwrap();
            }
            entered.values().to_vec()
        })
        .collect();
    let outcomes = client.clean(batch, trust).expect("batch clean");

    assert_eq!(outcomes.len(), reference.len());
    for (idx, (outcome, expected)) in outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(outcome.index as usize, idx, "outcomes in stream order");
        assert_eq!(
            outcome.tuple,
            expected.values().to_vec(),
            "tuple {idx} batch result"
        );
    }
    handle.shutdown().expect("clean shutdown");
}
