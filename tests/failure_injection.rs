//! Failure injection: the system must *detect* bad configurations and
//! degrade explicitly, never silently produce wrong fixes.

use cerfix::{
    check_consistency, clean_stream, CerfixError, ConsistencyOptions, DataMonitor, MasterData,
    OracleUser, SilentUser,
};
use cerfix_gen::uk;
use cerfix_relation::{RelationBuilder, Schema, Tuple, Value};
use cerfix_rules::{EditingRule, PatternTuple, RuleSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Dirty master data (the MDM assumption violated): two rules whose
/// derivations disagree for one entity must be reported by the checker,
/// and the run-time engine must refuse to overwrite the validated cell.
#[test]
fn dirty_master_is_detected_statically_and_dynamically() {
    // Input: (zip, AC, city, phone); master additionally carries a
    // mail_city column that disagrees with city on the same row — the
    // MDM "consistent and accurate" assumption violated.
    let input = Schema::of_strings("in", ["zip", "AC", "city", "phone"]).unwrap();
    let ms = Schema::of_strings("m", ["zip", "AC", "city", "mail_city", "phone"]).unwrap();
    let master = MasterData::new(
        RelationBuilder::new(ms.clone())
            .row_strs(["EH8", "131", "Edi", "Leith", "555"]) // inconsistent row
            .build()
            .unwrap(),
    );
    let a = |s: &str| input.attr_id(s).unwrap();
    let m = |s: &str| ms.attr_id(s).unwrap();
    let mut rules = RuleSet::new(input.clone(), ms.clone());
    rules
        .add(
            EditingRule::new(
                "zip_city",
                &input,
                &ms,
                vec![(a("zip"), m("zip"))],
                vec![(a("city"), m("city"))],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();
    rules
        .add(
            EditingRule::new(
                "ac_mail",
                &input,
                &ms,
                vec![(a("AC"), m("AC"))],
                // Fixes city from mail_city *and* phone, so it still has
                // work to do after zip_city validated city — the path on
                // which the engine checks agreement with validated cells.
                vec![(a("city"), m("mail_city")), (a("phone"), m("phone"))],
                PatternTuple::empty(),
            )
            .unwrap(),
        )
        .unwrap();

    // Static: flagged in the entity-coherent mode already (one row's own
    // columns disagree).
    let report = check_consistency(&rules, &master, &ConsistencyOptions::entity_coherent());
    assert!(!report.is_consistent());

    // Dynamic: running anyway surfaces the conflict as an error instead
    // of an order-dependent fix.
    let monitor = DataMonitor::new(&rules, &master);
    let t = Tuple::of_strings(input.clone(), ["EH8", "131", "???", "???"]).unwrap();
    let mut session = monitor.start(0, t);
    let err = monitor
        .apply_validation(
            &mut session,
            &[(a("zip"), Value::str("EH8")), (a("AC"), Value::str("131"))],
        )
        .unwrap_err();
    assert!(
        matches!(err, CerfixError::ValidatedCellConflict { .. }),
        "{err}"
    );
}

#[test]
fn silent_user_terminates_incomplete_without_changes() {
    let mut rng = StdRng::seed_from_u64(9);
    let scenario = uk::scenario(20, &mut rng);
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let dirty = scenario.universe[0].clone();
    let outcome = monitor.clean(0, dirty.clone(), &mut SilentUser).unwrap();
    assert!(!outcome.complete);
    assert_eq!(outcome.tuple, dirty, "no unsanctioned changes");
    assert_eq!(monitor.audit().len(), 0);
}

#[test]
fn invalid_validations_rejected() {
    let mut rng = StdRng::seed_from_u64(10);
    let scenario = uk::scenario(10, &mut rng);
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let mut session = monitor.start(0, scenario.universe[0].clone());
    assert!(matches!(
        monitor.apply_validation(&mut session, &[(99, Value::str("x"))]),
        Err(CerfixError::InvalidValidation { attr: 99, .. })
    ));
    assert!(matches!(
        monitor.apply_validation(&mut session, &[(0, Value::Null)]),
        Err(CerfixError::InvalidValidation { .. })
    ));
}

#[test]
fn empty_master_means_full_user_validation() {
    let scenario_rules = uk::rules();
    let master = MasterData::new(cerfix_relation::Relation::empty(uk::master_schema()));
    let monitor = DataMonitor::new(&scenario_rules, &master);
    let input = scenario_rules.input_schema().clone();
    let truth = Tuple::of_strings(
        input.clone(),
        [
            "Ann", "Lee", "131", "079", "2", "1 A St", "Edi", "EH1", "CD",
        ],
    )
    .unwrap();
    let mut user = OracleUser::new(truth.clone());
    let outcome = monitor
        .clean(0, Tuple::all_null(input.clone()), &mut user)
        .unwrap();
    assert!(outcome.complete, "degrades to all-user validation");
    assert_eq!(outcome.user_validated, input.arity());
    assert_eq!(outcome.auto_validated, 0);
    assert_eq!(outcome.tuple, truth);
}

#[test]
fn budget_exhaustion_is_reported_not_silent() {
    let mut rng = StdRng::seed_from_u64(11);
    let master = MasterData::new(uk::generate_master(200, &mut rng));
    let rules = uk::rules();
    let opts = ConsistencyOptions {
        pair_budget: 5,
        ..ConsistencyOptions::entity_coherent()
    };
    let report = check_consistency(&rules, &master, &opts);
    assert!(report.budget_exhausted, "saturation must be flagged");
}

#[test]
fn stream_with_unknown_entities_still_converges() {
    // Half the stream's entities are missing from master data: rules
    // stall, the monitor widens suggestions, and every session still
    // completes (user validates everything for unknown entities).
    let mut rng = StdRng::seed_from_u64(12);
    let scenario = uk::scenario(30, &mut rng);
    let master = scenario.master_data();
    let monitor = DataMonitor::new(&scenario.rules, &master);
    let input = scenario.input.clone();

    let known = scenario.universe[0].clone();
    let unknown = Tuple::of_strings(
        input.clone(),
        [
            "Zoe",
            "Quinn",
            "151",
            "070009999",
            "2",
            "9 Void St",
            "Lvp",
            "ZZ9 9ZZ",
            "CD",
        ],
    )
    .unwrap();
    let truths = vec![known.clone(), unknown.clone(), known.clone()];
    let dirty: Vec<Tuple> = truths
        .iter()
        .map(|t| {
            let mut d = t.clone();
            d.set_by_name("city", Value::str("WRONG")).unwrap();
            d
        })
        .collect();
    let truths2 = truths.clone();
    let report = clean_stream(&monitor, dirty, move |idx, _| {
        Box::new(OracleUser::new(truths2[idx].clone()))
    })
    .unwrap();
    assert_eq!(report.complete_count(), 3);
    for (outcome, truth) in report.outcomes.iter().zip(truths.iter()) {
        assert_eq!(&outcome.tuple, truth);
    }
    // The unknown entity required strictly more user effort.
    assert!(report.outcomes[1].user_validated > report.outcomes[0].user_validated);
}

#[test]
fn explorer_rejects_malformed_dsl_without_mutating() {
    let mut rng = StdRng::seed_from_u64(13);
    let master = MasterData::new(uk::generate_master(10, &mut rng));
    let mut explorer = cerfix::Explorer::new(
        RuleSet::new(uk::input_schema(), uk::master_schema()),
        master,
    );
    explorer.add_rules_dsl(uk::UK_RULES_DSL).unwrap();
    let before = explorer.rules().len();
    assert!(explorer.add_rules_dsl("er broken match nothing").is_err());
    assert!(explorer
        .add_rules_dsl(
            "er dup: match zip=zip fix AC:=AC when ()\ner phi1: match zip=zip fix AC:=AC when ()"
        )
        .is_err());
    // The first decl of the failing batch may have landed; rule names
    // stay unique and the set remains usable.
    assert!(explorer.rules().len() >= before);
    assert!(explorer.check_consistency().pairs_checked > 0);
}
