//! Integration: the discovery → verification → deployment pipeline.
//!
//! Rules mined from master data must flow through the same gates as
//! expert rules — consistency checking, region certification, monitoring
//! — and deliver the same correctness guarantee.

use cerfix::{
    check_consistency, clean_stream, find_regions, ConsistencyOptions, DataMonitor, OracleUser,
    RegionFinderOptions,
};
use cerfix_gen::{hosp, make_workload, uk, NoiseSpec};
use cerfix_rules::{discover_rules, RuleSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn discovered_uk_rules_pass_all_gates() {
    let mut rng = StdRng::seed_from_u64(21);
    let scenario = uk::scenario(300, &mut rng);
    let master = scenario.master_data();

    let discovered = discover_rules(
        &scenario.input,
        &scenario.master_schema,
        &scenario.master,
        8,
    )
    .unwrap();
    assert!(!discovered.is_empty());
    // Expected FD structure on the UK master: zip determines every shared
    // attribute; AC and city determine each other.
    let names: Vec<&str> = discovered.iter().map(|d| d.rule.name()).collect();
    assert!(names.contains(&"auto_zip_city#0"), "{names:?}");
    assert!(names.contains(&"auto_zip_AC#0"));
    assert!(names.contains(&"auto_AC_city#0"));
    assert!(
        !names.iter().any(|n| n.contains("phn")),
        "no phone correspondence by name"
    );

    let mut rules = RuleSet::new(scenario.input.clone(), scenario.master_schema.clone());
    for d in &discovered {
        rules.add(d.rule.clone()).unwrap();
    }

    // Gate 1: consistency.
    let report = check_consistency(&rules, &master, &ConsistencyOptions::entity_coherent());
    assert!(report.is_consistent(), "{:?}", report.conflicts);

    // Gate 2: certified regions exist; discovered rules are not type-gated
    // so the minimal region's tableau covers both phone types.
    let regions = find_regions(
        &rules,
        &master,
        &scenario.universe,
        &RegionFinderOptions::default(),
    )
    .regions;
    assert!(!regions.is_empty());
    let first = &regions[0];
    assert_eq!(first.size(), 4, "{:?}", first);
    assert!(first.covers(&scenario.universe[0]), "covers type=1 truths");
    assert!(first.covers(&scenario.universe[1]), "covers type=2 truths");

    // Gate 3: monitoring with discovered rules reaches exact truth.
    let monitor = DataMonitor::new(&rules, &master).with_regions(regions);
    let workload = make_workload(&scenario.universe, 40, &NoiseSpec::with_rate(0.4), &mut rng);
    let truths = workload.truth.clone();
    let report = clean_stream(&monitor, workload.dirty.iter().cloned(), move |idx, _| {
        Box::new(OracleUser::new(truths[idx].clone()))
    })
    .unwrap();
    assert_eq!(report.complete_count(), 40);
    for (outcome, truth) in report.outcomes.iter().zip(workload.truth.iter()) {
        assert_eq!(&outcome.tuple, truth);
    }
}

#[test]
fn discovery_threshold_filters_small_domains() {
    let mut rng = StdRng::seed_from_u64(22);
    let scenario = uk::scenario(300, &mut rng);
    let loose = discover_rules(
        &scenario.input,
        &scenario.master_schema,
        &scenario.master,
        2,
    )
    .unwrap();
    let strict = discover_rules(
        &scenario.input,
        &scenario.master_schema,
        &scenario.master,
        50,
    )
    .unwrap();
    assert!(loose.len() > strict.len());
    // The 10-key AC/city bijection survives only the loose threshold.
    assert!(loose.iter().any(|d| d.rule.name() == "auto_AC_city#0"));
    assert!(!strict.iter().any(|d| d.rule.name() == "auto_AC_city#0"));
    // zip-keyed FDs (hundreds of keys) survive both.
    assert!(strict.iter().any(|d| d.rule.name() == "auto_zip_city#0"));
}

#[test]
fn discovered_hosp_rules_match_expert_coverage() {
    // On HOSP, name-based discovery recovers the full expert structure
    // (all correspondences are same-named), so user effort matches.
    let mut rng = StdRng::seed_from_u64(23);
    let scenario = hosp::scenario(400, &mut rng);
    let master = scenario.master_data();
    let discovered = discover_rules(
        &scenario.input,
        &scenario.master_schema,
        &scenario.master,
        8,
    )
    .unwrap();
    let mut rules = RuleSet::new(scenario.input.clone(), scenario.master_schema.clone());
    for d in &discovered {
        rules.add(d.rule.clone()).unwrap();
    }
    let monitor = DataMonitor::new(&rules, &master);
    let workload = make_workload(&scenario.universe, 30, &NoiseSpec::with_rate(0.3), &mut rng);
    let truths = workload.truth.clone();
    let report = clean_stream(&monitor, workload.dirty.iter().cloned(), move |idx, _| {
        Box::new(OracleUser::new(truths[idx].clone()))
    })
    .unwrap();
    assert_eq!(report.complete_count(), 30);
    // Discovered rules can even beat the expert set here: provider alone
    // determines measure-agnostic attributes AND the row's measure fields
    // are keyed by measure — the same 20% floor.
    assert!(
        report.user_fraction() <= 0.2 + 1e-9,
        "got {}",
        report.user_fraction()
    );
}
