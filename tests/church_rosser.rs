//! Property tests for the correcting process: Church–Rosser
//! (order-independence), monotonicity, idempotence, and
//! validated-cell immutability — the invariants that make fixes
//! *certain* rather than order-dependent heuristics.

use cerfix::{run_fixpoint, MasterData};
use cerfix_gen::uk;
use cerfix_relation::{AttrSet, Tuple};
use cerfix_rules::{EditingRule, RuleSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build the UK fixture once per case: 40 master entities, 9 paper rules.
fn fixture() -> (RuleSet, MasterData, Vec<Tuple>) {
    let mut rng = StdRng::seed_from_u64(77);
    let scenario = uk::scenario(40, &mut rng);
    let master = MasterData::new(scenario.master.clone());
    (scenario.rules, master, scenario.universe)
}

/// Re-add the rules of `rules` in the order given by `perm`.
fn permuted(rules: &RuleSet, perm: &[usize]) -> RuleSet {
    let list: Vec<&EditingRule> = rules.iter().map(|(_, r)| r).collect();
    let mut out = RuleSet::new(rules.input_schema().clone(), rules.master_schema().clone());
    for &i in perm {
        out.add(list[i % list.len()].clone()).ok(); // duplicates skipped by name
    }
    // Ensure every rule is present regardless of the permutation sample.
    for r in &list {
        out.add((*r).clone()).ok();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Church–Rosser: for any truth entity, any seed set of validated
    /// attributes, and any rule ordering, the fixpoint reaches the same
    /// tuple and validated set.
    #[test]
    fn fixpoint_is_order_independent(
        entity in 0usize..80,
        seed_mask in 0u16..512,
        perm in proptest::collection::vec(0usize..9, 9),
    ) {
        let (rules, master, universe) = fixture();
        let truth = &universe[entity % universe.len()];
        let seed: AttrSet =
            (0..9).filter(|a| seed_mask & (1 << a) != 0).collect();

        let mut t1 = cerfix::region::masked_input(truth, &seed);
        let mut v1 = seed.clone();
        run_fixpoint(&rules, &master, &mut t1, &mut v1).unwrap();

        let shuffled = permuted(&rules, &perm);
        let mut t2 = cerfix::region::masked_input(truth, &seed);
        let mut v2 = seed.clone();
        run_fixpoint(&shuffled, &master, &mut t2, &mut v2).unwrap();

        prop_assert_eq!(t1, t2);
        prop_assert_eq!(v1, v2);
    }

    /// Monotonicity: a larger validated seed never yields a smaller
    /// validated closure.
    #[test]
    fn fixpoint_is_monotone(
        entity in 0usize..80,
        seed_mask in 0u16..512,
        extra in 0usize..9,
    ) {
        let (rules, master, universe) = fixture();
        let truth = &universe[entity % universe.len()];
        let small: AttrSet =
            (0..9).filter(|a| seed_mask & (1 << a) != 0).collect();
        let mut large = small.clone();
        large.insert(extra);

        let mut t_small = cerfix::region::masked_input(truth, &small);
        let mut v_small = small;
        run_fixpoint(&rules, &master, &mut t_small, &mut v_small).unwrap();

        let mut t_large = cerfix::region::masked_input(truth, &large);
        let mut v_large = large;
        run_fixpoint(&rules, &master, &mut t_large, &mut v_large).unwrap();

        prop_assert!(v_small.is_subset(&v_large),
            "validated {v_small:?} not ⊆ {v_large:?}");
    }

    /// Idempotence: running the fixpoint twice changes nothing the second
    /// time.
    #[test]
    fn fixpoint_is_idempotent(entity in 0usize..80, seed_mask in 0u16..512) {
        let (rules, master, universe) = fixture();
        let truth = &universe[entity % universe.len()];
        let seed: AttrSet =
            (0..9).filter(|a| seed_mask & (1 << a) != 0).collect();
        let mut t = cerfix::region::masked_input(truth, &seed);
        let mut v = seed;
        run_fixpoint(&rules, &master, &mut t, &mut v).unwrap();
        let snapshot = (t.clone(), v.clone());
        let second = run_fixpoint(&rules, &master, &mut t, &mut v).unwrap();
        prop_assert!(second.fixes.is_empty());
        prop_assert_eq!((t, v), snapshot);
    }

    /// Validated cells are never overwritten: whatever the seed, the
    /// seeded values survive in the final tuple.
    #[test]
    fn validated_cells_are_immutable(entity in 0usize..80, seed_mask in 0u16..512) {
        let (rules, master, universe) = fixture();
        let truth = &universe[entity % universe.len()];
        let seed: AttrSet =
            (0..9).filter(|a| seed_mask & (1 << a) != 0).collect();
        let mut t = cerfix::region::masked_input(truth, &seed);
        let mut v = seed.clone();
        run_fixpoint(&rules, &master, &mut t, &mut v).unwrap();
        for a in &seed {
            prop_assert_eq!(t.get(a), truth.get(a), "seeded cell {} changed", a);
        }
    }

    /// Soundness on truth entities: every value the fixpoint writes (from
    /// a truthful seed) equals the entity's true value.
    #[test]
    fn fixes_from_truthful_seeds_are_correct(entity in 0usize..80, seed_mask in 0u16..512) {
        let (rules, master, universe) = fixture();
        let truth = &universe[entity % universe.len()];
        let seed: AttrSet =
            (0..9).filter(|a| seed_mask & (1 << a) != 0).collect();
        let mut t = cerfix::region::masked_input(truth, &seed);
        let mut v = seed;
        run_fixpoint(&rules, &master, &mut t, &mut v).unwrap();
        for a in &v {
            prop_assert_eq!(t.get(a), truth.get(a),
                "validated cell {} has a wrong value", a);
        }
    }
}
